//! Configurations: points in the parameter space.
//!
//! A [`Configuration`] is the genome used by the genetic tuner — one domain
//! index per parameter. [`StackConfig`] is the typed, resolved view consumed
//! by the I/O-stack simulator.

use crate::space::{ParamId, ParameterSpace};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One point in the tuning space: a domain index per parameter, in gene
/// order ([`ParamId::ALL`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    genes: Vec<usize>,
}

impl Configuration {
    /// Build from raw gene indices (one per parameter, in [`ParamId`] order).
    pub fn new(genes: Vec<usize>) -> Self {
        Configuration { genes }
    }

    /// Number of genes.
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Whether the genome is empty.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Domain index chosen for parameter `id`.
    pub fn gene(&self, id: ParamId) -> usize {
        self.genes[id.index()]
    }

    /// Set the domain index for parameter `id`.
    pub fn set_gene(&mut self, id: ParamId, idx: usize) {
        self.genes[id.index()] = idx;
    }

    /// Raw gene slice.
    pub fn genes(&self) -> &[usize] {
        &self.genes
    }

    /// Uniform crossover restricted to `mask`: for each parameter in `mask`,
    /// the child takes the gene from `self` or `other` with equal
    /// probability; parameters outside `mask` are inherited from `self`.
    pub fn crossover_masked<R: Rng>(
        &self,
        other: &Configuration,
        mask: &[ParamId],
        rng: &mut R,
    ) -> Configuration {
        let mut child = self.clone();
        for &p in mask {
            if rng.gen_bool(0.5) {
                child.set_gene(p, other.gene(p));
            }
        }
        child
    }

    /// Mutate each parameter in `mask` with probability `rate`, drawing a
    /// fresh random value from its domain.
    pub fn mutate_masked<R: Rng>(
        &mut self,
        space: &ParameterSpace,
        mask: &[ParamId],
        rate: f64,
        rng: &mut R,
    ) {
        for &p in mask {
            if rng.gen_bool(rate) {
                self.set_gene(p, space.random_value(p, rng));
            }
        }
    }

    /// Number of genes that differ from the space's default configuration.
    pub fn genes_changed_from_default(&self, space: &ParameterSpace) -> usize {
        let def = space.default_config();
        ParamId::ALL
            .iter()
            .filter(|&&p| self.gene(p) != def.gene(p))
            .count()
    }

    /// Resolve to the typed view used by the simulator.
    pub fn resolve(&self, space: &ParameterSpace) -> StackConfig {
        let num = |id: ParamId| {
            space
                .descriptor(id)
                .domain
                .numeric_at(self.gene(id))
                .expect("numeric domain")
        };
        let flag = |id: ParamId| self.gene(id) != 0;
        StackConfig {
            sieve_buf_size: num(ParamId::SieveBufSize),
            chunk_cache: num(ParamId::ChunkCache),
            alignment: num(ParamId::Alignment),
            meta_block_size: num(ParamId::MetaBlockSize),
            coll_meta_ops: flag(ParamId::CollMetaOps),
            mdc_config: MdcPreset::from_index(self.gene(ParamId::MdcConfig)),
            coll_metadata_write: flag(ParamId::CollMetadataWrite),
            striping_factor: num(ParamId::StripingFactor) as u32,
            striping_unit: num(ParamId::StripingUnit),
            cb_nodes: num(ParamId::CbNodes) as u32,
            cb_buffer_size: num(ParamId::CbBufferSize),
            collective_io: flag(ParamId::CollectiveIo),
        }
    }

    /// Pretty description of the non-default genes, for reports.
    pub fn describe_changes(&self, space: &ParameterSpace) -> String {
        let def = space.default_config();
        let mut parts = Vec::new();
        for &p in &ParamId::ALL {
            if self.gene(p) != def.gene(p) {
                let d = space.descriptor(p);
                parts.push(format!("{}={}", p.name(), d.domain.render(self.gene(p))));
            }
        }
        parts.join(", ")
    }
}

/// Metadata-cache preset (the `mdc_config` categorical parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MdcPreset {
    /// Library default adaptive cache.
    Default,
    /// Small fixed cache.
    Small,
    /// Medium fixed cache.
    Medium,
    /// Large fixed cache.
    Large,
    /// Aggressive adaptive resizing.
    Adaptive,
    /// Pinned entries never evicted.
    Pinned,
}

impl MdcPreset {
    /// Preset corresponding to a domain index (clamps out-of-range to default).
    pub fn from_index(idx: usize) -> MdcPreset {
        match idx {
            1 => MdcPreset::Small,
            2 => MdcPreset::Medium,
            3 => MdcPreset::Large,
            4 => MdcPreset::Adaptive,
            5 => MdcPreset::Pinned,
            _ => MdcPreset::Default,
        }
    }

    /// Multiplier applied to per-metadata-op cost by the simulator
    /// (1.0 = default-cache cost).
    pub fn metadata_cost_factor(self) -> f64 {
        match self {
            MdcPreset::Default => 1.0,
            MdcPreset::Small => 1.15,
            MdcPreset::Medium => 0.95,
            MdcPreset::Large => 0.88,
            MdcPreset::Adaptive => 0.92,
            MdcPreset::Pinned => 0.90,
        }
    }
}

/// Typed, resolved configuration consumed by the I/O-stack simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StackConfig {
    /// HDF5 sieve buffer size in bytes.
    pub sieve_buf_size: u64,
    /// HDF5 per-dataset chunk cache in bytes.
    pub chunk_cache: u64,
    /// HDF5 alignment boundary in bytes (1 = unaligned).
    pub alignment: u64,
    /// HDF5 metadata block size in bytes.
    pub meta_block_size: u64,
    /// Collective metadata reads enabled.
    pub coll_meta_ops: bool,
    /// Metadata-cache preset.
    pub mdc_config: MdcPreset,
    /// Collective metadata writes enabled.
    pub coll_metadata_write: bool,
    /// Lustre stripe count.
    pub striping_factor: u32,
    /// Lustre stripe size in bytes.
    pub striping_unit: u64,
    /// MPI-IO collective-buffering aggregator count.
    pub cb_nodes: u32,
    /// MPI-IO collective buffer size per aggregator in bytes.
    pub cb_buffer_size: u64,
    /// Two-phase collective I/O enabled for raw data.
    pub collective_io: bool,
}

impl StackConfig {
    /// The simulator-facing view of the library defaults.
    pub fn defaults(space: &ParameterSpace) -> StackConfig {
        space.default_config().resolve(space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParameterSpace;
    use rand::SeedableRng;

    fn space() -> ParameterSpace {
        ParameterSpace::tunio_default()
    }

    #[test]
    fn resolve_defaults_matches_library_defaults() {
        let s = space();
        let cfg = StackConfig::defaults(&s);
        assert_eq!(cfg.sieve_buf_size, 64 * 1024);
        assert_eq!(cfg.chunk_cache, 1024 * 1024);
        assert_eq!(cfg.alignment, 1);
        assert_eq!(cfg.striping_factor, 1);
        assert_eq!(cfg.striping_unit, 1024 * 1024);
        assert_eq!(cfg.cb_nodes, 1);
        assert!(!cfg.collective_io);
        assert!(!cfg.coll_meta_ops);
        assert_eq!(cfg.mdc_config, MdcPreset::Default);
    }

    #[test]
    fn crossover_masked_respects_mask() {
        let s = space();
        let a = s.default_config();
        let mut b = s.default_config();
        for &p in &ParamId::ALL {
            b.set_gene(p, s.cardinality(p) - 1);
        }
        let mask = [ParamId::StripingFactor];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut saw_exchange = false;
        for _ in 0..64 {
            let child = a.crossover_masked(&b, &mask, &mut rng);
            // Only the masked gene may differ from `a`.
            for &p in &ParamId::ALL {
                if p != ParamId::StripingFactor {
                    assert_eq!(child.gene(p), a.gene(p));
                }
            }
            if child.gene(ParamId::StripingFactor) == b.gene(ParamId::StripingFactor) {
                saw_exchange = true;
            }
        }
        assert!(saw_exchange, "crossover never exchanged the masked gene");
    }

    #[test]
    fn mutate_masked_only_touches_mask() {
        let s = space();
        let mut c = s.default_config();
        let mask = [ParamId::CbNodes, ParamId::CbBufferSize];
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        c.mutate_masked(&s, &mask, 1.0, &mut rng);
        for &p in &ParamId::ALL {
            if !mask.contains(&p) {
                assert_eq!(c.gene(p), s.default_config().gene(p));
            }
        }
    }

    #[test]
    fn genes_changed_from_default_counts() {
        let s = space();
        let mut c = s.default_config();
        assert_eq!(c.genes_changed_from_default(&s), 0);
        c.set_gene(ParamId::StripingFactor, 5);
        c.set_gene(ParamId::CollectiveIo, 1);
        assert_eq!(c.genes_changed_from_default(&s), 2);
    }

    #[test]
    fn describe_changes_names_changed_params() {
        let s = space();
        let mut c = s.default_config();
        c.set_gene(ParamId::CollectiveIo, 1);
        let desc = c.describe_changes(&s);
        assert!(desc.contains("collective_io=true"), "{desc}");
    }

    #[test]
    fn mdc_preset_factors_are_sane() {
        for idx in 0..6 {
            let f = MdcPreset::from_index(idx).metadata_cost_factor();
            assert!((0.5..=1.5).contains(&f));
        }
        assert_eq!(MdcPreset::from_index(99), MdcPreset::Default);
    }
}
