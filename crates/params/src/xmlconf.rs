//! H5Tuner-style XML configuration files.
//!
//! The paper's reference implementation "builds off of the existing
//! H5Tuner library, using its mechanisms to override the configuration
//! parameters of HDF5 applications via an XML file" (§III-A). This module
//! reproduces that interchange format — parameters grouped by stack layer,
//! each with a `FileName` scope attribute — with a dependency-free writer
//! and parser:
//!
//! ```xml
//! <Parameters>
//!   <High_Level_IO_Library>
//!     <sieve_buf_size FileName="*">65536</sieve_buf_size>
//!   </High_Level_IO_Library>
//!   <Middleware_Layer>
//!     <cb_nodes FileName="*">4</cb_nodes>
//!   </Middleware_Layer>
//!   <Parallel_File_System>
//!     <striping_factor FileName="*">8</striping_factor>
//!   </Parallel_File_System>
//! </Parameters>
//! ```

use crate::config::Configuration;
use crate::space::{Layer, ParamId, ParameterSpace};
use std::fmt;

/// Section element name for each layer (H5Tuner's vocabulary).
fn layer_tag(layer: Layer) -> &'static str {
    match layer {
        Layer::Hdf5 => "High_Level_IO_Library",
        Layer::MpiIo => "Middleware_Layer",
        Layer::Lustre => "Parallel_File_System",
    }
}

/// Render a configuration as an H5Tuner-style XML document. Only
/// parameters that differ from the defaults are emitted (H5Tuner leaves
/// untouched parameters at library defaults); pass `include_defaults` to
/// emit everything.
///
/// ```
/// use tunio_params::{to_xml, from_xml, ParamId, ParameterSpace};
/// let space = ParameterSpace::tunio_default();
/// let mut config = space.default_config();
/// config.set_gene(ParamId::CollectiveIo, 1);
/// let xml = to_xml(&config, &space, false);
/// assert!(xml.contains("<collective_io FileName=\"*\">true</collective_io>"));
/// assert_eq!(from_xml(&xml, &space).unwrap(), config);
/// ```
pub fn to_xml(config: &Configuration, space: &ParameterSpace, include_defaults: bool) -> String {
    let default = space.default_config();
    let mut out = String::from("<Parameters>\n");
    for layer in [Layer::Hdf5, Layer::MpiIo, Layer::Lustre] {
        let entries: Vec<String> = ParamId::ALL
            .iter()
            .filter(|p| space.descriptor(**p).layer == layer)
            .filter(|p| include_defaults || config.gene(**p) != default.gene(**p))
            .map(|p| {
                let d = space.descriptor(*p);
                format!(
                    "    <{name} FileName=\"*\">{value}</{name}>",
                    name = p.name(),
                    value = d.domain.render(config.gene(*p)),
                )
            })
            .collect();
        if entries.is_empty() && !include_defaults {
            continue;
        }
        out.push_str(&format!("  <{}>\n", layer_tag(layer)));
        for e in entries {
            out.push_str(&e);
            out.push('\n');
        }
        out.push_str(&format!("  </{}>\n", layer_tag(layer)));
    }
    out.push_str("</Parameters>\n");
    out
}

/// XML parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml config error: {}", self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parse an H5Tuner-style XML document into a configuration. Parameters
/// absent from the document stay at their defaults; unknown parameter
/// names and values not in the domain are errors (misconfiguration should
/// fail loudly, not silently run the wrong experiment).
pub fn from_xml(text: &str, space: &ParameterSpace) -> Result<Configuration, XmlError> {
    let mut config = space.default_config();
    let mut pos = 0;
    let bytes = text.as_bytes();

    while let Some(start) = text[pos..].find('<') {
        let start = pos + start;
        let end = text[start..]
            .find('>')
            .map(|e| start + e)
            .ok_or_else(|| XmlError {
                message: "unterminated tag".into(),
            })?;
        let tag_body = &text[start + 1..end];
        pos = end + 1;
        if tag_body.starts_with('/') || tag_body.starts_with('?') || tag_body.starts_with('!') {
            continue;
        }
        let name = tag_body
            .split_whitespace()
            .next()
            .unwrap_or("")
            .trim_end_matches('/');
        // Section / root tags pass through.
        if name == "Parameters"
            || name == layer_tag(Layer::Hdf5)
            || name == layer_tag(Layer::MpiIo)
            || name == layer_tag(Layer::Lustre)
        {
            continue;
        }
        let param = ParamId::from_name(name).ok_or_else(|| XmlError {
            message: format!("unknown parameter `{name}`"),
        })?;
        // Value runs to the closing tag.
        let close = format!("</{name}>");
        let value_end = text[pos..]
            .find(&close)
            .map(|e| pos + e)
            .ok_or_else(|| XmlError {
                message: format!("missing {close}"),
            })?;
        let raw_value = text[pos..value_end].trim();
        pos = value_end + close.len();

        let domain = &space.descriptor(param).domain;
        let idx = (0..domain.cardinality())
            .find(|&i| domain.render(i) == raw_value)
            .ok_or_else(|| XmlError {
                message: format!("value `{raw_value}` not in {name}'s domain"),
            })?;
        config.set_gene(param, idx);
    }
    let _ = bytes;
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParameterSpace;

    fn space() -> ParameterSpace {
        ParameterSpace::tunio_default()
    }

    fn tuned() -> Configuration {
        let s = space();
        let mut c = s.default_config();
        c.set_gene(ParamId::CollectiveIo, 1);
        c.set_gene(ParamId::StripingFactor, 9);
        c.set_gene(ParamId::CbNodes, 4);
        c.set_gene(ParamId::MdcConfig, 3);
        c
    }

    #[test]
    fn xml_round_trips() {
        let s = space();
        let c = tuned();
        let xml = to_xml(&c, &s, false);
        let parsed = from_xml(&xml, &s).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn full_document_round_trips() {
        let s = space();
        let c = tuned();
        let xml = to_xml(&c, &s, true);
        // All 12 parameters present.
        for p in ParamId::ALL {
            assert!(xml.contains(&format!("<{}", p.name())), "{xml}");
        }
        assert_eq!(from_xml(&xml, &s).unwrap(), c);
    }

    #[test]
    fn sections_follow_h5tuner_layout() {
        let s = space();
        let xml = to_xml(&tuned(), &s, false);
        assert!(xml.contains("<High_Level_IO_Library>"));
        assert!(xml.contains("<Middleware_Layer>"));
        assert!(xml.contains("<Parallel_File_System>"));
        assert!(xml.contains("FileName=\"*\""));
        // striping under PFS, cb_nodes under middleware.
        let pfs = xml.split("<Parallel_File_System>").nth(1).unwrap();
        assert!(pfs.contains("striping_factor"));
    }

    #[test]
    fn default_config_emits_empty_parameter_set() {
        let s = space();
        let xml = to_xml(&s.default_config(), &s, false);
        assert_eq!(xml, "<Parameters>\n</Parameters>\n");
        assert_eq!(from_xml(&xml, &s).unwrap(), s.default_config());
    }

    #[test]
    fn unknown_parameter_is_an_error() {
        let s = space();
        let err = from_xml(
            "<Parameters><bogus FileName=\"*\">1</bogus></Parameters>",
            &s,
        )
        .unwrap_err();
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn out_of_domain_value_is_an_error() {
        let s = space();
        let err = from_xml(
            "<Parameters><striping_factor FileName=\"*\">7</striping_factor></Parameters>",
            &s,
        )
        .unwrap_err();
        assert!(err.message.contains("domain"), "{err}");
    }

    #[test]
    fn boolean_and_categorical_values_render_and_parse() {
        let s = space();
        let mut c = s.default_config();
        c.set_gene(ParamId::CollMetaOps, 1);
        c.set_gene(ParamId::MdcConfig, 4);
        let xml = to_xml(&c, &s, false);
        assert!(xml.contains(">true<"));
        assert!(xml.contains(">adaptive<"));
        assert_eq!(from_xml(&xml, &s).unwrap(), c);
    }
}
