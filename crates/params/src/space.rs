//! Parameter descriptors and the twelve-parameter TunIO tuning space.
//!
//! The paper tunes "a subset of 12 parameters across HDF5, MPI, and Lustre,
//! which gives a search space of over 2.18 billion permutations" (§IV).
//! [`ParameterSpace::tunio_default`] reconstructs that space: twelve
//! parameters whose domain cardinalities multiply to ≈2.4 × 10⁹.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The I/O-stack layer a parameter belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// High-level I/O library layer (HDF5-like).
    Hdf5,
    /// I/O middleware layer (MPI-IO-like).
    MpiIo,
    /// Parallel file system layer (Lustre-like).
    Lustre,
}

impl Layer {
    /// Human-readable layer name.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Hdf5 => "HDF5",
            Layer::MpiIo => "MPI-IO",
            Layer::Lustre => "Lustre",
        }
    }
}

/// A-priori impact class of a parameter, used to validate that the
/// Smart Configuration Generation agent discovers the right split
/// (the paper finds 7 high-impact and 5 insignificant parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Impact {
    /// Parameter strongly shapes bandwidth for checkpoint-style workloads.
    High,
    /// Parameter only perturbs metadata or corner-case costs.
    Low,
}

/// Stable identity of each tunable parameter.
///
/// The discriminant doubles as the gene index inside a
/// [`Configuration`](crate::Configuration) genome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(usize)]
pub enum ParamId {
    /// HDF5 sieve buffer size (bytes) — coalesces small raw-data reads.
    SieveBufSize = 0,
    /// HDF5 chunk cache size (bytes) per dataset.
    ChunkCache = 1,
    /// HDF5 object alignment threshold/boundary (bytes).
    Alignment = 2,
    /// HDF5 metadata block size (bytes).
    MetaBlockSize = 3,
    /// HDF5 collective metadata reads enabled.
    CollMetaOps = 4,
    /// HDF5 metadata cache configuration preset.
    MdcConfig = 5,
    /// HDF5 collective metadata writes enabled.
    CollMetadataWrite = 6,
    /// Lustre stripe count (number of OSTs a file is striped over).
    StripingFactor = 7,
    /// Lustre stripe size (bytes).
    StripingUnit = 8,
    /// MPI-IO number of collective-buffering aggregator nodes.
    CbNodes = 9,
    /// MPI-IO collective buffer size per aggregator (bytes).
    CbBufferSize = 10,
    /// MPI-IO/HDF5 collective (two-phase) I/O enabled for raw data.
    CollectiveIo = 11,
}

impl ParamId {
    /// All twelve parameters in gene order.
    pub const ALL: [ParamId; 12] = [
        ParamId::SieveBufSize,
        ParamId::ChunkCache,
        ParamId::Alignment,
        ParamId::MetaBlockSize,
        ParamId::CollMetaOps,
        ParamId::MdcConfig,
        ParamId::CollMetadataWrite,
        ParamId::StripingFactor,
        ParamId::StripingUnit,
        ParamId::CbNodes,
        ParamId::CbBufferSize,
        ParamId::CollectiveIo,
    ];

    /// Gene index of this parameter.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Canonical lower-case name as it appears in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ParamId::SieveBufSize => "sieve_buf_size",
            ParamId::ChunkCache => "chunk_cache",
            ParamId::Alignment => "alignment",
            ParamId::MetaBlockSize => "meta_block_size",
            ParamId::CollMetaOps => "coll_meta_ops",
            ParamId::MdcConfig => "mdc_config",
            ParamId::CollMetadataWrite => "coll_metadata_write",
            ParamId::StripingFactor => "striping_factor",
            ParamId::StripingUnit => "striping_unit",
            ParamId::CbNodes => "cb_nodes",
            ParamId::CbBufferSize => "cb_buffer_size",
            ParamId::CollectiveIo => "collective_io",
        }
    }

    /// Parse a parameter name back to its id.
    pub fn from_name(name: &str) -> Option<ParamId> {
        ParamId::ALL.iter().copied().find(|p| p.name() == name)
    }
}

/// The value domain of one parameter.
///
/// Domains are finite and ordered; a configuration stores an *index* into the
/// domain, which keeps genetic operators and RL action encodings uniform.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ParamDomain {
    /// An explicit ordered list of numeric values (sizes in bytes, counts…).
    Numeric(Vec<u64>),
    /// A boolean toggle (`false`, `true`).
    Boolean,
    /// A named categorical choice (e.g. metadata-cache presets).
    Categorical(Vec<&'static str>),
}

impl ParamDomain {
    /// Number of distinct values in the domain.
    pub fn cardinality(&self) -> usize {
        match self {
            ParamDomain::Numeric(v) => v.len(),
            ParamDomain::Boolean => 2,
            ParamDomain::Categorical(v) => v.len(),
        }
    }

    /// Numeric value at `idx`, if this is a numeric domain.
    pub fn numeric_at(&self, idx: usize) -> Option<u64> {
        match self {
            ParamDomain::Numeric(v) => v.get(idx).copied(),
            ParamDomain::Boolean => Some((idx != 0) as u64),
            ParamDomain::Categorical(_) => None,
        }
    }

    /// Render the value at `idx` for reports.
    pub fn render(&self, idx: usize) -> String {
        match self {
            ParamDomain::Numeric(v) => v
                .get(idx)
                .map(|x| x.to_string())
                .unwrap_or_else(|| "<oob>".into()),
            ParamDomain::Boolean => (if idx != 0 { "true" } else { "false" }).into(),
            ParamDomain::Categorical(v) => v.get(idx).copied().unwrap_or("<oob>").into(),
        }
    }
}

/// Full description of a tunable parameter.
#[derive(Debug, Clone, Serialize)]
pub struct ParamDescriptor {
    /// Which parameter this describes.
    pub id: ParamId,
    /// Stack layer the parameter belongs to.
    pub layer: Layer,
    /// Ordered value domain.
    pub domain: ParamDomain,
    /// Index into `domain` of the library-default value.
    pub default_idx: usize,
    /// A-priori impact class (ground truth for evaluating the subset picker).
    pub impact: Impact,
}

/// The complete tuning space: descriptor per [`ParamId`], in gene order.
#[derive(Debug, Clone, Serialize)]
pub struct ParameterSpace {
    descriptors: Vec<ParamDescriptor>,
}

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

impl ParameterSpace {
    /// Build the twelve-parameter space used throughout the paper's
    /// evaluation (§IV: "12 parameters across HDF5, MPI, and Lustre …
    /// over 2.18 billion permutations").
    ///
    /// ```
    /// use tunio_params::ParameterSpace;
    /// let space = ParameterSpace::tunio_default();
    /// assert_eq!(space.len(), 12);
    /// assert!(space.permutations() > 2_180_000_000);
    /// ```
    pub fn tunio_default() -> Self {
        use Impact::*;
        use Layer::*;
        use ParamId::*;
        let descriptors = vec![
            ParamDescriptor {
                id: SieveBufSize,
                layer: Hdf5,
                domain: ParamDomain::Numeric(vec![
                    64 * KIB,
                    128 * KIB,
                    256 * KIB,
                    512 * KIB,
                    MIB,
                    2 * MIB,
                    4 * MIB,
                    8 * MIB,
                ]),
                default_idx: 0,
                impact: Low,
            },
            ParamDescriptor {
                id: ChunkCache,
                layer: Hdf5,
                domain: ParamDomain::Numeric(vec![
                    MIB,
                    2 * MIB,
                    4 * MIB,
                    8 * MIB,
                    16 * MIB,
                    32 * MIB,
                    64 * MIB,
                    128 * MIB,
                ]),
                default_idx: 0,
                impact: High,
            },
            ParamDescriptor {
                id: Alignment,
                layer: Hdf5,
                domain: ParamDomain::Numeric(vec![
                    1, // no alignment
                    4 * KIB,
                    64 * KIB,
                    256 * KIB,
                    MIB,
                    4 * MIB,
                    8 * MIB,
                    16 * MIB,
                ]),
                default_idx: 0,
                impact: High,
            },
            ParamDescriptor {
                id: MetaBlockSize,
                layer: Hdf5,
                domain: ParamDomain::Numeric(vec![
                    2 * KIB,
                    4 * KIB,
                    16 * KIB,
                    64 * KIB,
                    256 * KIB,
                    MIB,
                    2 * MIB,
                    4 * MIB,
                ]),
                default_idx: 0,
                impact: Low,
            },
            ParamDescriptor {
                id: CollMetaOps,
                layer: Hdf5,
                domain: ParamDomain::Boolean,
                default_idx: 0,
                impact: Low,
            },
            ParamDescriptor {
                id: MdcConfig,
                layer: Hdf5,
                domain: ParamDomain::Categorical(vec![
                    "default", "small", "medium", "large", "adaptive", "pinned",
                ]),
                default_idx: 0,
                impact: Low,
            },
            ParamDescriptor {
                id: CollMetadataWrite,
                layer: Hdf5,
                domain: ParamDomain::Boolean,
                default_idx: 0,
                impact: Low,
            },
            ParamDescriptor {
                id: StripingFactor,
                layer: Lustre,
                domain: ParamDomain::Numeric(vec![
                    1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 80, 96, 112, 128, 144, 156,
                ]),
                default_idx: 0,
                impact: High,
            },
            ParamDescriptor {
                id: StripingUnit,
                layer: Lustre,
                domain: ParamDomain::Numeric(vec![
                    64 * KIB,
                    256 * KIB,
                    MIB,
                    2 * MIB,
                    4 * MIB,
                    8 * MIB,
                    16 * MIB,
                    32 * MIB,
                ]),
                default_idx: 2,
                impact: High,
            },
            ParamDescriptor {
                id: CbNodes,
                layer: MpiIo,
                domain: ParamDomain::Numeric(vec![1, 2, 4, 8, 16, 32, 48, 64, 96, 128, 192, 256]),
                default_idx: 0,
                impact: High,
            },
            ParamDescriptor {
                id: CbBufferSize,
                layer: MpiIo,
                domain: ParamDomain::Numeric(vec![
                    MIB,
                    2 * MIB,
                    4 * MIB,
                    8 * MIB,
                    16 * MIB,
                    32 * MIB,
                    64 * MIB,
                    128 * MIB,
                ]),
                default_idx: 3,
                impact: High,
            },
            ParamDescriptor {
                id: CollectiveIo,
                layer: MpiIo,
                domain: ParamDomain::Boolean,
                default_idx: 0,
                impact: High,
            },
        ];
        debug_assert_eq!(descriptors.len(), ParamId::ALL.len());
        ParameterSpace { descriptors }
    }

    /// Number of parameters (always 12 for the default space).
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Descriptor for a parameter.
    pub fn descriptor(&self, id: ParamId) -> &ParamDescriptor {
        &self.descriptors[id.index()]
    }

    /// All descriptors in gene order.
    pub fn descriptors(&self) -> &[ParamDescriptor] {
        &self.descriptors
    }

    /// Cardinality of parameter `id`'s domain.
    pub fn cardinality(&self, id: ParamId) -> usize {
        self.descriptor(id).domain.cardinality()
    }

    /// Total number of distinct configurations (the product of domain
    /// cardinalities). Returns `u128` because the space is astronomically
    /// large for full library catalogs.
    pub fn permutations(&self) -> u128 {
        self.descriptors
            .iter()
            .map(|d| d.domain.cardinality() as u128)
            .product()
    }

    /// The library-default configuration.
    pub fn default_config(&self) -> crate::Configuration {
        crate::Configuration::new(self.descriptors.iter().map(|d| d.default_idx).collect())
    }

    /// Sample a uniformly random configuration.
    pub fn random_config<R: Rng>(&self, rng: &mut R) -> crate::Configuration {
        crate::Configuration::new(
            self.descriptors
                .iter()
                .map(|d| rng.gen_range(0..d.domain.cardinality()))
                .collect(),
        )
    }

    /// Sample a random value index for a single parameter.
    pub fn random_value<R: Rng>(&self, id: ParamId, rng: &mut R) -> usize {
        rng.gen_range(0..self.cardinality(id))
    }

    /// Ids of all parameters whose a-priori impact class is `impact`.
    pub fn with_impact(&self, impact: Impact) -> Vec<ParamId> {
        self.descriptors
            .iter()
            .filter(|d| d.impact == impact)
            .map(|d| d.id)
            .collect()
    }

    /// Reclassify one parameter's a-priori impact. Lets callers derive
    /// reduced spaces (fewer high-impact parameters) from the default
    /// twelve-parameter space — used to model platforms where a knob is
    /// known to be inert, and by tests exercising small spaces.
    pub fn set_impact(&mut self, id: ParamId, impact: Impact) {
        self.descriptors[id.index()].impact = impact;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_space_has_twelve_parameters() {
        let space = ParameterSpace::tunio_default();
        assert_eq!(space.len(), 12);
        for (i, d) in space.descriptors().iter().enumerate() {
            assert_eq!(d.id.index(), i, "descriptor order must match gene order");
        }
    }

    #[test]
    fn permutation_count_exceeds_paper_bound() {
        // §IV: "a search space of over 2.18 billion permutations".
        let space = ParameterSpace::tunio_default();
        let perms = space.permutations();
        assert!(perms > 2_180_000_000, "got {perms}");
        assert!(
            perms < 10_000_000_000,
            "space should stay ~1e9, got {perms}"
        );
    }

    #[test]
    fn impact_split_is_seven_high_five_low() {
        // §IV-B: final tuned configuration changes 7 parameters, "with the
        // remaining five not having a significant impact".
        let space = ParameterSpace::tunio_default();
        assert_eq!(space.with_impact(Impact::High).len(), 7);
        assert_eq!(space.with_impact(Impact::Low).len(), 5);
    }

    #[test]
    fn default_config_uses_default_indices() {
        let space = ParameterSpace::tunio_default();
        let config = space.default_config();
        for d in space.descriptors() {
            assert_eq!(config.gene(d.id), d.default_idx);
        }
    }

    #[test]
    fn random_config_is_in_bounds() {
        let space = ParameterSpace::tunio_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let c = space.random_config(&mut rng);
            for d in space.descriptors() {
                assert!(c.gene(d.id) < d.domain.cardinality());
            }
        }
    }

    #[test]
    fn param_names_round_trip() {
        for p in ParamId::ALL {
            assert_eq!(ParamId::from_name(p.name()), Some(p));
        }
        assert_eq!(ParamId::from_name("nonsense"), None);
    }

    #[test]
    fn domain_render_and_numeric_access() {
        let d = ParamDomain::Numeric(vec![10, 20]);
        assert_eq!(d.render(1), "20");
        assert_eq!(d.numeric_at(1), Some(20));
        assert_eq!(d.numeric_at(5), None);
        let b = ParamDomain::Boolean;
        assert_eq!(b.render(0), "false");
        assert_eq!(b.numeric_at(1), Some(1));
        let c = ParamDomain::Categorical(vec!["a", "b"]);
        assert_eq!(c.render(0), "a");
        assert_eq!(c.numeric_at(0), None);
        assert_eq!(c.render(9), "<oob>");
    }
}
