//! # tunio-params — the I/O-stack parameter space
//!
//! This crate defines the configuration space that TunIO (and the HSTuner
//! baseline) search over: the twelve user-tunable parameters spanning the
//! HDF5-like library layer, the MPI-IO-like middleware layer, and the
//! Lustre-like parallel-file-system layer of the simulated I/O stack.
//!
//! The central types are:
//!
//! * [`ParamId`] — stable identifier for each of the twelve parameters.
//! * [`ParamDescriptor`] / [`ParamDomain`] — name, stack layer, value domain
//!   and default for one parameter.
//! * [`ParameterSpace`] — the full space; supports permutation counting,
//!   random sampling and neighbourhood moves.
//! * [`Configuration`] — one point in the space (an index per parameter),
//!   the genome manipulated by the genetic tuner.
//! * [`StackConfig`] — the typed view of a [`Configuration`] consumed by the
//!   I/O-stack simulator.
//! * [`catalog`] — parameter *counts* for several HPC I/O libraries, used to
//!   reproduce the search-space-explosion figure of the paper (Fig 1).

#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod space;
pub mod xmlconf;

pub use config::{Configuration, StackConfig};
pub use space::{Impact, Layer, ParamDescriptor, ParamDomain, ParamId, ParameterSpace};
pub use xmlconf::{from_xml, to_xml};
