//! Property-based tests for the parameter space and configurations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tunio_params::{Configuration, ParamId, ParameterSpace};

/// Strategy: a valid configuration (gene index within each domain).
fn config_strategy() -> impl Strategy<Value = Configuration> {
    let space = ParameterSpace::tunio_default();
    let ranges: Vec<std::ops::Range<usize>> = space
        .descriptors()
        .iter()
        .map(|d| 0..d.domain.cardinality())
        .collect();
    ranges.prop_map(Configuration::new)
}

/// Strategy: a subset mask of parameters.
fn mask_strategy() -> impl Strategy<Value = Vec<ParamId>> {
    proptest::sample::subsequence(ParamId::ALL.to_vec(), 1..=12)
}

proptest! {
    #[test]
    fn resolve_never_panics_and_is_faithful(config in config_strategy()) {
        let space = ParameterSpace::tunio_default();
        let stack = config.resolve(&space);
        // Numeric values must come from the declared domains.
        prop_assert!(stack.striping_factor >= 1);
        prop_assert!(stack.striping_unit >= 64 * 1024);
        prop_assert!(stack.cb_nodes >= 1);
        prop_assert!(stack.chunk_cache >= 1024 * 1024);
        prop_assert!(stack.sieve_buf_size >= 64 * 1024);
    }

    #[test]
    fn crossover_child_genes_come_from_a_parent(
        a in config_strategy(),
        b in config_strategy(),
        mask in mask_strategy(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let child = a.crossover_masked(&b, &mask, &mut rng);
        for &p in &ParamId::ALL {
            let g = child.gene(p);
            prop_assert!(
                g == a.gene(p) || g == b.gene(p),
                "gene {p:?} = {g} came from neither parent"
            );
            if !mask.contains(&p) {
                prop_assert_eq!(g, a.gene(p), "unmasked gene must come from self");
            }
        }
    }

    #[test]
    fn mutation_stays_in_bounds_and_respects_mask(
        mut config in config_strategy(),
        mask in mask_strategy(),
        seed in any::<u64>(),
        rate in 0.0f64..=1.0,
    ) {
        let space = ParameterSpace::tunio_default();
        let before = config.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        config.mutate_masked(&space, &mask, rate, &mut rng);
        for &p in &ParamId::ALL {
            prop_assert!(config.gene(p) < space.cardinality(p));
            if !mask.contains(&p) {
                prop_assert_eq!(config.gene(p), before.gene(p));
            }
        }
    }

    #[test]
    fn changed_gene_count_matches_describe(config in config_strategy()) {
        let space = ParameterSpace::tunio_default();
        let changed = config.genes_changed_from_default(&space);
        let described = config.describe_changes(&space);
        let described_count = if described.is_empty() {
            0
        } else {
            described.split(", ").count()
        };
        prop_assert_eq!(changed, described_count);
    }

    #[test]
    fn random_configs_are_always_valid(seed in any::<u64>()) {
        let space = ParameterSpace::tunio_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = space.random_config(&mut rng);
        for &p in &ParamId::ALL {
            prop_assert!(c.gene(p) < space.cardinality(p));
        }
        // And the genome length is the space size.
        prop_assert_eq!(c.len(), space.len());
    }
}
