//! Static workload features distilled from an [`AppSpec`].
//!
//! The inference pipeline (crate `tunio-discovery`) lowers a statically
//! predicted I/O model into an [`AppSpec`]; this module reduces that spec
//! to a small numeric feature vector the tuner can warm-start from:
//! which fraction of traffic is collective, how large the typical request
//! is, how metadata-heavy the app is, and so on. The features are
//! deliberately scale-free ratios (plus two absolute magnitudes) so the
//! warm-start heuristics in `tunio-core` stay stable across app sizes.

use crate::spec::AppSpec;
use serde::{Deserialize, Serialize};
use tunio_iosim::AccessPattern;

/// Scale-free summary of an application's I/O behaviour, derived from a
/// (possibly inferred) [`AppSpec`]. All `*_fraction` fields are weighted
/// by bytes moved and lie in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadFeatures {
    /// Application name the features describe.
    pub app: String,
    /// Total bytes moved per process across the whole run (setup header
    /// plus every loop iteration; logging excluded).
    pub total_bytes: u64,
    /// Fraction of bulk bytes that are reads.
    pub read_fraction: f64,
    /// Mean bulk request size in bytes (bulk bytes / bulk ops).
    pub mean_request_bytes: f64,
    /// Fraction of bulk bytes moved by collective-capable accesses.
    pub collective_fraction: f64,
    /// Fraction of bulk bytes accessed at random offsets.
    pub random_fraction: f64,
    /// Fraction of bulk bytes accessed in a strided layout.
    pub strided_fraction: f64,
    /// Metadata ops per bulk data op (setup + per-iteration metadata).
    pub metadata_ratio: f64,
    /// Main-loop iteration count.
    pub loop_iterations: u32,
    /// Confidence the producer attached to the spec (1.0 when the spec
    /// comes from a trusted source such as the hand-written app models).
    pub confidence: f64,
}

impl WorkloadFeatures {
    /// Distill features from a spec. `confidence` is carried through
    /// verbatim so downstream consumers can damp warm-start aggressiveness
    /// when the spec was inferred rather than measured.
    pub fn from_spec(spec: &AppSpec, confidence: f64) -> Self {
        let iters = u64::from(spec.loop_iterations.max(1));
        let mut bulk_bytes = 0u64;
        let mut bulk_ops = 0u64;
        let mut read_bytes = 0u64;
        let mut collective_bytes = 0u64;
        let mut random_bytes = 0u64;
        let mut strided_bytes = 0u64;
        let mut loop_meta = 0u64;
        for io in &spec.iteration_io {
            let bytes = io.per_proc_bytes.saturating_mul(iters);
            let ops = io.ops_per_proc.saturating_mul(iters);
            bulk_bytes = bulk_bytes.saturating_add(bytes);
            bulk_ops = bulk_ops.saturating_add(ops);
            loop_meta = loop_meta.saturating_add(io.meta_ops.saturating_mul(iters));
            if io.kind == tunio_iosim::IoKind::Read {
                read_bytes = read_bytes.saturating_add(bytes);
            }
            if io.collective_capable {
                collective_bytes = collective_bytes.saturating_add(bytes);
            }
            match io.pattern {
                AccessPattern::Random => random_bytes = random_bytes.saturating_add(bytes),
                AccessPattern::Strided { .. } => {
                    strided_bytes = strided_bytes.saturating_add(bytes)
                }
                AccessPattern::Contiguous => {}
            }
        }
        let frac = |part: u64| {
            if bulk_bytes == 0 {
                0.0
            } else {
                part as f64 / bulk_bytes as f64
            }
        };
        WorkloadFeatures {
            app: spec.name.clone(),
            total_bytes: bulk_bytes.saturating_add(spec.setup_header_bytes),
            read_fraction: frac(read_bytes),
            mean_request_bytes: if bulk_ops == 0 {
                0.0
            } else {
                bulk_bytes as f64 / bulk_ops as f64
            },
            collective_fraction: frac(collective_bytes),
            random_fraction: frac(random_bytes),
            strided_fraction: frac(strided_bytes),
            metadata_ratio: if bulk_ops == 0 {
                0.0
            } else {
                (spec.setup_meta_ops + loop_meta) as f64 / bulk_ops as f64
            },
            loop_iterations: spec.loop_iterations,
            confidence: confidence.clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{bdcats, vpic};

    #[test]
    fn vpic_features_are_collective_writes() {
        let f = WorkloadFeatures::from_spec(&vpic(), 1.0);
        assert_eq!(f.app, "vpic");
        assert!(f.total_bytes > 0);
        assert_eq!(f.read_fraction, 0.0);
        assert!(f.collective_fraction > 0.9, "{f:?}");
        assert_eq!(f.random_fraction, 0.0);
        assert!(f.mean_request_bytes > 0.0);
        assert!(f.metadata_ratio >= 0.0);
    }

    #[test]
    fn bdcats_features_see_reads() {
        let f = WorkloadFeatures::from_spec(&bdcats(), 1.0);
        assert!(f.read_fraction > 0.0, "{f:?}");
        assert!(f.read_fraction < 1.0, "{f:?}");
    }

    #[test]
    fn empty_spec_yields_zero_fractions() {
        let spec = AppSpec {
            name: "empty".into(),
            setup_meta_ops: 0,
            setup_header_bytes: 0,
            loop_iterations: 0,
            compute_per_iteration_s: 0.0,
            iteration_io: vec![],
            logging_ops_per_iteration: 0,
            logging_bytes_per_op: 0,
        };
        let f = WorkloadFeatures::from_spec(&spec, 2.0);
        assert_eq!(f.total_bytes, 0);
        assert_eq!(f.read_fraction, 0.0);
        assert_eq!(f.mean_request_bytes, 0.0);
        assert_eq!(f.confidence, 1.0, "confidence clamps to [0,1]");
    }
}
