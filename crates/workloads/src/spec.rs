//! Application specifications and variant construction.

use serde::{Deserialize, Serialize};
use tunio_iosim::{AccessPattern, IoKind, IoPhase, Phase};

/// I/O performed by one iteration of an application's main loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationIo {
    /// Dataset name (for reports).
    pub dataset: String,
    /// Read or write.
    pub kind: IoKind,
    /// Bytes per process per iteration.
    pub per_proc_bytes: u64,
    /// Library-level calls per process per iteration.
    pub ops_per_proc: u64,
    /// Spatial pattern.
    pub pattern: AccessPattern,
    /// Metadata ops per process per iteration.
    pub meta_ops: u64,
    /// Whether the access is collective-capable.
    pub collective_capable: bool,
    /// Chunk-reuse working set per process, bytes.
    pub chunk_reuse_bytes: u64,
    /// Stripe count of the pre-existing input dataset (reads only; 0 for
    /// created files).
    pub pre_striped: u32,
}

impl IterationIo {
    fn to_phase(&self, byte_scale: f64, op_scale: f64) -> Phase {
        Phase::Io(IoPhase {
            dataset: self.dataset.clone(),
            kind: self.kind,
            per_proc_bytes: ((self.per_proc_bytes as f64 * byte_scale).round() as u64).max(1),
            ops_per_proc: ((self.ops_per_proc as f64 * op_scale).round() as u64).max(1),
            pattern: self.pattern,
            meta_ops: self.meta_ops,
            collective_capable: self.collective_capable,
            chunk_reuse_bytes: self.chunk_reuse_bytes,
            pre_striped: self.pre_striped,
        })
    }
}

/// Static description of an application's structure.
///
/// The model is: a setup region (metadata-heavy file/dataset creation plus
/// a small header write), then `loop_iterations` iterations of
/// {compute, bulk I/O, trivial logging writes}. This captures every
/// application in the paper's evaluation and gives the I/O Discovery
/// component something faithful to strip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// Metadata operations in the setup region, per process.
    pub setup_meta_ops: u64,
    /// Header bytes written once at setup, per process.
    pub setup_header_bytes: u64,
    /// Main-loop iteration count.
    pub loop_iterations: u32,
    /// Compute seconds per iteration (simulated).
    pub compute_per_iteration_s: f64,
    /// Bulk I/O performed each iteration.
    pub iteration_io: Vec<IterationIo>,
    /// Trivial logging/print write ops per process per iteration. These
    /// carry almost no bytes but inflate the write-op count of the full
    /// application — the source of the paper's 19.05% op-count delta
    /// between full app and extracted kernel (Fig 8c).
    pub logging_ops_per_iteration: u64,
    /// Bytes per logging op (tiny).
    pub logging_bytes_per_op: u64,
}

/// Which executable form of the application to build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Variant {
    /// The original application.
    Full,
    /// The I/O kernel extracted by Application I/O Discovery: compute and
    /// trivial logging writes removed, all real I/O retained.
    Kernel,
    /// The kernel with loop reduction: only `keep_fraction` of loop
    /// iterations execute (at least one).
    ReducedKernel {
        /// Fraction of loop iterations kept, in `(0, 1]`.
        keep_fraction: f64,
    },
}

impl Variant {
    /// Factor by which observed scalable metrics must be multiplied to
    /// predict the full-loop values (1.0 except under loop reduction).
    pub fn extrapolation_factor(&self, spec: &AppSpec) -> f64 {
        match self {
            Variant::ReducedKernel { keep_fraction } => {
                let kept = reduced_iterations(spec.loop_iterations, *keep_fraction);
                spec.loop_iterations as f64 / kept as f64
            }
            _ => 1.0,
        }
    }
}

fn reduced_iterations(total: u32, keep_fraction: f64) -> u32 {
    ((total as f64 * keep_fraction).round() as u32).clamp(1, total.max(1))
}

/// An application bound to a variant: produces simulator phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The application description.
    pub spec: AppSpec,
    /// Which form to execute.
    pub variant: Variant,
}

impl Workload {
    /// Bind `spec` to a variant.
    pub fn new(spec: AppSpec, variant: Variant) -> Self {
        Workload { spec, variant }
    }

    /// Build the phase list the simulator executes.
    pub fn phases(&self) -> Vec<Phase> {
        let spec = &self.spec;
        let mut phases = Vec::new();

        // Setup region: dataset creation metadata and a small header write.
        // I/O Discovery keeps it (it is required for the I/O to function).
        phases.push(Phase::Io(IoPhase {
            dataset: format!("{}/setup", spec.name),
            kind: IoKind::Write,
            per_proc_bytes: spec.setup_header_bytes.max(1),
            ops_per_proc: 4,
            pattern: AccessPattern::Contiguous,
            meta_ops: spec.setup_meta_ops,
            collective_capable: true,
            chunk_reuse_bytes: 0,
            pre_striped: 0,
        }));

        let iterations = match self.variant {
            Variant::Full | Variant::Kernel => spec.loop_iterations,
            Variant::ReducedKernel { keep_fraction } => {
                reduced_iterations(spec.loop_iterations, keep_fraction)
            }
        };

        for it in 0..iterations {
            if matches!(self.variant, Variant::Full) && spec.compute_per_iteration_s > 0.0 {
                phases.push(Phase::compute(spec.compute_per_iteration_s));
            }
            for io in &spec.iteration_io {
                // The first iteration performs slightly more I/O (lazy
                // dataset extension, B-tree splits); this is what makes
                // ×(1/f)-extrapolated op counts overshoot, reproducing the
                // reduced kernel's +4.87% op error in Fig 8c.
                let (byte_scale, op_scale) = if it == 0 { (1.002, 1.15) } else { (1.0, 1.0) };
                phases.push(io.to_phase(byte_scale, op_scale));
            }
            if matches!(self.variant, Variant::Full) && spec.logging_ops_per_iteration > 0 {
                phases.push(Phase::Io(IoPhase {
                    dataset: format!("{}/log", spec.name),
                    kind: IoKind::Write,
                    per_proc_bytes: spec.logging_ops_per_iteration * spec.logging_bytes_per_op,
                    ops_per_proc: spec.logging_ops_per_iteration,
                    pattern: AccessPattern::Contiguous,
                    meta_ops: 0,
                    collective_capable: false,
                    chunk_reuse_bytes: 0,
                    pre_striped: 0,
                }));
            }
        }
        phases
    }

    /// Factor to multiply observed scalable metrics by when predicting the
    /// full application's values.
    pub fn extrapolation_factor(&self) -> f64 {
        self.variant.extrapolation_factor(&self.spec)
    }

    /// Total bytes written per process across the whole run (exact model
    /// arithmetic, for accuracy analyses).
    pub fn expected_write_bytes_per_proc(&self) -> f64 {
        self.phases()
            .iter()
            .filter_map(|p| match p {
                Phase::Io(io) if io.kind == IoKind::Write => Some(io.per_proc_bytes as f64),
                _ => None,
            })
            .sum()
    }

    /// Total write ops per process across the whole run.
    pub fn expected_write_ops_per_proc(&self) -> f64 {
        self.phases()
            .iter()
            .filter_map(|p| match p {
                Phase::Io(io) if io.kind == IoKind::Write => Some(io.ops_per_proc as f64),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec() -> AppSpec {
        AppSpec {
            name: "toy".into(),
            setup_meta_ops: 8,
            setup_header_bytes: 1024,
            loop_iterations: 100,
            compute_per_iteration_s: 2.0,
            iteration_io: vec![IterationIo {
                dataset: "data".into(),
                kind: IoKind::Write,
                per_proc_bytes: 1024 * 1024,
                ops_per_proc: 16,
                pattern: AccessPattern::Contiguous,
                meta_ops: 2,
                collective_capable: true,
                chunk_reuse_bytes: 0,
                pre_striped: 0,
            }],
            logging_ops_per_iteration: 4,
            logging_bytes_per_op: 64,
        }
    }

    #[test]
    fn kernel_strips_compute_and_logging() {
        let full = Workload::new(toy_spec(), Variant::Full);
        let kernel = Workload::new(toy_spec(), Variant::Kernel);
        let full_compute: f64 = full
            .phases()
            .iter()
            .filter_map(|p| match p {
                Phase::Compute { seconds } => Some(*seconds),
                _ => None,
            })
            .sum();
        assert!(full_compute > 0.0);
        assert!(kernel.phases().iter().all(|p| p.is_io()));
        // Logging ops are gone from the kernel.
        assert!(kernel.expected_write_ops_per_proc() < full.expected_write_ops_per_proc());
    }

    #[test]
    fn kernel_keeps_all_real_bytes() {
        let full = Workload::new(toy_spec(), Variant::Full);
        let kernel = Workload::new(toy_spec(), Variant::Kernel);
        let logging_bytes = (100 * 4 * 64) as f64;
        let diff = full.expected_write_bytes_per_proc() - kernel.expected_write_bytes_per_proc();
        assert!((diff - logging_bytes).abs() < 1.0);
        // Logging is a negligible byte fraction (paper: kernel byte error 0.0002%).
        assert!(logging_bytes / full.expected_write_bytes_per_proc() < 0.001);
    }

    #[test]
    fn loop_reduction_runs_fraction_of_iterations() {
        let reduced = Workload::new(
            toy_spec(),
            Variant::ReducedKernel {
                keep_fraction: 0.01,
            },
        );
        // 1% of 100 iterations = 1 iteration (+ setup phase).
        let io_phases = reduced.phases().iter().filter(|p| p.is_io()).count();
        assert_eq!(io_phases, 2);
        assert!((reduced.extrapolation_factor() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_never_drops_below_one_iteration() {
        let mut spec = toy_spec();
        spec.loop_iterations = 3;
        let reduced = Workload::new(
            spec,
            Variant::ReducedKernel {
                keep_fraction: 0.0001,
            },
        );
        assert!(reduced.phases().iter().filter(|p| p.is_io()).count() >= 2);
    }

    #[test]
    fn extrapolated_ops_overshoot_slightly() {
        // Reduced kernel keeps iteration 0, which performs ~15% extra ops;
        // multiplying by the reduction factor therefore overshoots the
        // true per-loop ops — the effect behind Fig 8c's +4.87%.
        let kernel = Workload::new(toy_spec(), Variant::Kernel);
        let reduced = Workload::new(
            toy_spec(),
            Variant::ReducedKernel {
                keep_fraction: 0.01,
            },
        );
        let predicted = reduced.expected_write_ops_per_proc() * reduced.extrapolation_factor();
        // Compare loop ops only (subtract the setup write ops, 4 each,
        // scaled by the extrapolation factor for the reduced variant).
        let true_loop_ops = kernel.expected_write_ops_per_proc() - 4.0;
        let predicted_loop_ops = predicted - 4.0 * reduced.extrapolation_factor();
        assert!(
            predicted_loop_ops > true_loop_ops,
            "{predicted_loop_ops} vs {true_loop_ops}"
        );
    }

    #[test]
    fn full_variant_preserves_iteration_count() {
        let full = Workload::new(toy_spec(), Variant::Full);
        let computes = full.phases().iter().filter(|p| !p.is_io()).count();
        assert_eq!(computes, 100);
    }
}
