//! Trace-driven workload modelling: build an [`AppSpec`] from a
//! Darshan-like characterization log.
//!
//! §V-B discusses trace-driven kernel generation (Behzad et al., Skel):
//! when source code is unavailable, a recorded I/O characterization can
//! stand in. This module closes that loop for the simulated stack:
//! [`app_from_log`] reconstructs a workload model from per-dataset
//! counters, so a log captured from one run (or a real Darshan log mapped
//! into [`DarshanLog`]) can be re-tuned without the original application.

use crate::spec::{AppSpec, IterationIo};
use tunio_iosim::{AccessPattern, DarshanLog, IoKind};

/// Reconstruct an application model from a characterization log.
///
/// * `procs` — process count of the recorded run (log counters are
///   totals; the model needs per-process values).
/// * `compute_seconds` — total non-I/O time of the recorded run (Darshan
///   reports it as run time minus I/O time); modelled as one compute
///   phase per iteration.
///
/// The reconstruction collapses each dataset's traffic into one
/// iteration-I/O entry and uses a single-iteration loop: a log has no
/// phase boundaries, so temporal structure within the run is not
/// recoverable — exactly the fidelity limit §V-B attributes to
/// trace-based kernels versus source-based discovery.
pub fn app_from_log(name: &str, log: &DarshanLog, procs: u32, compute_seconds: f64) -> AppSpec {
    let procs = procs.max(1);
    let mut iteration_io: Vec<IterationIo> = Vec::new();
    for (dataset, c) in &log.records {
        for (kind, bytes, ops) in [
            (IoKind::Write, c.bytes_written, c.write_ops),
            (IoKind::Read, c.bytes_read, c.read_ops),
        ] {
            if bytes <= 0.0 {
                continue;
            }
            let per_proc_bytes = (bytes / procs as f64).round().max(1.0) as u64;
            let ops_per_proc = (ops / procs as f64).round().max(1.0) as u64;
            let avg_op = per_proc_bytes / ops_per_proc.max(1);
            iteration_io.push(IterationIo {
                dataset: dataset.clone(),
                kind,
                per_proc_bytes,
                ops_per_proc,
                // The log does not record offsets; assume the classic
                // interleaved-record layout with the observed op size.
                pattern: AccessPattern::Strided {
                    record: avg_op.max(4096),
                },
                meta_ops: 4,
                collective_capable: true,
                chunk_reuse_bytes: 0,
                pre_striped: 0,
            });
        }
    }
    AppSpec {
        name: name.into(),
        setup_meta_ops: 16,
        setup_header_bytes: 4096,
        loop_iterations: 1,
        compute_per_iteration_s: compute_seconds.max(0.0),
        iteration_io,
        logging_ops_per_iteration: 0,
        logging_bytes_per_op: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hacc;
    use crate::spec::{Variant, Workload};
    use tunio_iosim::Simulator;
    use tunio_params::{ParameterSpace, StackConfig};

    #[test]
    fn log_derived_model_matches_recorded_traffic() {
        let space = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&space);
        let sim = Simulator::cori_4node(3);

        // Record a run of the real model…
        let original = Workload::new(hacc(), Variant::Kernel);
        let (report, log) = sim.run_instrumented(&original.phases(), &cfg, 0);

        // …rebuild from the log and replay.
        let rebuilt = app_from_log("hacc-from-log", &log, sim.cluster.procs, 0.0);
        let replay = Workload::new(rebuilt, Variant::Full);
        let replay_report = sim.run(&replay.phases(), &cfg, 0);

        // Byte totals match closely (ops and pattern are approximations).
        let err = (replay_report.bytes_written - report.bytes_written).abs() / report.bytes_written;
        assert!(err < 0.01, "byte error {err}");
    }

    #[test]
    fn log_derived_model_preserves_tuning_response() {
        // The reconstructed workload must still respond to tuning the way
        // the original does (same winner), or re-tuning from a log would
        // be pointless.
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(4);
        let default = StackConfig::defaults(&space);
        let mut tuned_cfg = space.default_config();
        tuned_cfg.set_gene(tunio_params::ParamId::CollectiveIo, 1);
        tuned_cfg.set_gene(tunio_params::ParamId::CbNodes, 2);
        tuned_cfg.set_gene(tunio_params::ParamId::StripingFactor, 9);
        let tuned = tuned_cfg.resolve(&space);

        let original = Workload::new(hacc(), Variant::Kernel);
        let (_, log) = sim.run_instrumented(&original.phases(), &default, 0);
        let rebuilt = Workload::new(
            app_from_log("hacc-from-log", &log, sim.cluster.procs, 0.0),
            Variant::Full,
        );

        let orig_gain = sim.run(&original.phases(), &tuned, 0).perf()
            / sim.run(&original.phases(), &default, 0).perf();
        let rebuilt_gain = sim.run(&rebuilt.phases(), &tuned, 0).perf()
            / sim.run(&rebuilt.phases(), &default, 0).perf();
        assert!(orig_gain > 1.5 && rebuilt_gain > 1.5);
        assert!(
            (orig_gain / rebuilt_gain).clamp(0.25, 4.0) == orig_gain / rebuilt_gain,
            "gains diverge: {orig_gain} vs {rebuilt_gain}"
        );
    }

    #[test]
    fn empty_log_yields_io_free_model() {
        let log = DarshanLog::default();
        let app = app_from_log("empty", &log, 8, 12.0);
        assert!(app.iteration_io.is_empty());
        assert_eq!(app.compute_per_iteration_s, 12.0);
    }
}

#[cfg(test)]
mod read_path_tests {
    use super::*;
    use crate::bdcats;
    use crate::spec::{Variant, Workload};
    use tunio_iosim::Simulator;
    use tunio_params::{ParameterSpace, StackConfig};

    #[test]
    fn read_heavy_logs_rebuild_with_matching_read_traffic() {
        let space = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&space);
        let sim = Simulator::cori_500node(7);
        let original = Workload::new(bdcats(), Variant::Kernel);
        let (report, log) = sim.run_instrumented(&original.phases(), &cfg, 0);

        let rebuilt = app_from_log("bdcats-from-log", &log, sim.cluster.procs, 180.0);
        let replay = Workload::new(rebuilt, Variant::Full);
        let replay_report = sim.run(&replay.phases(), &cfg, 0);

        let read_err = (replay_report.bytes_read - report.bytes_read).abs() / report.bytes_read;
        assert!(read_err < 0.01, "read byte error {read_err}");
        // Read-dominance is preserved (α stays low).
        assert!(
            replay_report.alpha() < 0.3,
            "alpha {}",
            replay_report.alpha()
        );
        // Compute estimate carried through.
        assert_eq!(replay_report.compute_time_s, 180.0);
    }
}
