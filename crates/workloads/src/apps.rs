//! The paper's applications, reconstructed as [`AppSpec`]s.
//!
//! Sizes are chosen so that simulated runtimes and tuning budgets land in
//! the same ranges the paper reports (hundreds of simulated minutes per
//! tuning campaign; see EXPERIMENTS.md for calibration notes). Patterns
//! follow each application's published I/O behaviour.

use crate::spec::{AppSpec, IterationIo};
use tunio_iosim::{AccessPattern, IoKind};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// HACC — cosmology N-body code. Checkpoints interleaved per-particle
/// records (nine fields per particle) at every analysis step; write-only,
/// compute-heavy between dumps. Used in Figs 2 and 10.
pub fn hacc() -> AppSpec {
    AppSpec {
        name: "hacc".into(),
        setup_meta_ops: 24,
        setup_header_bytes: 64 * KIB,
        loop_iterations: 10,
        compute_per_iteration_s: 30.0,
        iteration_io: vec![IterationIo {
            dataset: "particles".into(),
            kind: IoKind::Write,
            per_proc_bytes: 64 * MIB,
            ops_per_proc: 256,
            pattern: AccessPattern::Strided { record: 256 * KIB },
            meta_ops: 12,
            collective_capable: true,
            chunk_reuse_bytes: 0,
            pre_striped: 0,
        }],
        logging_ops_per_iteration: 6,
        logging_bytes_per_op: 96,
    }
}

/// VPIC — plasma physics particle-in-cell code. Dumps particle data in
/// large interleaved records; write-only. Used in Fig 2 and for offline
/// subset-picker training.
pub fn vpic() -> AppSpec {
    AppSpec {
        name: "vpic".into(),
        setup_meta_ops: 18,
        setup_header_bytes: 32 * KIB,
        loop_iterations: 8,
        compute_per_iteration_s: 45.0,
        iteration_io: vec![IterationIo {
            dataset: "particles".into(),
            kind: IoKind::Write,
            per_proc_bytes: 96 * MIB,
            ops_per_proc: 384,
            pattern: AccessPattern::Strided { record: 512 * KIB },
            meta_ops: 10,
            collective_capable: true,
            chunk_reuse_bytes: 0,
            pre_striped: 0,
        }],
        logging_ops_per_iteration: 4,
        logging_bytes_per_op: 128,
    }
}

/// FLASH — astrophysics AMR code. Writes large chunked checkpoints plus
/// smaller plotfiles each analysis interval; chunked datasets re-touch a
/// per-process working set, so the chunk cache matters. Used in Figs 2
/// and 9.
pub fn flash() -> AppSpec {
    AppSpec {
        name: "flash".into(),
        setup_meta_ops: 40,
        setup_header_bytes: 128 * KIB,
        loop_iterations: 10,
        compute_per_iteration_s: 24.0,
        iteration_io: vec![
            IterationIo {
                dataset: "checkpoint".into(),
                kind: IoKind::Write,
                per_proc_bytes: 48 * MIB,
                ops_per_proc: 192,
                pattern: AccessPattern::Strided { record: 256 * KIB },
                meta_ops: 16,
                collective_capable: true,
                chunk_reuse_bytes: 96 * MIB,
                pre_striped: 0,
            },
            IterationIo {
                dataset: "plotfile".into(),
                kind: IoKind::Write,
                per_proc_bytes: 12 * MIB,
                ops_per_proc: 96,
                pattern: AccessPattern::Strided { record: 128 * KIB },
                meta_ops: 12,
                collective_capable: true,
                chunk_reuse_bytes: 24 * MIB,
                pre_striped: 0,
            },
        ],
        logging_ops_per_iteration: 8,
        logging_bytes_per_op: 80,
    }
}

/// MACSio — proxy I/O workload generator. The paper baselines its
/// compute-to-I/O ratio on VPIC runs with the Dipole configuration
/// (Fig 8): compute is ~15% of default-configuration runtime, so
/// extracting the I/O kernel shaves ~14% off tuning time.
pub fn macsio_vpic_dipole() -> AppSpec {
    AppSpec {
        name: "macsio-vpic-dipole".into(),
        setup_meta_ops: 20,
        setup_header_bytes: 32 * KIB,
        loop_iterations: 20,
        compute_per_iteration_s: 5.5,
        iteration_io: vec![IterationIo {
            dataset: "dumps".into(),
            kind: IoKind::Write,
            per_proc_bytes: 64 * MIB,
            ops_per_proc: 256,
            pattern: AccessPattern::Strided { record: 256 * KIB },
            meta_ops: 10,
            collective_capable: true,
            chunk_reuse_bytes: 0,
            pre_striped: 0,
        }],
        // ~19% of write ops are logging (paper Fig 8c: the extracted
        // kernel's write-op count differs by 19.05% because these drop).
        logging_ops_per_iteration: 60,
        logging_bytes_per_op: 72,
    }
}

/// BD-CATS — parallel DBSCAN clustering of particle data. Read-dominated:
/// each analysis step loads a slab of the particle dataset (with heavy
/// neighbour re-reads, so the chunk cache matters), clusters it, and
/// writes compact cluster labels. Evaluated end-to-end at 500 nodes /
/// 1600 processes in Figs 11 and 12.
pub fn bdcats() -> AppSpec {
    AppSpec {
        name: "bdcats".into(),
        setup_meta_ops: 32,
        setup_header_bytes: 16 * KIB,
        loop_iterations: 4,
        compute_per_iteration_s: 45.0,
        iteration_io: vec![
            IterationIo {
                dataset: "particles".into(),
                kind: IoKind::Read,
                per_proc_bytes: 128 * MIB,
                ops_per_proc: 512,
                pattern: AccessPattern::Strided { record: 1024 * KIB },
                meta_ops: 8,
                collective_capable: true,
                chunk_reuse_bytes: 64 * MIB,
                // The trillion-particle input dataset was written striped
                // over 32 OSTs; reads inherit at least that parallelism.
                pre_striped: 32,
            },
            IterationIo {
                dataset: "clusters".into(),
                kind: IoKind::Write,
                per_proc_bytes: 16 * MIB,
                ops_per_proc: 128,
                pattern: AccessPattern::Strided { record: 128 * KIB },
                meta_ops: 6,
                collective_capable: true,
                chunk_reuse_bytes: 0,
                pre_striped: 0,
            },
        ],
        logging_ops_per_iteration: 6,
        logging_bytes_per_op: 100,
    }
}

/// All five applications, for sweeps.
pub fn all_apps() -> Vec<AppSpec> {
    vec![hacc(), vpic(), flash(), macsio_vpic_dipole(), bdcats()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Variant, Workload};
    use tunio_iosim::{Phase, Simulator};
    use tunio_params::{ParameterSpace, StackConfig};

    #[test]
    fn all_apps_have_distinct_names() {
        let apps = all_apps();
        let mut names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), apps.len());
    }

    #[test]
    fn write_apps_are_write_dominated() {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(1);
        for app in [hacc(), vpic(), flash(), macsio_vpic_dipole()] {
            let w = Workload::new(app.clone(), Variant::Full);
            let r = sim.run(&w.phases(), &StackConfig::defaults(&space), 0);
            assert!(r.alpha() > 0.99, "{} alpha {}", app.name, r.alpha());
        }
    }

    #[test]
    fn bdcats_is_read_dominated() {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_500node(1);
        let w = Workload::new(bdcats(), Variant::Full);
        let r = sim.run(&w.phases(), &StackConfig::defaults(&space), 0);
        assert!(r.alpha() < 0.25, "alpha {}", r.alpha());
        assert!(r.bytes_read > 4.0 * r.bytes_written);
    }

    #[test]
    fn macsio_compute_fraction_near_15_percent() {
        // Fig 8a requires kernel extraction to save ~14% of tuning time;
        // that falls out of compute being ~15% of the default runtime.
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(1);
        let w = Workload::new(macsio_vpic_dipole(), Variant::Full);
        let r = sim.run(&w.phases(), &StackConfig::defaults(&space), 0);
        let frac = r.compute_time_s / r.elapsed_s;
        assert!(
            (0.08..0.30).contains(&frac),
            "compute fraction {frac:.3} outside target band"
        );
    }

    #[test]
    fn kernel_variant_is_strictly_faster() {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(1);
        for app in all_apps() {
            let full = Workload::new(app.clone(), Variant::Full);
            let kernel = Workload::new(app.clone(), Variant::Kernel);
            let tf = sim
                .run(&full.phases(), &StackConfig::defaults(&space), 0)
                .elapsed_s;
            let tk = sim
                .run(&kernel.phases(), &StackConfig::defaults(&space), 0)
                .elapsed_s;
            assert!(tk < tf, "{}: kernel {tk} >= full {tf}", app.name);
        }
    }

    #[test]
    fn reduced_kernel_is_dramatically_faster() {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(1);
        let app = macsio_vpic_dipole();
        let kernel = Workload::new(app.clone(), Variant::Kernel);
        let reduced = Workload::new(
            app,
            Variant::ReducedKernel {
                keep_fraction: 0.01,
            },
        );
        let tk = sim
            .run(&kernel.phases(), &StackConfig::defaults(&space), 0)
            .elapsed_s;
        let tr = sim
            .run(&reduced.phases(), &StackConfig::defaults(&space), 0)
            .elapsed_s;
        assert!(tr < tk / 5.0, "reduced {tr} vs kernel {tk}");
    }

    #[test]
    fn phases_scale_with_iterations() {
        let app = hacc();
        let w = Workload::new(app.clone(), Variant::Kernel);
        let io_count = w.phases().iter().filter(|p| p.is_io()).count();
        // setup + one write phase per iteration.
        assert_eq!(io_count, 1 + app.loop_iterations as usize);
    }

    #[test]
    fn full_hacc_runtime_is_minutes_scale() {
        // Default-configuration runs should take simulated minutes, not
        // hours, so 50-generation tuning campaigns land in the paper's
        // hundreds-of-minutes budgets.
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(1);
        let w = Workload::new(hacc(), Variant::Full);
        let r = sim.run(&w.phases(), &StackConfig::defaults(&space), 0);
        let minutes = r.elapsed_s / 60.0;
        assert!((2.0..40.0).contains(&minutes), "runtime {minutes:.1} min");
    }

    #[test]
    fn compute_phases_present_only_in_full() {
        for app in all_apps() {
            let kernel = Workload::new(app, Variant::Kernel);
            assert!(kernel.phases().iter().all(|p| matches!(p, Phase::Io(_))));
        }
    }
}
