//! # tunio-workloads — application I/O kernels
//!
//! Synthetic reconstructions of the applications the paper tunes: HACC,
//! VPIC and FLASH (offline-training and component-evaluation kernels),
//! MACSio configured with the VPIC-dipole compute-to-I/O ratio (Fig 8), and
//! BD-CATS (the 500-node end-to-end analysis, Figs 11–12).
//!
//! Each application is described by an [`AppSpec`] — a setup phase plus a
//! main loop of compute and I/O with optional logging writes — from which
//! three executable [`Variant`]s are derived:
//!
//! * [`Variant::Full`] — the original application: compute + I/O + logging.
//! * [`Variant::Kernel`] — what TunIO's Application I/O Discovery extracts:
//!   I/O and the statements it depends on; compute and trivial logging
//!   writes are gone.
//! * [`Variant::ReducedKernel`] — the kernel after loop reduction: only a
//!   fraction of loop iterations run, with observed metrics extrapolated
//!   back by the reduction factor.

#![warn(missing_docs)]

pub mod apps;
pub mod features;
pub mod from_log;
pub mod spec;

pub use apps::{all_apps, bdcats, flash, hacc, macsio_vpic_dipole, vpic};
pub use features::WorkloadFeatures;
pub use from_log::app_from_log;
pub use spec::{AppSpec, IterationIo, Variant, Workload};
