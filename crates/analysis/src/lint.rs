//! Lint diagnostics on top of the dataflow analyses.
//!
//! Dataflow lints, byproducts of machinery the slicer already needs:
//!
//! * **dead-store** — a value assigned to a local is never read
//!   ([`crate::dataflow::Liveness`]);
//! * **unreachable-code** — statements in CFG blocks no path reaches
//!   ([`crate::cfg`]);
//! * **uninit-read** — a local may be read before any write reaches it
//!   ([`crate::dataflow::ReachingDefs`] entry definitions);
//! * **io-in-loop** — an I/O call under loop nesting; depth 1 is
//!   informational (most HPC output loops are intentional), depth ≥ 2 is
//!   a warning (the paper's request-decomposition antipattern).
//!
//! Pattern-aware I/O lints, fed by the abstract-interpretation workload
//! model ([`crate::iomodel`]):
//!
//! * **small-io-request** — a constant request under 64 KiB issued from
//!   inside a loop (per-request overhead dominates; batch or buffer);
//! * **stride-vs-chunk-mismatch** — a strided access whose stride
//!   disagrees with its request size: gaps between requests are
//!   informational, overlapping rewrites are a warning;
//! * **read-modify-write-in-loop** — the same buffer is read and
//!   rewritten within one loop iteration, defeating write-behind
//!   caching.
//!
//! Diagnostics carry real source [`Span`]s from the parser and render as
//! stable one-line text (golden-tested) or machine-readable JSON via the
//! `tunio-lint` binary.

use crate::cfg::build_cfg;
use crate::dataflow::{solve, Liveness, ReachingDefs};
use crate::iomodel::{predict_program, Direction, PredPattern};
use crate::resolve::{resolve_function, VarKind};
use crate::slice::{default_io_predicate, io_function_closure};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use tunio_cminus::ast::{Program, StmtId, StmtKind};
use tunio_cminus::span::Span;

/// Requests below this many bytes inside a loop trip `small-io-request`.
pub const SMALL_IO_BYTES: u64 = 64 * 1024;

/// How serious a diagnostic is. `--deny warnings` fails on [`Severity::Warning`]
/// only; [`Severity::Info`] never gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; never fails a gated run.
    Info,
    /// Likely-bug or antipattern; fails `--deny warnings`.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// Which lint produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// Assigned value is never read.
    DeadStore,
    /// No control-flow path reaches the statement.
    UnreachableCode,
    /// A local may be read before initialization.
    UninitRead,
    /// I/O call nested inside loops.
    IoInLoop,
    /// Constant sub-64KiB request issued from a loop.
    SmallIoRequest,
    /// Strided access whose stride disagrees with the request size.
    StrideChunkMismatch,
    /// Buffer read and rewritten within one loop iteration.
    ReadModifyWriteInLoop,
}

impl LintKind {
    /// Stable machine-readable name (used by `--allow` and JSON output).
    pub fn slug(&self) -> &'static str {
        match self {
            LintKind::DeadStore => "dead-store",
            LintKind::UnreachableCode => "unreachable-code",
            LintKind::UninitRead => "uninit-read",
            LintKind::IoInLoop => "io-in-loop",
            LintKind::SmallIoRequest => "small-io-request",
            LintKind::StrideChunkMismatch => "stride-vs-chunk-mismatch",
            LintKind::ReadModifyWriteInLoop => "read-modify-write-in-loop",
        }
    }

    /// Parse a slug back into a kind.
    pub fn from_slug(s: &str) -> Option<LintKind> {
        match s {
            "dead-store" => Some(LintKind::DeadStore),
            "unreachable-code" => Some(LintKind::UnreachableCode),
            "uninit-read" => Some(LintKind::UninitRead),
            "io-in-loop" => Some(LintKind::IoInLoop),
            "small-io-request" => Some(LintKind::SmallIoRequest),
            "stride-vs-chunk-mismatch" => Some(LintKind::StrideChunkMismatch),
            "read-modify-write-in-loop" => Some(LintKind::ReadModifyWriteInLoop),
            _ => None,
        }
    }

    /// Every lint, in rendering order.
    pub fn all() -> [LintKind; 7] {
        [
            LintKind::DeadStore,
            LintKind::UnreachableCode,
            LintKind::UninitRead,
            LintKind::IoInLoop,
            LintKind::SmallIoRequest,
            LintKind::StrideChunkMismatch,
            LintKind::ReadModifyWriteInLoop,
        ]
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.slug())
    }
}

/// One rendered finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Producing lint.
    pub kind: LintKind,
    /// Function the statement lives in.
    pub func: String,
    /// Source span of the offending statement.
    pub span: Span,
    /// Offending statement id.
    pub stmt: StmtId,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// One-line stable rendering: `warning[dead-store] 12:5-12:24 (main): …`.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] {} ({}): {}",
            self.severity, self.kind, self.span, self.func, self.message
        )
    }

    /// Machine-readable JSON object.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "severity": self.severity.to_string(),
            "kind": self.kind.slug(),
            "func": self.func.clone(),
            "line": self.span.start.line,
            "col": self.span.start.col,
            "end_line": self.span.end.line,
            "end_col": self.span.end.col,
            "message": self.message.clone(),
        })
    }
}

/// Lint level configuration with order-independent precedence.
///
/// A specific lint slug always beats the broad `warnings` category, and
/// between a specific `--allow` and a specific `--deny` of the same lint
/// the deny wins. Because levels are *sets*, not a last-flag-wins scan,
/// `--allow warnings --deny small-io-request` and
/// `--deny small-io-request --allow warnings` mean the same thing.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Kinds filtered out of the result (unless also denied).
    pub allow: BTreeSet<LintKind>,
    /// Kinds that are kept *and* gate the run (exit 1) regardless of
    /// severity or any broader allow.
    pub deny: BTreeSet<LintKind>,
    /// `--allow warnings`: suppress warning-severity findings not
    /// specifically denied.
    pub allow_warnings: bool,
    /// `--deny warnings`: warning-severity findings not specifically
    /// allowed gate the run.
    pub deny_warnings: bool,
}

impl LintOptions {
    /// Whether a diagnostic is filtered from the output entirely.
    pub fn suppresses(&self, d: &Diagnostic) -> bool {
        if self.deny.contains(&d.kind) {
            return false; // specific deny beats every allow
        }
        if self.allow.contains(&d.kind) {
            return true;
        }
        d.severity == Severity::Warning && self.allow_warnings && !self.deny_warnings
    }

    /// Whether a diagnostic fails a gated (`--deny`) run.
    pub fn gates(&self, d: &Diagnostic) -> bool {
        if self.suppresses(d) {
            return false;
        }
        if self.deny.contains(&d.kind) {
            return true;
        }
        d.severity == Severity::Warning && self.deny_warnings && !self.allow.contains(&d.kind)
    }
}

/// Whether any diagnostic is a [`Severity::Warning`].
pub fn has_warnings(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Warning)
}

/// Whether any diagnostic fails the run under `opts`' deny levels.
pub fn has_gating(diags: &[Diagnostic], opts: &LintOptions) -> bool {
    diags.iter().any(|d| opts.gates(d))
}

/// Run all lints over a program.
pub fn lint_program(program: &Program, opts: &LintOptions) -> Vec<Diagnostic> {
    let io_fns = io_function_closure(program, &default_io_predicate);

    // Structural context shared by all functions: spans, loop nesting.
    let mut span_of: BTreeMap<StmtId, Span> = BTreeMap::new();
    let mut loop_ids: BTreeSet<StmtId> = BTreeSet::new();
    let mut loop_depth: BTreeMap<StmtId, usize> = BTreeMap::new();
    program.visit_stmts(|stmt, ancestry| {
        span_of.insert(stmt.id, stmt.span);
        if matches!(
            stmt.kind,
            StmtKind::For { .. } | StmtKind::While { .. } | StmtKind::DoWhile { .. }
        ) {
            loop_ids.insert(stmt.id);
        }
        let depth = ancestry.iter().filter(|a| loop_ids.contains(*a)).count();
        loop_depth.insert(stmt.id, depth);
    });
    let span = |id: StmtId| span_of.get(&id).copied().unwrap_or_default();

    let mut diags: Vec<Diagnostic> = Vec::new();
    for f in &program.functions {
        let res = resolve_function(f);
        let cfg = build_cfg(f);
        let rd = solve(&cfg, &ReachingDefs::new(&res));
        let live = solve(&cfg, &Liveness::new(&res));
        let unreachable: BTreeSet<StmtId> = cfg.unreachable_stmts().into_iter().collect();

        // unreachable-code: facts in dead blocks are vacuous, so the
        // other lints skip those statements instead of piling on.
        for id in &unreachable {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                kind: LintKind::UnreachableCode,
                func: f.name.clone(),
                span: span(*id),
                stmt: *id,
                message: "statement is never executed".to_string(),
            });
        }

        for id in &res.stmts {
            if unreachable.contains(id) {
                continue;
            }

            // dead-store: a write to a local whose value nothing reads.
            if let Some(after) = live.after(*id) {
                for v in res.writes_of(*id) {
                    let info = res.var(*v);
                    if matches!(info.kind, VarKind::Local { .. }) && !after.contains(v) {
                        diags.push(Diagnostic {
                            severity: Severity::Warning,
                            kind: LintKind::DeadStore,
                            func: f.name.clone(),
                            span: span(*id),
                            stmt: *id,
                            message: format!("value assigned to `{}` is never read", info.name),
                        });
                    }
                }
            }

            // uninit-read: the entry (uninitialized) definition of a
            // local reaches a read of it.
            if let Some(before) = rd.before(*id) {
                for v in res.reads_of(*id) {
                    let info = res.var(*v);
                    if matches!(info.kind, VarKind::Local { .. }) && before.contains(&(*v, None)) {
                        diags.push(Diagnostic {
                            severity: Severity::Warning,
                            kind: LintKind::UninitRead,
                            func: f.name.clone(),
                            span: span(*id),
                            stmt: *id,
                            message: format!("`{}` may be read before initialization", info.name),
                        });
                    }
                }
            }

            // io-in-loop: storage I/O under loop nesting.
            let io_call = res
                .calls_of(*id)
                .iter()
                .find(|c| default_io_predicate(c) || io_fns.contains(*c));
            if let Some(call) = io_call {
                let depth = loop_depth.get(id).copied().unwrap_or(0);
                if depth > 0 {
                    let (severity, message) = if depth >= 2 {
                        (
                            Severity::Warning,
                            format!(
                                "I/O call `{call}` inside nested loops (depth {depth}) — \
                                 consider aggregating requests"
                            ),
                        )
                    } else {
                        (Severity::Info, format!("I/O call `{call}` inside a loop"))
                    };
                    diags.push(Diagnostic {
                        severity,
                        kind: LintKind::IoInLoop,
                        func: f.name.clone(),
                        span: span(*id),
                        stmt: *id,
                        message,
                    });
                }
            }
        }
    }

    diags.extend(pattern_diagnostics(program));

    diags.retain(|d| !opts.suppresses(d));
    diags.sort_by(|a, b| {
        (a.span.start, a.kind, &a.message).cmp(&(b.span.start, b.kind, &b.message))
    });
    diags.dedup_by(|a, b| (a.kind, a.stmt, &a.message) == (b.kind, b.stmt, &b.message));
    diags
}

/// Pattern-aware I/O lints driven by the static workload model.
fn pattern_diagnostics(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut seen: BTreeSet<(LintKind, StmtId)> = BTreeSet::new();
    for pred in predict_program(program) {
        for site in &pred.sites {
            // small-io-request: constant sub-64KiB transfers from a loop.
            if site.loop_id.is_some() {
                if let Some(bytes) = site.bytes_per_op.as_const() {
                    if bytes > 0
                        && (bytes as u64) < SMALL_IO_BYTES
                        && seen.insert((LintKind::SmallIoRequest, site.stmt))
                    {
                        diags.push(Diagnostic {
                            severity: Severity::Warning,
                            kind: LintKind::SmallIoRequest,
                            func: site.func.clone(),
                            span: site.span,
                            stmt: site.stmt,
                            message: format!(
                                "`{}` moves only {} bytes per call inside a loop — \
                                 batch requests or buffer the output",
                                site.call, bytes
                            ),
                        });
                    }
                }
            }

            // stride-vs-chunk-mismatch: stride disagrees with request.
            if let PredPattern::Strided { stride } = site.pattern {
                if let Some(bytes) = site.bytes_per_op.as_const() {
                    let bytes = bytes.max(0) as u64;
                    if bytes > 0
                        && stride != bytes
                        && seen.insert((LintKind::StrideChunkMismatch, site.stmt))
                    {
                        let (severity, message) = if stride > bytes {
                            (
                                Severity::Info,
                                format!(
                                    "`{}` strides {} bytes but transfers {} — each request \
                                     leaves a {}-byte gap (consider chunk-aligned sizes)",
                                    site.call,
                                    stride,
                                    bytes,
                                    stride - bytes
                                ),
                            )
                        } else {
                            (
                                Severity::Warning,
                                format!(
                                    "`{}` strides {} bytes but transfers {} — consecutive \
                                     requests overlap by {} bytes and rewrite data",
                                    site.call,
                                    stride,
                                    bytes,
                                    bytes - stride
                                ),
                            )
                        };
                        diags.push(Diagnostic {
                            severity,
                            kind: LintKind::StrideChunkMismatch,
                            func: site.func.clone(),
                            span: site.span,
                            stmt: site.stmt,
                            message,
                        });
                    }
                }
            }
        }

        // read-modify-write-in-loop: a read of buffer B followed by a
        // write of B inside the same loop.
        for (i, w) in pred.sites.iter().enumerate() {
            if w.dir != Direction::Write || w.loop_id.is_none() || w.buf.is_none() {
                continue;
            }
            let rmw = pred.sites[..i]
                .iter()
                .any(|r| r.dir == Direction::Read && r.loop_id == w.loop_id && r.buf == w.buf);
            if rmw && seen.insert((LintKind::ReadModifyWriteInLoop, w.stmt)) {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    kind: LintKind::ReadModifyWriteInLoop,
                    func: w.func.clone(),
                    span: w.span,
                    stmt: w.stmt,
                    message: format!(
                        "buffer read and rewritten via `{}` in the same loop iteration — \
                         read-modify-write defeats write-behind caching",
                        w.call
                    ),
                });
            }
        }
    }
    diags
}

/// Render diagnostics as stable line-per-finding text.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let infos = diags.len() - warnings;
    out.push_str(&format!("{warnings} warning(s), {infos} info(s)\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::parser::parse;

    fn lints(src: &str) -> Vec<Diagnostic> {
        lint_program(&parse(src).unwrap(), &LintOptions::default())
    }

    fn kinds(diags: &[Diagnostic]) -> Vec<LintKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn dead_store_is_reported_with_span() {
        let diags = lints("void f() {\n    int x = stale();\n    x = fresh();\n    g(x);\n}");
        assert_eq!(kinds(&diags), vec![LintKind::DeadStore]);
        assert_eq!(diags[0].span.start.line, 2);
        assert!(diags[0].message.contains("`x`"));
    }

    #[test]
    fn live_store_is_clean() {
        let diags = lints("void f() { int x = a(); g(x); }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn external_write_is_not_a_dead_store() {
        let diags = lints("void f() { total = compute(); }");
        assert!(diags.is_empty(), "externals are observable: {diags:?}");
    }

    #[test]
    fn unreachable_after_return() {
        let diags = lints("void f() { return; cleanup(); }");
        assert_eq!(kinds(&diags), vec![LintKind::UnreachableCode]);
    }

    #[test]
    fn uninit_read_on_one_path() {
        let diags = lints("void f(int c) { int x; if (c) { x = 1; } g(x); }");
        assert_eq!(kinds(&diags), vec![LintKind::UninitRead]);
        assert!(diags[0].message.contains("`x`"));
        // Initializing the decl silences it.
        let clean = lints("void f(int c) { int x = 0; if (c) { x = 1; } g(x); }");
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn io_in_single_loop_is_info_nested_is_warning() {
        let single = lints("void f(int n) { for (int i = 0; i < n; i++) { H5Dwrite(d, b); } }");
        let io: Vec<_> = single
            .iter()
            .filter(|d| d.kind == LintKind::IoInLoop)
            .collect();
        assert_eq!(io.len(), 1);
        assert_eq!(io[0].severity, Severity::Info);

        let nested = lints(
            "void f(int n) { for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { \
             fwrite(b, 1, n, fp); } } }",
        );
        let io: Vec<_> = nested
            .iter()
            .filter(|d| d.kind == LintKind::IoInLoop)
            .collect();
        assert_eq!(io.len(), 1);
        assert_eq!(io[0].severity, Severity::Warning);
        assert!(io[0].message.contains("depth 2"));
    }

    #[test]
    fn interprocedural_io_in_loop() {
        let diags = lints(
            "void emit(double * b) { H5Dwrite(d, b); }\n\
             void f(int n) { for (int i = 0; i < n; i++) { emit(buf); } }",
        );
        assert!(
            diags
                .iter()
                .any(|d| d.kind == LintKind::IoInLoop && d.message.contains("emit")),
            "{diags:?}"
        );
    }

    #[test]
    fn allow_filters_kinds() {
        let src = "void f() { int x = stale(); x = fresh(); g(x); return; dead(); }";
        let mut opts = LintOptions::default();
        opts.allow.insert(LintKind::DeadStore);
        let diags = lint_program(&parse(src).unwrap(), &opts);
        assert_eq!(kinds(&diags), vec![LintKind::UnreachableCode]);
    }

    #[test]
    fn small_io_request_in_loop() {
        let diags = lints(
            "void f(int n) { hid_t fp = fopen(\"x.bin\", 0); double * b = alloc_buf(64); \
             for (int i = 0; i < n; i++) { fwrite(b, 8, 64, fp); } fclose(fp); }",
        );
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == LintKind::SmallIoRequest)
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].severity, Severity::Warning);
        assert!(hits[0].message.contains("512 bytes"));

        // Outside a loop, or at >= 64 KiB, it stays quiet.
        let clean = lints(
            "void f() { hid_t fp = fopen(\"x.bin\", 0); double * b = alloc_buf(64); \
             fwrite(b, 8, 64, fp); fclose(fp); }",
        );
        assert!(!clean.iter().any(|d| d.kind == LintKind::SmallIoRequest));
        let big = lints(
            "void f(int n) { hid_t fp = fopen(\"x.bin\", 0); double * b = alloc_buf(8192); \
             for (int i = 0; i < n; i++) { fwrite(b, 8, 8192, fp); } fclose(fp); }",
        );
        assert!(!big.iter().any(|d| d.kind == LintKind::SmallIoRequest));
    }

    #[test]
    fn stride_gap_is_info_overlap_is_warning() {
        let gap = lints(
            "void f(int n) { hid_t fp = fopen(\"x.bin\", 0); double * b = alloc_buf(16384); \
             for (int i = 0; i < n; i++) { fseek(fp, i * 4194304, 0); \
             fwrite(b, 8, 16384, fp); } fclose(fp); }",
        );
        let hit = gap
            .iter()
            .find(|d| d.kind == LintKind::StrideChunkMismatch)
            .expect("gap mismatch");
        assert_eq!(hit.severity, Severity::Info);
        assert!(hit.message.contains("gap"));

        let overlap = lints(
            "void f(int n) { hid_t fp = fopen(\"x.bin\", 0); double * b = alloc_buf(16384); \
             for (int i = 0; i < n; i++) { fseek(fp, i * 65536, 0); \
             fwrite(b, 8, 16384, fp); } fclose(fp); }",
        );
        let hit = overlap
            .iter()
            .find(|d| d.kind == LintKind::StrideChunkMismatch)
            .expect("overlap mismatch");
        assert_eq!(hit.severity, Severity::Warning);
        assert!(hit.message.contains("overlap"));
    }

    #[test]
    fn read_modify_write_in_loop_detected() {
        let diags = lints(
            "void f(int n) { hid_t d = H5Dopen(fl, \"x\"); double * b = alloc_buf(n); \
             for (int i = 0; i < n; i++) { H5Dread(d, b); update(b, n); H5Dwrite(d, b); } }",
        );
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == LintKind::ReadModifyWriteInLoop)
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");

        // Distinct buffers in the same loop are not an RMW.
        let clean = lints(
            "void f(int n) { hid_t d = H5Dopen(fl, \"x\"); double * a = alloc_in(n); \
             double * b = alloc_out(n); \
             for (int i = 0; i < n; i++) { H5Dread(d, a); H5Dwrite(d, b); } }",
        );
        assert!(!clean
            .iter()
            .any(|d| d.kind == LintKind::ReadModifyWriteInLoop));
    }

    #[test]
    fn specific_deny_overrides_broad_allow() {
        // Both orders of construction produce identical behaviour: the
        // options are sets, so precedence is by specificity, not flag
        // position.
        let src = "void f(int n) { hid_t fp = fopen(\"x.bin\", 0); double * b = alloc_buf(64); \
             for (int i = 0; i < n; i++) { fwrite(b, 8, 64, fp); } fclose(fp); }";
        let prog = parse(src).unwrap();

        let mut opts = LintOptions {
            allow_warnings: true,
            ..LintOptions::default()
        };
        opts.deny.insert(LintKind::SmallIoRequest);
        let diags = lint_program(&prog, &opts);
        assert!(
            diags.iter().any(|d| d.kind == LintKind::SmallIoRequest),
            "specific deny must survive --allow warnings: {diags:?}"
        );
        assert!(has_gating(&diags, &opts));

        // Specific allow beats broad deny-warnings (and does not gate).
        let mut opts2 = LintOptions {
            deny_warnings: true,
            ..LintOptions::default()
        };
        opts2.allow.insert(LintKind::SmallIoRequest);
        let diags2 = lint_program(&prog, &opts2);
        assert!(!diags2.iter().any(|d| d.kind == LintKind::SmallIoRequest));
        assert!(!has_gating(&diags2, &opts2), "{diags2:?}");

        // Deny wins a direct tie with allow on the same lint.
        let mut opts3 = LintOptions::default();
        opts3.allow.insert(LintKind::SmallIoRequest);
        opts3.deny.insert(LintKind::SmallIoRequest);
        let diags3 = lint_program(&prog, &opts3);
        assert!(diags3.iter().any(|d| d.kind == LintKind::SmallIoRequest));
        assert!(has_gating(&diags3, &opts3));
    }

    #[test]
    fn slugs_round_trip() {
        for k in LintKind::all() {
            assert_eq!(LintKind::from_slug(k.slug()), Some(k));
        }
        assert_eq!(LintKind::from_slug("nonsense"), None);
    }

    #[test]
    fn render_is_one_line_per_finding() {
        let diags = lints("void f() { return; dead(); }");
        let text = render_text(&diags);
        assert!(text.contains("warning[unreachable-code]"));
        assert!(text.ends_with("1 warning(s), 0 info(s)\n"));
    }
}
