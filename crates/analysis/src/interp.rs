//! Abstract interpretation over per-function CFGs.
//!
//! Runs a worklist fixpoint of the [`crate::domain`] interval+stride
//! domain over the [`crate::cfg`] basic blocks, with **widening at loop
//! heads** (any block re-entered more than a small delay), **branch
//! refinement** along conditional edges (the CFG builder guarantees
//! `succs[0]` is the true edge and `succs[1]` the false edge of a
//! conditional block), a lightweight **points-to/buffer-size** analysis
//! for allocation calls, and **handle tracking** for file/dataset opens.
//!
//! After the fixpoint converges the interpreter runs one structural pass
//! to extract **loop trip counts** (symbolic where the bounds are size
//! parameters) and **per-statement execution counts** — products of the
//! enclosing trip counts, corrected for `i % k == 0` guards and guarded
//! `continue`s. [`crate::iomodel`] consumes these to turn I/O call sites
//! into workload predictions.
//!
//! ## Extern-call convention
//!
//! Calls to unknown externs are modelled with the same convention the
//! dynamic replay path uses, so static predictions and dynamic traces
//! agree by construction wherever the analysis is precise:
//!
//! * `alloc*`/`malloc`-like calls return a fresh buffer of `arg0`
//!   elements (element size from the declared pointer type),
//! * `rand*`/`random*`/`*hash*` calls return an unknown value (⊤),
//! * any other call taking a pointer returns its first pointer argument
//!   (the "repack/advance in place" idiom), and
//! * every remaining unknown extern returns `0`.

use std::collections::BTreeMap;

use tunio_cminus::ast::{Block, Expr, Function, Stmt, StmtId, StmtKind};

use crate::cfg::{build_cfg, BlockId, Cfg};
use crate::domain::AbsVal;
use crate::resolve::{resolve_function, FnResolution, VarId, VarKind};

/// Fixpoint iterations a block is recomputed exactly before widening
/// kicks in at its join.
const WIDEN_DELAY: usize = 3;

/// Hard cap on fixpoint block recomputations (backstop; widening should
/// converge far earlier).
const MAX_VISITS: usize = 64;

/// An abstract runtime value: a number plus optional buffer/handle
/// identity (points-to).
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    /// Numeric abstraction.
    pub num: AbsVal,
    /// Buffer this value points at, if any (key into
    /// [`FnAbsState::buffers`]).
    pub buf: Option<StmtId>,
    /// File/dataset handle this value carries, if any (key into
    /// [`FnAbsState::handles`]).
    pub handle: Option<StmtId>,
}

impl Value {
    /// A plain number with no pointer/handle identity.
    pub fn num(num: AbsVal) -> Self {
        Value {
            num,
            buf: None,
            handle: None,
        }
    }

    fn join(&self, other: &Value) -> Value {
        Value {
            num: self.num.join(&other.num),
            buf: if self.buf == other.buf {
                self.buf
            } else {
                None
            },
            handle: if self.handle == other.handle {
                self.handle
            } else {
                None
            },
        }
    }

    fn widen(&self, other: &Value) -> Value {
        Value {
            num: self.num.widen(&other.num),
            buf: if self.buf == other.buf {
                self.buf
            } else {
                None
            },
            handle: if self.handle == other.handle {
                self.handle
            } else {
                None
            },
        }
    }
}

/// Abstract environment: one [`Value`] per resolved variable.
pub type Env = BTreeMap<VarId, Value>;

fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = a.clone();
    for (k, v) in b {
        out.entry(*k)
            .and_modify(|cur| *cur = cur.join(v))
            .or_insert_with(|| v.clone());
    }
    out
}

fn widen_env(old: &Env, new: &Env) -> Env {
    let mut out = old.clone();
    for (k, v) in new {
        out.entry(*k)
            .and_modify(|cur| *cur = cur.widen(v))
            .or_insert_with(|| v.clone());
    }
    out
}

/// A buffer discovered at an allocation site.
#[derive(Debug, Clone)]
pub struct BufferInfo {
    /// The allocation statement.
    pub site: StmtId,
    /// Variable the buffer was first bound to (for reports).
    pub var: String,
    /// Element count (often symbolic in a size parameter).
    pub elems: AbsVal,
    /// Element size in bytes, derived from the declared pointer type.
    pub elem_size: u64,
}

impl BufferInfo {
    /// Total size in bytes (`elems * elem_size`).
    pub fn bytes(&self) -> AbsVal {
        self.elems.mul(&AbsVal::constant(self.elem_size as i64))
    }
}

/// A file or dataset handle discovered at an open/create site.
#[derive(Debug, Clone)]
pub struct HandleInfo {
    /// The open/create statement.
    pub site: StmtId,
    /// The API that produced it (`fopen`, `H5Dcreate`, ...).
    pub api: String,
    /// Path or dataset name (first string literal argument).
    pub object: String,
}

/// Summary of one loop after the fixpoint.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Trip count (symbolic where bounds are size parameters).
    pub trip: AbsVal,
    /// Whether the count is exact (no `break` can leave early and the
    /// bounds were fully evaluated). Inexact loops lower prediction
    /// confidence.
    pub exact: bool,
    /// Induction variable, when the loop has the canonical
    /// `for (i = a; i < b; i += s)` shape.
    pub induction: Option<VarId>,
    /// Induction step per iteration (`+s`/`-s`), when known.
    pub step: Option<i64>,
}

/// Result of abstractly interpreting one function.
#[derive(Debug, Clone)]
pub struct FnAbsState {
    /// Function name.
    pub func: String,
    /// Abstract environment *before* each reachable statement.
    pub env_at: BTreeMap<StmtId, Env>,
    /// Buffers keyed by allocation site.
    pub buffers: BTreeMap<StmtId, BufferInfo>,
    /// Handles keyed by open/create site.
    pub handles: BTreeMap<StmtId, HandleInfo>,
    /// Loop summaries keyed by the loop statement.
    pub loops: BTreeMap<StmtId, LoopInfo>,
    /// How many times each statement executes per call of the function
    /// (product of enclosing trip counts and guard frequencies).
    pub exec: BTreeMap<StmtId, AbsVal>,
    /// Fixpoint block recomputations performed (exposed for the
    /// widening-termination property tests).
    pub iterations: usize,
}

impl FnAbsState {
    /// The environment recorded before `stmt` (empty if unreachable).
    pub fn env_before(&self, stmt: StmtId) -> Env {
        self.env_at.get(&stmt).cloned().unwrap_or_default()
    }
}

/// Extern-name classification shared with the dynamic replay path (see
/// module docs). Allocation: returns a fresh buffer.
pub fn is_alloc_fn(name: &str) -> bool {
    name == "malloc"
        || name == "calloc"
        || name.starts_with("alloc")
        || name.contains("_alloc")
        || name.starts_with("allocate")
}

/// Extern-name classification: returns an unpredictable value.
pub fn is_rand_fn(name: &str) -> bool {
    name.starts_with("rand") || name.starts_with("random") || name.contains("hash")
}

/// APIs that produce a file/dataset handle we track.
pub fn handle_api(name: &str) -> bool {
    matches!(
        name,
        "fopen" | "open" | "H5Fcreate" | "H5Fopen" | "H5Dcreate" | "H5Dopen" | "MPI_File_open"
    )
}

/// Element size in bytes for a declared pointer type (`double *` → 8).
pub fn elem_size_of_type(ty: &str) -> u64 {
    let base = ty.trim_end_matches('*').trim();
    match base {
        "char" | "unsigned char" | "signed char" => 1,
        "short" | "unsigned short" => 2,
        "int" | "unsigned" | "unsigned int" | "float" => 4,
        _ => 8,
    }
}

struct Interp<'a> {
    res: FnResolution,
    cfg: Cfg,
    stmt_map: BTreeMap<StmtId, &'a Stmt>,
    buffers: BTreeMap<StmtId, BufferInfo>,
    handles: BTreeMap<StmtId, HandleInfo>,
    name_cache: BTreeMap<String, VarId>,
}

fn index_stmts<'a>(block: &'a Block, out: &mut BTreeMap<StmtId, &'a Stmt>) {
    for stmt in &block.stmts {
        out.insert(stmt.id, stmt);
        match &stmt.kind {
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => {
                index_stmts(then_block, out);
                if let Some(e) = else_block {
                    index_stmts(e, out);
                }
            }
            StmtKind::For {
                init, update, body, ..
            } => {
                out.insert(init.id, init);
                out.insert(update.id, update);
                index_stmts(body, out);
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                index_stmts(body, out);
            }
            _ => {}
        }
    }
}

impl<'a> Interp<'a> {
    fn new(f: &'a Function) -> Self {
        let res = resolve_function(f);
        let cfg = build_cfg(f);
        let mut stmt_map = BTreeMap::new();
        index_stmts(&f.body, &mut stmt_map);
        // Global name → var map, preferring parameters, then later decls
        // (shadowing collapses to the last binding; acceptable for size
        // arithmetic, and the corpus does not shadow).
        let mut name_cache = BTreeMap::new();
        for (i, v) in res.vars.iter().enumerate() {
            name_cache.insert(v.name.clone(), VarId(i as u32));
        }
        // Parameters win over locals of the same name.
        for (i, v) in res.vars.iter().enumerate() {
            if matches!(v.kind, VarKind::Param) {
                name_cache.insert(v.name.clone(), VarId(i as u32));
            }
        }
        Interp {
            res,
            cfg,
            stmt_map,
            buffers: BTreeMap::new(),
            handles: BTreeMap::new(),
            name_cache,
        }
    }

    fn var_named(&self, name: &str) -> Option<VarId> {
        self.name_cache.get(name).copied()
    }

    fn entry_env(&self) -> Env {
        let mut env = Env::new();
        for (i, v) in self.res.vars.iter().enumerate() {
            if matches!(v.kind, VarKind::Param) {
                env.insert(VarId(i as u32), Value::num(AbsVal::param(&v.name)));
            }
        }
        env
    }

    fn lookup(&self, env: &Env, name: &str) -> Value {
        match self.var_named(name) {
            Some(id) => match env.get(&id) {
                Some(v) => v.clone(),
                None => match self.res.vars[id.0 as usize].kind {
                    VarKind::Param => Value::num(AbsVal::param(name)),
                    _ => Value::num(AbsVal::top()),
                },
            },
            None => Value::num(AbsVal::top()),
        }
    }

    fn eval_call(
        &mut self,
        site: StmtId,
        name: &str,
        args: &[Expr],
        env: &Env,
        elem_hint: u64,
    ) -> Value {
        let arg_vals: Vec<Value> = args.iter().map(|a| self.eval(site, a, env, 8)).collect();
        if is_alloc_fn(name) {
            let elems = arg_vals
                .first()
                .map(|v| v.num.clone())
                .unwrap_or_else(AbsVal::top);
            let elem_size = if elem_hint == 0 { 8 } else { elem_hint };
            self.buffers
                .entry(site)
                .and_modify(|b| {
                    b.elems = elems.clone();
                    b.elem_size = elem_size;
                })
                .or_insert_with(|| BufferInfo {
                    site,
                    var: String::new(),
                    elems: elems.clone(),
                    elem_size,
                });
            return Value {
                num: AbsVal::top(),
                buf: Some(site),
                handle: None,
            };
        }
        if handle_api(name) {
            let object = args
                .iter()
                .find_map(|a| match a {
                    Expr::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .unwrap_or_default();
            self.handles.entry(site).or_insert_with(|| HandleInfo {
                site,
                api: name.to_string(),
                object,
            });
            return Value {
                num: AbsVal::top(),
                buf: None,
                handle: Some(site),
            };
        }
        if is_rand_fn(name) {
            return Value::num(AbsVal::top());
        }
        // Pointer passthrough: unknown extern taking a buffer/handle
        // returns its first pointer argument ("repack in place" idiom).
        let buf = arg_vals.iter().find_map(|v| v.buf);
        let handle = arg_vals.iter().find_map(|v| v.handle);
        Value {
            num: AbsVal::constant(0),
            buf,
            handle,
        }
    }

    fn eval(&mut self, site: StmtId, expr: &Expr, env: &Env, elem_hint: u64) -> Value {
        match expr {
            Expr::Int(v) => Value::num(AbsVal::constant(*v)),
            Expr::Float(text) => {
                let v = text.parse::<f64>().unwrap_or(0.0) as i64;
                Value::num(AbsVal::constant(v))
            }
            Expr::Str(_) | Expr::Char(_) => Value::num(AbsVal::top()),
            Expr::Ident(name) => self.lookup(env, name),
            Expr::Call { name, args } => self.eval_call(site, name, args, env, elem_hint),
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(site, lhs, env, elem_hint);
                let b = self.eval(site, rhs, env, elem_hint);
                let num = match op.as_str() {
                    "+" => a.num.add(&b.num),
                    "-" => a.num.sub(&b.num),
                    "*" => a.num.mul(&b.num),
                    "/" => a.num.div(&b.num),
                    "%" => a.num.rem(&b.num),
                    "<<" => match b.num.as_const() {
                        Some(s) if (0..63).contains(&s) => a.num.mul(&AbsVal::constant(1i64 << s)),
                        _ => AbsVal::top(),
                    },
                    ">>" => match b.num.as_const() {
                        Some(s) if (0..63).contains(&s) => a.num.div(&AbsVal::constant(1i64 << s)),
                        _ => AbsVal::top(),
                    },
                    "<" | "<=" | ">" | ">=" | "==" | "!=" | "&&" | "||" => AbsVal::range(0, 1),
                    _ => AbsVal::top(),
                };
                // Pointer arithmetic keeps the buffer identity.
                let buf = a.buf.or(b.buf);
                Value {
                    num,
                    buf,
                    handle: None,
                }
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(site, operand, env, elem_hint);
                match op.as_str() {
                    "-" => Value::num(v.num.neg()),
                    "!" => Value::num(AbsVal::range(0, 1)),
                    "*" | "&" => v,
                    _ => Value::num(AbsVal::top()),
                }
            }
            Expr::Postfix { operand, .. } => self.eval(site, operand, env, elem_hint),
            Expr::Index { base, .. } => {
                let b = self.eval(site, base, env, elem_hint);
                Value {
                    num: AbsVal::top(),
                    buf: b.buf,
                    handle: None,
                }
            }
            Expr::Member { .. } => Value::num(AbsVal::top()),
        }
    }

    /// Transfer one statement through the environment.
    fn transfer(&mut self, stmt: &Stmt, env: &mut Env) {
        match &stmt.kind {
            StmtKind::Decl { ty, name, init, .. } => {
                let hint = elem_size_of_type(ty);
                let val = match init {
                    Some(e) => self.eval(stmt.id, e, env, hint),
                    None => Value::num(AbsVal::top()),
                };
                if let Some(buf_site) = val.buf {
                    if let Some(b) = self.buffers.get_mut(&buf_site) {
                        if b.var.is_empty() {
                            b.var = name.clone();
                        }
                    }
                }
                if let Some(id) = self.decl_target(stmt.id, name) {
                    env.insert(id, val);
                }
            }
            StmtKind::Assign { lhs, op, rhs } => {
                if let Expr::Ident(name) = lhs {
                    let hint = self.decl_type_hint(name);
                    let rv = self.eval(stmt.id, rhs, env, hint);
                    if let Some(id) = self.var_named(name) {
                        let new = match op.as_str() {
                            "=" => rv,
                            "+=" => {
                                let cur = self.lookup(env, name);
                                Value {
                                    num: cur.num.add(&rv.num),
                                    buf: cur.buf,
                                    handle: cur.handle,
                                }
                            }
                            "-=" => {
                                let cur = self.lookup(env, name);
                                Value {
                                    num: cur.num.sub(&rv.num),
                                    buf: cur.buf,
                                    handle: cur.handle,
                                }
                            }
                            "*=" => {
                                let cur = self.lookup(env, name);
                                Value::num(cur.num.mul(&rv.num))
                            }
                            "/=" => {
                                let cur = self.lookup(env, name);
                                Value::num(cur.num.div(&rv.num))
                            }
                            _ => Value::num(AbsVal::top()),
                        };
                        env.insert(id, new);
                    }
                } else {
                    // Index/member store: evaluate for allocation side
                    // effects, leave the root binding untouched.
                    let _ = self.eval(stmt.id, rhs, env, 8);
                }
            }
            StmtKind::Expr(e) => match e {
                Expr::Postfix { op, operand } | Expr::Unary { op, operand }
                    if op == "++" || op == "--" =>
                {
                    if let Expr::Ident(name) = operand.as_ref() {
                        if let Some(id) = self.var_named(name) {
                            let cur = self.lookup(env, name);
                            let delta = if op == "++" { 1 } else { -1 };
                            env.insert(id, Value::num(cur.num.add(&AbsVal::constant(delta))));
                        }
                    }
                }
                _ => {
                    let _ = self.eval(stmt.id, e, env, 8);
                }
            },
            // Control statements transfer nothing; refinement happens on
            // their outgoing edges, and `return`/`break`/`continue` have
            // no environment effect.
            _ => {}
        }
    }

    fn decl_target(&self, stmt: StmtId, name: &str) -> Option<VarId> {
        for (i, v) in self.res.vars.iter().enumerate() {
            if v.decl == Some(stmt) && v.name == name {
                return Some(VarId(i as u32));
            }
        }
        self.var_named(name)
    }

    fn decl_type_hint(&self, name: &str) -> u64 {
        if let Some(id) = self.var_named(name) {
            if let Some(decl) = self.res.vars[id.0 as usize].decl {
                if let Some(stmt) = self.stmt_map.get(&decl) {
                    if let StmtKind::Decl { ty, .. } = &stmt.kind {
                        return elem_size_of_type(ty);
                    }
                }
            }
        }
        8
    }

    /// Refine `env` under `cond == taken`.
    fn refine(&mut self, site: StmtId, cond: &Expr, taken: bool, env: &Env) -> Env {
        let mut out = env.clone();
        self.refine_into(site, cond, taken, &mut out);
        out
    }

    fn refine_into(&mut self, site: StmtId, cond: &Expr, taken: bool, env: &mut Env) {
        match cond {
            Expr::Unary { op, operand } if op == "!" => {
                self.refine_into(site, operand, !taken, env);
            }
            Expr::Binary { op, lhs, rhs } if op == "&&" && taken => {
                self.refine_into(site, lhs, true, env);
                self.refine_into(site, rhs, true, env);
            }
            Expr::Binary { op, lhs, rhs } if op == "||" && !taken => {
                self.refine_into(site, lhs, false, env);
                self.refine_into(site, rhs, false, env);
            }
            Expr::Binary { op, lhs, rhs } => {
                fn flip(o: &str) -> &str {
                    match o {
                        "<" => ">",
                        "<=" => ">=",
                        ">" => "<",
                        ">=" => "<=",
                        other => other,
                    }
                }
                // Normalize to var-on-the-left.
                let (var, vop, other) = match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::Ident(n), _) => (Some(n.clone()), op.clone(), rhs.as_ref()),
                    (_, Expr::Ident(n)) => (Some(n.clone()), flip(op).to_string(), lhs.as_ref()),
                    _ => (None, op.clone(), rhs.as_ref()),
                };
                // `x % m == r` congruence guard (also reached via `!=` on
                // the false edge).
                if (op == "==" && taken) || (op == "!=" && !taken) {
                    if let (
                        Expr::Binary {
                            op: inner,
                            lhs: il,
                            rhs: ir,
                        },
                        Some(r),
                    ) = (
                        lhs.as_ref(),
                        self.eval(site, rhs, &env.clone(), 8).num.as_const(),
                    ) {
                        if inner == "%" {
                            if let (Expr::Ident(n), Some(m)) = (
                                il.as_ref(),
                                self.eval(site, ir, &env.clone(), 8).num.as_const(),
                            ) {
                                if let Some(id) = self.var_named(n) {
                                    if let Some(v) = env.get(&id) {
                                        let refined = v.num.refine_cong(m, r);
                                        let mut nv = v.clone();
                                        nv.num = refined;
                                        env.insert(id, nv);
                                    }
                                }
                            }
                        }
                    }
                }
                let (Some(name), Some(c)) =
                    (var, self.eval(site, other, &env.clone(), 8).num.as_const())
                else {
                    return;
                };
                let Some(id) = self.var_named(&name) else {
                    return;
                };
                let Some(cur) = env.get(&id).cloned() else {
                    return;
                };
                let num = match (vop.as_str(), taken) {
                    ("<", true) => cur.num.refine_le(c - 1),
                    ("<", false) => cur.num.refine_ge(c),
                    ("<=", true) => cur.num.refine_le(c),
                    ("<=", false) => cur.num.refine_ge(c + 1),
                    (">", true) => cur.num.refine_ge(c + 1),
                    (">", false) => cur.num.refine_le(c),
                    (">=", true) => cur.num.refine_ge(c),
                    (">=", false) => cur.num.refine_le(c - 1),
                    ("==", true) => cur.num.refine_le(c).refine_ge(c),
                    ("!=", false) => cur.num.refine_le(c).refine_ge(c),
                    _ => cur.num.clone(),
                };
                let mut nv = cur;
                nv.num = num;
                env.insert(id, nv);
            }
            Expr::Ident(name) if !taken => {
                if let Some(id) = self.var_named(name) {
                    if let Some(cur) = env.get(&id).cloned() {
                        let mut nv = cur;
                        nv.num = nv.num.refine_le(0).refine_ge(0);
                        env.insert(id, nv);
                    }
                }
            }
            _ => {}
        }
    }

    /// Condition of a block's terminating control statement, if any.
    fn block_cond(&self, block: &crate::cfg::BasicBlock) -> Option<(StmtId, Expr)> {
        let last = *block.stmts.last()?;
        let stmt = self.stmt_map.get(&last)?;
        match &stmt.kind {
            StmtKind::If { cond, .. } => Some((last, cond.clone())),
            StmtKind::While { cond, .. } => Some((last, cond.clone())),
            StmtKind::DoWhile { cond, .. } => Some((last, cond.clone())),
            StmtKind::For { cond: Some(c), .. } => Some((last, c.clone())),
            _ => None,
        }
    }

    /// Run the worklist fixpoint; returns (stable in-envs per block,
    /// iteration count).
    fn fixpoint(&mut self) -> (Vec<Env>, usize) {
        let nblocks = self.cfg.blocks.len();
        let mut in_envs: Vec<Option<Env>> = vec![None; nblocks];
        let mut out_edges: BTreeMap<(BlockId, BlockId), Env> = BTreeMap::new();
        let mut visits = vec![0usize; nblocks];
        let mut iterations = 0usize;
        let entry = self.cfg.entry;
        in_envs[entry.0 as usize] = Some(self.entry_env());
        let mut work: Vec<BlockId> = vec![entry];
        while let Some(bid) = work.pop() {
            let bi = bid.0 as usize;
            if visits[bi] >= MAX_VISITS {
                continue;
            }
            visits[bi] += 1;
            iterations += 1;
            // Recompute the in-env from predecessor edges (entry keeps its
            // parameter env joined in).
            let block = self.cfg.blocks[bi].clone();
            let mut joined: Option<Env> = if bid == entry {
                Some(self.entry_env())
            } else {
                None
            };
            for p in &block.preds {
                if let Some(e) = out_edges.get(&(*p, bid)) {
                    joined = Some(match joined {
                        Some(j) => join_env(&j, e),
                        None => e.clone(),
                    });
                }
            }
            let Some(mut new_in) = joined else {
                continue;
            };
            if let Some(old) = &in_envs[bi] {
                if visits[bi] > WIDEN_DELAY {
                    new_in = widen_env(old, &new_in);
                }
                if *old == new_in && visits[bi] > 1 {
                    // Stable; still make sure out-edges exist.
                    if block
                        .succs
                        .iter()
                        .all(|s| out_edges.contains_key(&(bid, *s)))
                    {
                        continue;
                    }
                }
            }
            in_envs[bi] = Some(new_in.clone());
            // Transfer through the block.
            let mut env = new_in;
            for sid in &block.stmts {
                if let Some(stmt) = self.stmt_map.get(sid).copied() {
                    self.transfer(stmt, &mut env);
                }
            }
            // Emit out-edges, refining along conditional edges.
            let cond = self.block_cond(&block);
            for (i, succ) in block.succs.iter().enumerate() {
                let out = match &cond {
                    Some((sid, c)) if block.succs.len() >= 2 => self.refine(*sid, c, i == 0, &env),
                    _ => env.clone(),
                };
                let changed = match out_edges.get(&(bid, *succ)) {
                    Some(prev) => *prev != out,
                    None => true,
                };
                if changed {
                    out_edges.insert((bid, *succ), out);
                    if !work.contains(succ) {
                        work.push(*succ);
                    }
                }
            }
        }
        let final_envs = in_envs.into_iter().map(|e| e.unwrap_or_default()).collect();
        (final_envs, iterations)
    }

    /// Record the environment before every statement by replaying each
    /// reachable block from its stable in-env.
    fn record_envs(&mut self, in_envs: &[Env]) -> BTreeMap<StmtId, Env> {
        let mut env_at = BTreeMap::new();
        let blocks: Vec<_> = self
            .cfg
            .reachable_blocks()
            .map(|(id, b)| (id, b.clone()))
            .collect();
        for (bid, block) in blocks {
            let mut env = in_envs[bid.0 as usize].clone();
            for sid in &block.stmts {
                env_at.insert(*sid, env.clone());
                if let Some(stmt) = self.stmt_map.get(sid).copied() {
                    self.transfer(stmt, &mut env);
                }
            }
        }
        env_at
    }
}

/// Whether a block of statements contains a top-level (not nested in an
/// inner loop) `break`.
fn has_toplevel_break(block: &Block) -> bool {
    block.stmts.iter().any(|s| match &s.kind {
        StmtKind::Break => true,
        StmtKind::If {
            then_block,
            else_block,
            ..
        } => has_toplevel_break(then_block) || else_block.as_ref().is_some_and(has_toplevel_break),
        _ => false,
    })
}

/// Step extracted from a `for` update statement (`i += s`, `i++`, ...).
fn update_step(update: &Stmt) -> Option<(String, i64, Option<Expr>)> {
    match &update.kind {
        StmtKind::Assign { lhs, op, rhs } => {
            let Expr::Ident(name) = lhs else { return None };
            match op.as_str() {
                "+=" => Some((name.clone(), 1, Some(rhs.clone()))),
                "-=" => Some((name.clone(), -1, Some(rhs.clone()))),
                _ => None,
            }
        }
        StmtKind::Expr(Expr::Postfix { op, operand })
        | StmtKind::Expr(Expr::Unary { op, operand }) => {
            let Expr::Ident(name) = operand.as_ref() else {
                return None;
            };
            match op.as_str() {
                "++" => Some((name.clone(), 1, None)),
                "--" => Some((name.clone(), -1, None)),
                _ => None,
            }
        }
        _ => None,
    }
}

struct CountPass<'a, 'b> {
    interp: &'b mut Interp<'a>,
    env_at: &'b BTreeMap<StmtId, Env>,
    loops: BTreeMap<StmtId, LoopInfo>,
    exec: BTreeMap<StmtId, AbsVal>,
}

impl<'a, 'b> CountPass<'a, 'b> {
    /// Weaken a count to "somewhere between 0 and the current bound".
    fn weaken(count: &AbsVal) -> AbsVal {
        AbsVal {
            lo: crate::domain::Bound::Finite(0),
            hi: count.hi,
            cong: crate::domain::Congruence::top(),
            sym: None,
        }
    }

    fn eval_at(&mut self, stmt: StmtId, expr: &Expr) -> AbsVal {
        let env = self.env_at.get(&stmt).cloned().unwrap_or_default();
        self.interp.eval(stmt, expr, &env, 8).num
    }

    /// Trip count of a loop statement, evaluated in its header env.
    fn trip_of(&mut self, stmt: &Stmt) -> LoopInfo {
        match &stmt.kind {
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => {
                let breakable = has_toplevel_break(body) || deep_break(body);
                let Some((ivar_name, dir, step_expr)) = update_step(update) else {
                    return LoopInfo {
                        trip: CountPass::unknown_trip(),
                        exact: false,
                        induction: None,
                        step: None,
                    };
                };
                let step = match &step_expr {
                    Some(e) => self.eval_at(stmt.id, e).as_const().unwrap_or(0) * dir,
                    None => dir,
                };
                if step == 0 {
                    return LoopInfo {
                        trip: CountPass::unknown_trip(),
                        exact: false,
                        induction: self.interp.var_named(&ivar_name),
                        step: None,
                    };
                }
                // Initial value from the init statement's expression.
                let a = match &init.kind {
                    StmtKind::Decl { init: Some(e), .. } => self.eval_at(stmt.id, e),
                    StmtKind::Assign { op, rhs, .. } if op == "=" => self.eval_at(stmt.id, rhs),
                    _ => AbsVal::top(),
                };
                let Some(c) = cond else {
                    // for(;;): unbounded unless a break exits.
                    return LoopInfo {
                        trip: CountPass::unknown_trip(),
                        exact: false,
                        induction: self.interp.var_named(&ivar_name),
                        step: Some(step),
                    };
                };
                let trip = self.comparison_trip(stmt.id, c, &ivar_name, &a, step);
                match trip {
                    Some(mut t) => {
                        let mut exact = true;
                        if breakable {
                            // A break can exit early: the computed trip is
                            // an upper bound; keep the symbolic bound for
                            // prediction but lower confidence.
                            t = AbsVal {
                                lo: crate::domain::Bound::Finite(0),
                                hi: t.hi,
                                cong: crate::domain::Congruence::top(),
                                sym: t.sym,
                            };
                            exact = false;
                        }
                        LoopInfo {
                            trip: t,
                            exact,
                            induction: self.interp.var_named(&ivar_name),
                            step: Some(step),
                        }
                    }
                    None => LoopInfo {
                        trip: CountPass::unknown_trip(),
                        exact: false,
                        induction: self.interp.var_named(&ivar_name),
                        step: Some(step),
                    },
                }
            }
            StmtKind::While { cond, body } => {
                // Canonical while: comparison on a var incremented in the
                // body. Otherwise evaluate the condition: the shared
                // extern convention (unknown calls return 0) makes
                // `while (unknown())` run zero times, matching replay.
                if let Some(li) = self.while_trip(stmt, cond, body) {
                    return li;
                }
                let c = self.eval_at(stmt.id, cond);
                if c.as_const() == Some(0) {
                    LoopInfo {
                        trip: AbsVal::constant(0),
                        exact: true,
                        induction: None,
                        step: None,
                    }
                } else {
                    LoopInfo {
                        trip: CountPass::unknown_trip(),
                        exact: false,
                        induction: None,
                        step: None,
                    }
                }
            }
            StmtKind::DoWhile { cond, .. } => {
                let c = self.eval_at(stmt.id, cond);
                if c.as_const() == Some(0) {
                    LoopInfo {
                        trip: AbsVal::constant(1),
                        exact: true,
                        induction: None,
                        step: None,
                    }
                } else {
                    let mut t = CountPass::unknown_trip();
                    t = t.refine_ge(1);
                    LoopInfo {
                        trip: t,
                        exact: false,
                        induction: None,
                        step: None,
                    }
                }
            }
            _ => LoopInfo {
                trip: AbsVal::constant(1),
                exact: true,
                induction: None,
                step: None,
            },
        }
    }

    fn while_trip(&mut self, stmt: &Stmt, cond: &Expr, body: &Block) -> Option<LoopInfo> {
        // Find `ivar <cmp> bound` in the condition and a single top-level
        // `ivar += s` / `ivar++` in the body.
        let Expr::Binary { op, lhs, rhs } = cond else {
            return None;
        };
        let (name, a_lo) = match lhs.as_ref() {
            Expr::Ident(n) => {
                let id = self.interp.var_named(n)?;
                let env = self.env_at.get(&stmt.id)?;
                let lo = env.get(&id)?.num.lo.finite()?;
                (n.clone(), lo)
            }
            _ => return None,
        };
        let step = body.stmts.iter().find_map(|s| {
            let (n, dir, e) = update_step(s)?;
            if n == name {
                let sv = match &e {
                    Some(expr) => self.eval_at(stmt.id, expr).as_const()?,
                    None => 1,
                };
                Some(sv * dir)
            } else {
                None
            }
        })?;
        if step <= 0 {
            return None;
        }
        let b = self.eval_at(stmt.id, rhs);
        let adj = match op.as_str() {
            "<" => 0,
            "<=" => 1,
            _ => return None,
        };
        let mut trip = b
            .sub(&AbsVal::constant(a_lo - adj))
            .div_ceil(step)
            .clamp_non_negative();
        let mut exact = true;
        if has_toplevel_break(body) || deep_break(body) {
            trip = AbsVal {
                lo: crate::domain::Bound::Finite(0),
                hi: trip.hi,
                cong: crate::domain::Congruence::top(),
                sym: trip.sym,
            };
            exact = false;
        }
        Some(LoopInfo {
            trip,
            exact,
            induction: self.interp.var_named(&name),
            step: Some(step),
        })
    }

    fn comparison_trip(
        &mut self,
        at: StmtId,
        cond: &Expr,
        ivar: &str,
        a: &AbsVal,
        step: i64,
    ) -> Option<AbsVal> {
        let Expr::Binary { op, lhs, rhs } = cond else {
            return None;
        };
        // Normalize to `ivar <op> bound`.
        let (vop, bound_expr) = match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Ident(n), _) if n == ivar => (op.clone(), rhs.as_ref()),
            (_, Expr::Ident(n)) if n == ivar => {
                let flipped = match op.as_str() {
                    "<" => ">",
                    "<=" => ">=",
                    ">" => "<",
                    ">=" => "<=",
                    o => o,
                };
                (flipped.to_string(), lhs.as_ref())
            }
            _ => return None,
        };
        let b = self.eval_at(at, bound_expr);
        let trip = match (vop.as_str(), step > 0) {
            ("<", true) => b.sub(a).div_ceil(step),
            ("<=", true) => b.sub(a).add(&AbsVal::constant(1)).div_ceil(step),
            (">", false) => a.sub(&b).div_ceil(-step),
            (">=", false) => a.sub(&b).add(&AbsVal::constant(1)).div_ceil(-step),
            _ => return None,
        };
        Some(trip.clamp_non_negative())
    }

    fn unknown_trip() -> AbsVal {
        AbsVal {
            lo: crate::domain::Bound::Finite(0),
            hi: crate::domain::Bound::PosInf,
            cong: crate::domain::Congruence::top(),
            sym: None,
        }
    }

    /// `if (x % k == 0)`-style guard: the body runs every k-th iteration.
    fn guard_every(&mut self, at: StmtId, cond: &Expr) -> Option<i64> {
        let Expr::Binary { op, lhs, rhs } = cond else {
            return None;
        };
        if op != "==" {
            return None;
        }
        let Expr::Binary {
            op: inner,
            lhs: _il,
            rhs: ir,
        } = lhs.as_ref()
        else {
            return None;
        };
        if inner != "%" {
            return None;
        }
        let m = self.eval_at(at, ir).as_const()?;
        let r = self.eval_at(at, rhs).as_const()?;
        if m > 1 && r >= 0 && r < m {
            Some(m)
        } else {
            None
        }
    }

    fn walk(&mut self, block: &Block, count: &AbsVal) {
        let mut current = count.clone();
        for stmt in &block.stmts {
            self.exec.insert(stmt.id, current.clone());
            match &stmt.kind {
                StmtKind::If {
                    cond,
                    then_block,
                    else_block,
                } => {
                    match self.guard_every(stmt.id, cond) {
                        Some(k) => {
                            let then_count = current.div_ceil(k).clamp_non_negative();
                            // t - ceil(t/k) == floor(t*(k-1)/k) for t >= 0;
                            // the product form keeps the symbolic floor
                            // expression exact (subtracting two floor
                            // forms would not).
                            let else_count = current
                                .mul(&AbsVal::constant(k - 1))
                                .div(&AbsVal::constant(k))
                                .clamp_non_negative();
                            self.walk(then_block, &then_count);
                            if let Some(e) = else_block {
                                self.walk(e, &else_count);
                            }
                            // A guarded `continue` skips the rest of the
                            // body on those iterations.
                            if ends_in_continue(then_block) {
                                current = else_count;
                            }
                        }
                        None => {
                            let w = CountPass::weaken(&current);
                            self.walk(then_block, &w);
                            if let Some(e) = else_block {
                                self.walk(e, &w);
                            }
                            if ends_in_continue(then_block) || has_toplevel_break(then_block) {
                                current = CountPass::weaken(&current);
                            }
                        }
                    }
                }
                StmtKind::For {
                    init, update, body, ..
                } => {
                    self.exec.insert(init.id, current.clone());
                    let li = self.trip_of(stmt);
                    let body_count = current.mul(&li.trip).clamp_non_negative();
                    self.exec.insert(update.id, body_count.clone());
                    self.loops.insert(stmt.id, li);
                    self.walk(body, &body_count);
                }
                StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                    let li = self.trip_of(stmt);
                    let body_count = current.mul(&li.trip).clamp_non_negative();
                    self.loops.insert(stmt.id, li);
                    self.walk(body, &body_count);
                }
                _ => {}
            }
        }
    }
}

/// Whether a nested loop (any depth) contains a `break` that targets a
/// loop at this level — conservative: any `break` inside nested blocks
/// counts only for its innermost loop, so we just look through `if`s.
fn deep_break(block: &Block) -> bool {
    // `has_toplevel_break` already looks through `if`s; breaks inside
    // nested loops belong to those loops.
    has_toplevel_break(block)
}

fn ends_in_continue(block: &Block) -> bool {
    matches!(
        block.stmts.last().map(|s| &s.kind),
        Some(StmtKind::Continue)
    )
}

/// Abstractly interpret one function: fixpoint + trip counts + execution
/// counts (see module docs).
pub fn interpret_function(f: &Function) -> FnAbsState {
    let mut interp = Interp::new(f);
    let (in_envs, iterations) = interp.fixpoint();
    let env_at = interp.record_envs(&in_envs);
    let mut pass = CountPass {
        interp: &mut interp,
        env_at: &env_at,
        loops: BTreeMap::new(),
        exec: BTreeMap::new(),
    };
    pass.walk(&f.body, &AbsVal::constant(1));
    let loops = pass.loops;
    let exec = pass.exec;
    FnAbsState {
        func: f.name.clone(),
        env_at,
        buffers: interp.buffers,
        handles: interp.handles,
        loops,
        exec,
        iterations,
    }
}

/// Evaluate an expression in the environment recorded before `at`, with
/// optional variable overrides (used by [`crate::iomodel`] to measure
/// offset linearity by substituting a symbolic induction variable).
pub fn eval_expr_at(
    f: &Function,
    state: &FnAbsState,
    at: StmtId,
    expr: &Expr,
    overrides: &[(VarId, AbsVal)],
) -> AbsVal {
    let mut interp = Interp::new(f);
    interp.buffers = state.buffers.clone();
    interp.handles = state.handles.clone();
    let mut env = state.env_before(at);
    for (id, v) in overrides {
        let entry = env.entry(*id).or_insert_with(|| Value::num(AbsVal::top()));
        entry.num = v.clone();
    }
    interp.eval(at, expr, &env, 8).num
}

/// Look up a variable id by name in `f` (parameters win over locals).
pub fn var_id_by_name(f: &Function, name: &str) -> Option<VarId> {
    let interp = Interp::new(f);
    interp.var_named(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::parser::parse;

    fn state_of(src: &str) -> (tunio_cminus::ast::Program, FnAbsState) {
        let prog = parse(src).unwrap();
        let st = interpret_function(&prog.functions[0]);
        (prog, st)
    }

    fn find_call(prog: &tunio_cminus::ast::Program, name: &str) -> StmtId {
        let mut found = None;
        prog.visit_stmts(|s, _| {
            let mut calls = Vec::new();
            match &s.kind {
                StmtKind::Expr(e) => e.call_names(&mut calls),
                StmtKind::Decl { init: Some(e), .. } => e.call_names(&mut calls),
                StmtKind::Assign { rhs, .. } => rhs.call_names(&mut calls),
                _ => {}
            }
            if calls.iter().any(|c| c == name) && found.is_none() {
                found = Some(s.id);
            }
        });
        found.expect("call site")
    }

    #[test]
    fn constant_loop_trip_is_exact() {
        let (prog, st) = state_of(
            "void f() { int total = 0; for (int i = 0; i < 10; i++) { total += 2; } g(total); }",
        );
        let (_, li) = st.loops.iter().next().expect("loop found");
        assert_eq!(li.trip.as_const(), Some(10));
        assert!(li.exact);
        // total at g(total): exactly 20 is beyond intervals after widening,
        // but it must *contain* 20.
        let g = find_call(&prog, "g");
        let env = st.env_before(g);
        let total = env
            .values()
            .find(|v| v.num.contains(20))
            .expect("some var contains 20");
        assert!(total.num.contains(20));
    }

    #[test]
    fn symbolic_trip_from_parameter() {
        let (_, st) = state_of("void f(int n) { for (int i = 0; i < n; i++) { work(i); } }");
        let (_, li) = st.loops.iter().next().expect("loop");
        let sym = li.trip.sym.as_ref().expect("symbolic trip");
        let mut bind = BTreeMap::new();
        bind.insert("n".to_string(), 17);
        assert_eq!(sym.eval(&bind), 17);
    }

    #[test]
    fn strided_loop_learns_congruence() {
        let (prog, st) = state_of("void f(int n) { for (int i = 0; i < n; i += 4) { use(i); } }");
        let use_site = find_call(&prog, "use");
        let env = st.env_before(use_site);
        let i_val = env
            .values()
            .find(|v| v.num.cong.modulus == 4)
            .expect("induction var has stride 4");
        assert_eq!(i_val.num.cong.rem, 0);
        // Trip count: ceil(n / 4).
        let (_, li) = st.loops.iter().next().unwrap();
        let mut bind = BTreeMap::new();
        bind.insert("n".to_string(), 10);
        assert_eq!(li.trip.sym.as_ref().unwrap().eval(&bind), 3);
    }

    #[test]
    fn buffer_size_is_symbolic() {
        let (prog, st) = state_of("void f(int np) { double * xx = allocate(np); h5write(xx); }");
        let alloc = find_call(&prog, "allocate");
        let buf = st.buffers.get(&alloc).expect("buffer at alloc site");
        assert_eq!(buf.elem_size, 8);
        let mut bind = BTreeMap::new();
        bind.insert("np".to_string(), 100);
        assert_eq!(buf.bytes().sym.as_ref().unwrap().eval(&bind), 800);
    }

    #[test]
    fn modulo_guard_scales_exec_count() {
        let (prog, st) = state_of(
            "void f(int n) { for (int i = 0; i < n; i++) { if (i % 4 == 0) { plot(i); } } }",
        );
        let plot = find_call(&prog, "plot");
        let count = st.exec.get(&plot).expect("exec count");
        let mut bind = BTreeMap::new();
        bind.insert("n".to_string(), 10);
        assert_eq!(count.sym.as_ref().unwrap().eval(&bind), 3); // ceil(10/4)
    }

    #[test]
    fn while_unknown_extern_runs_zero_times() {
        let (_, st) = state_of("void f() { while (more_data()) { consume(); } }");
        let (_, li) = st.loops.iter().next().unwrap();
        assert_eq!(li.trip.as_const(), Some(0));
        assert!(li.exact);
    }

    #[test]
    fn breakable_loop_keeps_upper_bound() {
        let (_, st) = state_of(
            "void f(int n) { for (int i = 0; i < n; i++) { if (done()) { break; } step(); } }",
        );
        let (_, li) = st.loops.iter().next().unwrap();
        assert!(!li.exact);
        // Upper bound survives symbolically.
        let mut bind = BTreeMap::new();
        bind.insert("n".to_string(), 6);
        assert_eq!(li.trip.sym.as_ref().unwrap().eval(&bind), 6);
        assert!(li.trip.contains(0));
    }

    #[test]
    fn widening_terminates_on_nested_loops() {
        let (_, st) = state_of(
            "void f(int n, int m) { int acc = 0; for (int i = 0; i < n; i++) { for (int j = 0; j < m; j++) { acc += 1; } } g(acc); }",
        );
        assert!(st.iterations < 200, "fixpoint ran {} visits", st.iterations);
        assert_eq!(st.loops.len(), 2);
    }

    #[test]
    fn guarded_continue_reduces_downstream_count() {
        let (prog, st) = state_of(
            "void f(int n) { for (int i = 0; i < n; i++) { if (i % 2 == 0) { continue; } work(i); } }",
        );
        let work = find_call(&prog, "work");
        let count = st.exec.get(&work).unwrap();
        let mut bind = BTreeMap::new();
        bind.insert("n".to_string(), 10);
        // 10 iterations - ceil(10/2) skipped = 5.
        assert_eq!(count.sym.as_ref().unwrap().eval(&bind), 5);
    }

    #[test]
    fn handles_track_dataset_names() {
        let (prog, st) = state_of(
            "void f() { hid_t fid = H5Fcreate(\"out.h5\", 0); hid_t did = H5Dcreate(fid, \"particles\", 0); H5Dclose(did); }",
        );
        let dcreate = find_call(&prog, "H5Dcreate");
        let h = st.handles.get(&dcreate).expect("dataset handle");
        assert_eq!(h.object, "particles");
        assert_eq!(h.api, "H5Dcreate");
    }
}
