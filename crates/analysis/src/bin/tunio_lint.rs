//! `tunio-lint` — dataflow and I/O-pattern lints for C-minus sources.
//!
//! ```text
//! tunio-lint [--sample NAME|all] [FILE...] [--json] \
//!            [--allow LINT|warnings]... [--deny LINT|warnings]...
//! ```
//!
//! Inputs are built-in samples (`--sample vpic_io`, `--sample all`) or
//! C-minus files on disk. Text output is one line per finding; `--json`
//! emits a machine-readable report.
//!
//! Lint levels are order-independent: a specific slug always beats the
//! broad `warnings` category, and `--deny` beats `--allow` on a direct
//! tie. `--deny warnings --allow io-in-loop` keeps io-in-loop findings
//! advisory while every other warning fails the run, in either flag
//! order. Exit code is 1 when any denied finding survives.

use std::process::ExitCode;
use tunio_analysis::lint::{has_gating, lint_program, render_text, LintKind, LintOptions};
use tunio_cminus::parser::parse;
use tunio_cminus::samples;

const USAGE: &str = "usage: tunio-lint [--sample NAME|all] [FILE...] \
                     [--json] [--allow LINT|warnings]... [--deny LINT|warnings]...";

struct Args {
    inputs: Vec<(String, String)>,
    json: bool,
    opts: LintOptions,
}

fn lint_level(slug: &str) -> Result<Option<LintKind>, String> {
    if slug == "warnings" {
        return Ok(None);
    }
    LintKind::from_slug(slug).map(Some).ok_or_else(|| {
        let known: Vec<&str> = LintKind::all().iter().map(|k| k.slug()).collect();
        format!(
            "unknown lint `{slug}` (known: warnings, {})",
            known.join(", ")
        )
    })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        inputs: Vec::new(),
        json: false,
        opts: LintOptions::default(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => args.json = true,
            "--deny" => {
                i += 1;
                let slug = argv
                    .get(i)
                    .ok_or("--deny expects a lint name or `warnings`")?;
                match lint_level(slug)? {
                    Some(kind) => {
                        args.opts.deny.insert(kind);
                    }
                    None => args.opts.deny_warnings = true,
                }
            }
            "--allow" => {
                i += 1;
                let slug = argv
                    .get(i)
                    .ok_or("--allow expects a lint name or `warnings`")?;
                match lint_level(slug)? {
                    Some(kind) => {
                        args.opts.allow.insert(kind);
                    }
                    None => args.opts.allow_warnings = true,
                }
            }
            "--sample" => {
                i += 1;
                let name = argv.get(i).ok_or("--sample expects a name or `all`")?;
                if name == "all" {
                    for (n, src) in samples::all_samples() {
                        args.inputs.push((n.to_string(), src.to_string()));
                    }
                } else {
                    let src = samples::all_samples()
                        .into_iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, src)| src)
                        .ok_or_else(|| {
                            let known: Vec<&str> =
                                samples::all_samples().iter().map(|(n, _)| *n).collect();
                            format!("unknown sample `{name}` (known: {})", known.join(", "))
                        })?;
                    args.inputs.push((name.clone(), src.to_string()));
                }
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            path if !path.starts_with('-') => {
                let src = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                args.inputs.push((path.to_string(), src));
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    if args.inputs.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut any_gating = false;
    let mut reports = Vec::new();
    for (name, src) in &args.inputs {
        let program = match parse(src) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name}: parse error: {e}");
                return ExitCode::from(2);
            }
        };
        let diags = lint_program(&program, &args.opts);
        any_gating |= has_gating(&diags, &args.opts);
        reports.push((name.clone(), diags));
    }

    if args.json {
        let inputs: Vec<serde_json::Value> = reports
            .iter()
            .map(|(name, diags)| {
                let findings: Vec<serde_json::Value> = diags.iter().map(|d| d.to_json()).collect();
                let warnings = diags
                    .iter()
                    .filter(|d| d.severity == tunio_analysis::Severity::Warning)
                    .count();
                serde_json::json!({
                    "name": name.clone(),
                    "warnings": warnings,
                    "infos": diags.len() - warnings,
                    "diagnostics": findings,
                })
            })
            .collect();
        let report = serde_json::json!({ "version": 1, "inputs": inputs });
        println!("{}", serde_json::to_string_pretty(&report).unwrap());
    } else {
        for (name, diags) in &reports {
            println!("== {name} ==");
            print!("{}", render_text(diags));
        }
    }

    if any_gating {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
