//! Backward program slicing seeded from I/O calls.
//!
//! The precise replacement for the seed marking pass: instead of keeping
//! *every* statement that assigns a variable with the right *name*, the
//! slicer follows reaching-definition chains over [`VarId`]s, so
//!
//! * shadowed variables never conflate (a use of the outer `size` does
//!   not drag in stores to an inner `size`), and
//! * overwritten stores are dropped (`x = a; x = b; io(x)` keeps only
//!   `x = b`).
//!
//! Control context is preserved the same way the paper's marking loop
//! does: enclosing headers of kept statements are kept, `for` headers
//! drag their init/update, and a `break`/`continue` whose nearest
//! enclosing loop is kept must be kept too. Declarations of every
//! variable a kept statement touches are kept so the reconstructed
//! kernel still compiles (the *decl anchor* rule).

use crate::cfg::build_cfg;
use crate::dataflow::{solve, Def, ReachingDefs, Solution};
use crate::resolve::{resolve_function, FnResolution, VarId};
use std::collections::{BTreeMap, BTreeSet};
use tunio_cminus::ast::{Program, StmtId, StmtKind};

/// POSIX / STDIO file-I/O functions treated as real I/O. Kept in sync
/// with `tunio-discovery`'s classifier by a cross-crate agreement test.
const POSIX_IO: [&str; 10] = [
    "fopen", "fclose", "fwrite", "fread", "fseek", "open", "close", "read", "write", "lseek",
];

/// The default I/O-call recognizer: HDF5 (`H5*`), MPI-IO (`MPI_File_*`)
/// and POSIX/STDIO file calls. Console logging (`printf` and friends)
/// does not match — it is a trivial write the kernel drops.
pub fn default_io_predicate(name: &str) -> bool {
    name.starts_with("H5") || name.starts_with("MPI_File_") || POSIX_IO.contains(&name)
}

/// Result of slicing a program.
#[derive(Debug, Clone)]
pub struct SliceResult {
    /// Statements to keep, in id order.
    pub kept: BTreeSet<StmtId>,
    /// The seed statements (those containing I/O calls, directly or via
    /// the interprocedural closure).
    pub io_seeds: BTreeSet<StmtId>,
    /// Worklist pops until fixpoint.
    pub iterations: u32,
    /// Total statements inspected.
    pub total_stmts: usize,
}

impl SliceResult {
    /// Fraction of statements kept.
    pub fn keep_ratio(&self) -> f64 {
        if self.total_stmts == 0 {
            0.0
        } else {
            self.kept.len() as f64 / self.total_stmts as f64
        }
    }
}

/// Functions that perform I/O directly or transitively (closure over the
/// call graph), per the given I/O predicate. Calls to these are treated
/// as I/O seeds, making the slice interprocedural.
pub fn io_function_closure<F: Fn(&str) -> bool>(program: &Program, is_io: &F) -> BTreeSet<String> {
    let mut calls_of: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut io_fns: BTreeSet<String> = BTreeSet::new();
    for f in &program.functions {
        let res = resolve_function(f);
        let mut called = BTreeSet::new();
        for s in &res.stmts {
            for c in res.calls_of(*s) {
                if is_io(c) {
                    io_fns.insert(f.name.clone());
                }
                called.insert(c.clone());
            }
        }
        calls_of.insert(f.name.clone(), called);
    }
    loop {
        let mut grew = false;
        for (name, called) in &calls_of {
            if !io_fns.contains(name) && called.iter().any(|c| io_fns.contains(c)) {
                io_fns.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    io_fns
}

struct FnCtx {
    res: FnResolution,
    rd: Solution<BTreeSet<Def>>,
}

/// Slice a program backward from its I/O calls.
pub fn slice_program<F: Fn(&str) -> bool>(program: &Program, is_io: &F) -> SliceResult {
    let io_fns = io_function_closure(program, is_io);

    // Per-function dataflow contexts.
    let mut fn_of: BTreeMap<StmtId, usize> = BTreeMap::new();
    let mut ctxs: Vec<FnCtx> = Vec::new();
    for (fi, f) in program.functions.iter().enumerate() {
        let res = resolve_function(f);
        let cfg = build_cfg(f);
        let rd = solve(&cfg, &ReachingDefs::new(&res));
        for s in &res.stmts {
            fn_of.insert(*s, fi);
        }
        ctxs.push(FnCtx { res, rd });
    }

    // Structural context: ancestry, for-header children, loops, exits.
    let mut ancestry_of: BTreeMap<StmtId, Vec<StmtId>> = BTreeMap::new();
    let mut header_children: BTreeMap<StmtId, Vec<StmtId>> = BTreeMap::new();
    let mut loop_ids: BTreeSet<StmtId> = BTreeSet::new();
    let mut control_exits: Vec<(StmtId, Vec<StmtId>)> = Vec::new();
    let mut total_stmts = 0usize;
    program.visit_stmts(|stmt, ancestry| {
        total_stmts += 1;
        ancestry_of.insert(stmt.id, ancestry.to_vec());
        if let StmtKind::For { init, update, .. } = &stmt.kind {
            header_children.insert(stmt.id, vec![init.id, update.id]);
        }
        if matches!(
            stmt.kind,
            StmtKind::For { .. } | StmtKind::While { .. } | StmtKind::DoWhile { .. }
        ) {
            loop_ids.insert(stmt.id);
        }
        if matches!(stmt.kind, StmtKind::Break | StmtKind::Continue) {
            control_exits.push((stmt.id, ancestry.to_vec()));
        }
    });

    // Seeds: statements calling I/O, directly or through the closure.
    let mut io_seeds: BTreeSet<StmtId> = BTreeSet::new();
    for ctx in &ctxs {
        for s in &ctx.res.stmts {
            if ctx
                .res
                .calls_of(*s)
                .iter()
                .any(|c| is_io(c) || io_fns.contains(c))
            {
                io_seeds.insert(*s);
            }
        }
    }

    let mut kept = io_seeds.clone();
    let mut worklist: Vec<StmtId> = io_seeds.iter().copied().collect();
    let mut iterations = 0u32;
    loop {
        while let Some(id) = worklist.pop() {
            iterations += 1;
            let Some(&fi) = fn_of.get(&id) else { continue };
            let ctx = &ctxs[fi];
            let mut to_mark: Vec<StmtId> = Vec::new();

            // Data dependence: only the definitions that actually *reach*
            // this statement, per variable identity.
            if let Some(rd) = ctx.rd.before(id) {
                let reads: BTreeSet<VarId> = ctx.res.reads_of(id).iter().copied().collect();
                for (v, def) in rd.iter() {
                    if reads.contains(v) {
                        if let Some(d) = def {
                            to_mark.push(*d);
                        }
                    }
                }
            }

            // Decl anchor: the declaration of every variable this
            // statement touches, so the kernel stays well-formed.
            for v in ctx.res.reads_of(id).iter().chain(ctx.res.writes_of(id)) {
                if let Some(d) = ctx.res.var(*v).decl {
                    to_mark.push(d);
                }
            }

            // Control context and for-header plumbing.
            if let Some(anc) = ancestry_of.get(&id) {
                to_mark.extend(anc.iter().copied());
            }
            if let Some(hc) = header_children.get(&id) {
                to_mark.extend(hc.iter().copied());
            }

            for m in to_mark {
                if kept.insert(m) {
                    worklist.push(m);
                }
            }
        }
        // A break/continue whose nearest enclosing loop is kept alters
        // that loop's trip count, so it must be kept too.
        for (id, anc) in &control_exits {
            if kept.contains(id) {
                continue;
            }
            if let Some(l) = anc.iter().rev().find(|a| loop_ids.contains(a)) {
                if kept.contains(l) {
                    kept.insert(*id);
                    worklist.push(*id);
                }
            }
        }
        if worklist.is_empty() {
            break;
        }
    }

    SliceResult {
        kept,
        io_seeds,
        iterations,
        total_stmts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::parser::parse;
    use tunio_cminus::samples;

    fn kept_text(src: &str) -> String {
        let prog = parse(src).unwrap();
        let slice = slice_program(&prog, &default_io_predicate);
        let printed = tunio_cminus::printer::print_program(&prog);
        let lines: Vec<&str> = printed.text.lines().collect();
        printed
            .stmt_lines
            .iter()
            .filter(|(id, _)| slice.kept.contains(id))
            .map(|(_, line)| lines[(*line - 1) as usize].trim().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn predicate_matches_discovery_vocabulary() {
        for n in ["H5Fcreate", "H5Dwrite", "MPI_File_write_all", "fwrite"] {
            assert!(default_io_predicate(n), "{n}");
        }
        for n in ["printf", "fprintf", "malloc", "MPI_Send", "compute"] {
            assert!(!default_io_predicate(n), "{n}");
        }
    }

    #[test]
    fn overwritten_store_is_dropped() {
        let text = kept_text(
            r#"
            void f(int n) {
                double * buf = alloc(n);
                buf = stale_fill(n);
                buf = final_fill(n);
                H5Dwrite(dset, buf);
            }
        "#,
        );
        assert!(text.contains("final_fill"), "{text}");
        assert!(!text.contains("stale_fill"), "overwritten store: {text}");
        assert!(text.contains("alloc"), "decl anchor keeps the decl: {text}");
    }

    #[test]
    fn shadowed_variable_does_not_conflate() {
        let text = kept_text(
            r#"
            void f(int n) {
                int size = io_size(n);
                if (n > 0) {
                    int size = scratch_size(n);
                    crunch(size);
                }
                H5Dwrite(dset, size);
            }
        "#,
        );
        assert!(text.contains("io_size"), "{text}");
        assert!(
            !text.contains("scratch_size"),
            "inner `size` is a different variable: {text}"
        );
    }

    #[test]
    fn partial_stores_all_reach() {
        let text = kept_text(
            r#"
            void f() {
                double a[4];
                a[0] = head();
                a[1] = tail();
                H5Dwrite(dset, a);
            }
        "#,
        );
        assert!(text.contains("head"), "{text}");
        assert!(text.contains("tail"), "element stores don't kill: {text}");
    }

    #[test]
    fn loop_context_and_bounds_are_kept() {
        let text = kept_text(
            r#"
            void f() {
                int end = compute_end();
                int unused = expensive();
                for (int i = 0; i < end; i++) {
                    H5Dwrite(dset, buf);
                }
            }
        "#,
        );
        assert!(text.contains("compute_end"), "{text}");
        assert!(text.contains("for ("), "{text}");
        assert!(!text.contains("expensive"), "{text}");
    }

    #[test]
    fn break_in_kept_loop_is_kept() {
        let prog = parse(
            r#"
            void f(int n) {
                for (int i = 0; i < n; i++) {
                    H5Dwrite(dset, buf);
                    if (bail()) {
                        break;
                    }
                }
            }
        "#,
        )
        .unwrap();
        let slice = slice_program(&prog, &default_io_predicate);
        let has_break = prog.functions[0].body.stmts.iter().any(|_| true);
        assert!(has_break);
        // Find the break by kind.
        let mut break_id = None;
        prog.visit_stmts(|s, _| {
            if matches!(s.kind, StmtKind::Break) {
                break_id = Some(s.id);
            }
        });
        assert!(slice.kept.contains(&break_id.unwrap()));
    }

    #[test]
    fn closure_is_transitive_and_skips_logging() {
        let prog = parse(
            r#"
            void emit(hid_t d, double * b) { H5Dwrite(d, b); }
            void log_it(double e) { printf("e %f", e); }
            void driver() { emit(dset, buf); log_it(x); }
        "#,
        )
        .unwrap();
        let fns = io_function_closure(&prog, &default_io_predicate);
        assert!(fns.contains("emit"));
        assert!(fns.contains("driver"));
        assert!(!fns.contains("log_it"));
        let slice = slice_program(&prog, &default_io_predicate);
        assert!(!slice.io_seeds.is_empty());
    }

    #[test]
    fn pure_compute_slices_to_nothing() {
        let prog = parse(samples::PURE_COMPUTE).unwrap();
        let slice = slice_program(&prog, &default_io_predicate);
        assert!(slice.kept.is_empty());
        assert_eq!(slice.keep_ratio(), 0.0);
    }

    #[test]
    fn vpic_slice_is_a_proper_subset_of_statements() {
        let prog = parse(samples::VPIC_IO).unwrap();
        let slice = slice_program(&prog, &default_io_predicate);
        assert!(!slice.io_seeds.is_empty());
        let r = slice.keep_ratio();
        assert!(r > 0.2 && r < 0.95, "keep ratio {r}");
    }
}
