//! Scoped name resolution.
//!
//! Binds every variable use to a unique [`VarId`] using C block-scoping
//! rules, so two variables that share a name — a shadowing declaration in
//! a nested block, or same-named locals in different functions — never
//! conflate. This is the fix for the seed marking pass's string-fact
//! model, which keyed def-use chains on bare names.

use std::collections::BTreeMap;
use tunio_cminus::ast::{Block, Expr, Function, Program, Stmt, StmtId, StmtKind};

/// Identity of a resolved variable within one function's resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// How a variable came into scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Declared by a `Decl` statement. `initialized` is true when the
    /// declaration has an initializer or is an array (arrays are treated
    /// coarsely as initialized storage).
    Local {
        /// Whether the declaration initializes the variable.
        initialized: bool,
    },
    /// A function parameter (initialized by the caller).
    Param,
    /// A name with no in-scope declaration — a global or external symbol.
    /// Treated as initialized and observable after the function returns.
    External,
}

/// A resolved variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source name.
    pub name: String,
    /// Declaring statement (`None` for params and externals).
    pub decl: Option<StmtId>,
    /// How the variable came into scope.
    pub kind: VarKind,
}

impl VarInfo {
    /// Whether the variable holds a defined value on function entry.
    pub fn initialized_at_entry(&self) -> bool {
        match self.kind {
            VarKind::Local { .. } => false,
            VarKind::Param | VarKind::External => true,
        }
    }
}

/// Name resolution for one function: variables, and per-statement
/// reads/writes/calls in terms of [`VarId`].
#[derive(Debug, Clone, Default)]
pub struct FnResolution {
    /// Function name.
    pub name: String,
    /// All variables; index is the [`VarId`].
    pub vars: Vec<VarInfo>,
    /// Variables each statement reads (header reads only for control
    /// statements — nested bodies are separate statements).
    pub reads: BTreeMap<StmtId, Vec<VarId>>,
    /// Variables each statement writes (strong or partial).
    pub writes: BTreeMap<StmtId, Vec<VarId>>,
    /// Variables each statement *strongly* writes — whole-variable
    /// assignments that overwrite every previous definition. Partial
    /// stores (`a[i] = …`, `p->f = …`, `*p = …`) write without killing.
    pub kills: BTreeMap<StmtId, Vec<VarId>>,
    /// Function names each statement calls.
    pub calls: BTreeMap<StmtId, Vec<String>>,
    /// Statement ids belonging to this function, in visit order.
    pub stmts: Vec<StmtId>,
}

impl FnResolution {
    /// Info for a variable.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.0 as usize]
    }

    /// Reads of a statement (empty slice if none recorded).
    pub fn reads_of(&self, id: StmtId) -> &[VarId] {
        self.reads.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Writes of a statement (empty slice if none recorded).
    pub fn writes_of(&self, id: StmtId) -> &[VarId] {
        self.writes.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Strong (killing) writes of a statement.
    pub fn kills_of(&self, id: StmtId) -> &[VarId] {
        self.kills.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Calls of a statement (empty slice if none recorded).
    pub fn calls_of(&self, id: StmtId) -> &[String] {
        self.calls.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }
}

struct Resolver {
    res: FnResolution,
    /// Innermost scope last; each maps name → VarId.
    scopes: Vec<BTreeMap<String, VarId>>,
    /// Externals already created, so repeated uses share a VarId.
    externals: BTreeMap<String, VarId>,
}

impl Resolver {
    fn fresh(&mut self, info: VarInfo) -> VarId {
        let id = VarId(self.res.vars.len() as u32);
        self.res.vars.push(info);
        id
    }

    fn declare(&mut self, name: &str, decl: Option<StmtId>, kind: VarKind) -> VarId {
        let id = self.fresh(VarInfo {
            name: name.to_string(),
            decl,
            kind,
        });
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), id);
        id
    }

    /// Resolve a name to the innermost binding, creating an external on
    /// first unresolved use.
    fn lookup(&mut self, name: &str) -> VarId {
        for scope in self.scopes.iter().rev() {
            if let Some(id) = scope.get(name) {
                return *id;
            }
        }
        if let Some(id) = self.externals.get(name) {
            return *id;
        }
        let id = self.fresh(VarInfo {
            name: name.to_string(),
            decl: None,
            kind: VarKind::External,
        });
        self.externals.insert(name.to_string(), id);
        id
    }

    fn record(
        &mut self,
        id: StmtId,
        reads: Vec<String>,
        writes: Vec<VarId>,
        kills: Vec<VarId>,
        calls: Vec<String>,
    ) {
        let read_ids: Vec<VarId> = reads.iter().map(|n| self.lookup(n)).collect();
        self.res.stmts.push(id);
        self.res.reads.insert(id, read_ids);
        self.res.writes.insert(id, writes);
        self.res.kills.insert(id, kills);
        self.res.calls.insert(id, calls);
    }

    fn block(&mut self, block: &Block) {
        self.scopes.push(BTreeMap::new());
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, stmt: &Stmt) {
        let mut reads = Vec::new();
        let mut calls = Vec::new();
        match &stmt.kind {
            StmtKind::Decl {
                name, array, init, ..
            } => {
                if let Some(e) = init {
                    e.idents(&mut reads);
                    e.call_names(&mut calls);
                }
                // C scoping: the name is visible from its own declarator,
                // but the initializer reads resolve *before* it shadows
                // (reading the variable in its own initializer is the
                // uninitialized-read case the entry-def model catches).
                let read_ids: Vec<VarId> = reads.iter().map(|n| self.lookup(n)).collect();
                let initialized = init.is_some() || array.is_some();
                let var = self.declare(name, Some(stmt.id), VarKind::Local { initialized });
                let writes = if initialized { vec![var] } else { Vec::new() };
                self.res.stmts.push(stmt.id);
                self.res.reads.insert(stmt.id, read_ids);
                self.res.kills.insert(stmt.id, writes.clone());
                self.res.writes.insert(stmt.id, writes);
                self.res.calls.insert(stmt.id, calls);
            }
            StmtKind::Assign { lhs, op, rhs } => {
                let mut writes = Vec::new();
                let mut kills = Vec::new();
                if let Some(root) = lhs.lvalue_root() {
                    let var = self.lookup(root);
                    // Writing through an index or member only updates part
                    // of the object, so the store both reads and writes it
                    // and does not kill earlier definitions; a whole-variable
                    // compound assignment also reads its target.
                    let partial = !matches!(lhs, Expr::Ident(_));
                    writes.push(var);
                    if partial {
                        reads.push(root.to_string());
                    } else {
                        kills.push(var);
                        if op != "=" {
                            reads.push(root.to_string());
                        }
                    }
                }
                collect_lhs_reads(lhs, &mut reads);
                rhs.idents(&mut reads);
                rhs.call_names(&mut calls);
                lhs.call_names(&mut calls);
                self.record(stmt.id, reads, writes, kills, calls);
            }
            StmtKind::Expr(e) => {
                e.idents(&mut reads);
                e.call_names(&mut calls);
                let mut writes = Vec::new();
                let mut kills = Vec::new();
                if let Expr::Postfix { operand, .. } | Expr::Unary { operand, .. } = e {
                    if let Some(root) = operand.lvalue_root() {
                        let var = self.lookup(root);
                        writes.push(var);
                        if matches!(**operand, Expr::Ident(_)) {
                            kills.push(var);
                        }
                    }
                }
                self.record(stmt.id, reads, writes, kills, calls);
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                cond.idents(&mut reads);
                cond.call_names(&mut calls);
                self.record(stmt.id, reads, Vec::new(), Vec::new(), calls);
                self.block(then_block);
                if let Some(e) = else_block {
                    self.block(e);
                }
            }
            StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
                cond.idents(&mut reads);
                cond.call_names(&mut calls);
                self.record(stmt.id, reads, Vec::new(), Vec::new(), calls);
                self.block(body);
            }
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => {
                // The for-init declaration scopes over cond, update, body.
                self.scopes.push(BTreeMap::new());
                self.stmt(init);
                if let Some(c) = cond {
                    c.idents(&mut reads);
                    c.call_names(&mut calls);
                }
                self.record(stmt.id, reads, Vec::new(), Vec::new(), calls);
                self.stmt(update);
                self.block(body);
                self.scopes.pop();
            }
            StmtKind::Return(value) => {
                if let Some(e) = value {
                    e.idents(&mut reads);
                    e.call_names(&mut calls);
                }
                self.record(stmt.id, reads, Vec::new(), Vec::new(), calls);
            }
            StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {
                self.record(stmt.id, Vec::new(), Vec::new(), Vec::new(), Vec::new());
            }
        }
    }
}

/// Reads hidden inside an lvalue (`a[i]` reads `i`; `p->f` reads `p`).
fn collect_lhs_reads(lhs: &Expr, reads: &mut Vec<String>) {
    match lhs {
        Expr::Index { base, index } => {
            index.idents(reads);
            collect_lhs_reads(base, reads);
        }
        Expr::Member { base, .. } => collect_lhs_reads(base, reads),
        _ => {}
    }
}

/// Resolve one function.
pub fn resolve_function(f: &Function) -> FnResolution {
    let mut r = Resolver {
        res: FnResolution {
            name: f.name.clone(),
            ..FnResolution::default()
        },
        scopes: vec![BTreeMap::new()],
        externals: BTreeMap::new(),
    };
    for (_, pname) in &f.params {
        r.declare(pname, None, VarKind::Param);
    }
    r.block(&f.body);
    r.res
}

/// Resolve every function in a program.
pub fn resolve_program(p: &Program) -> Vec<FnResolution> {
    p.functions.iter().map(resolve_function).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::parser::parse;

    fn var_named<'r>(res: &'r FnResolution, name: &str) -> Vec<(VarId, &'r VarInfo)> {
        res.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.name == name)
            .map(|(i, v)| (VarId(i as u32), v))
            .collect()
    }

    #[test]
    fn shadowed_locals_get_distinct_ids() {
        let src = r#"
            void f(int n) {
                int size = outer_size(n);
                if (n > 0) {
                    int size = inner_size(n);
                    crunch(size);
                }
                H5Dwrite(d, size);
            }
        "#;
        let prog = parse(src).unwrap();
        let res = resolve_function(&prog.functions[0]);
        let sizes = var_named(&res, "size");
        assert_eq!(sizes.len(), 2, "two distinct `size` variables");

        // `crunch(size)` reads the inner one; `H5Dwrite(d, size)` the outer.
        let mut crunch_read = None;
        let mut write_read = None;
        for (id, calls) in &res.calls {
            if calls.iter().any(|c| c == "crunch") {
                crunch_read = res.reads_of(*id).first().copied();
            }
            if calls.iter().any(|c| c == "H5Dwrite") {
                write_read = res.reads_of(*id).iter().next_back().copied();
            }
        }
        let (crunch_read, write_read) = (crunch_read.unwrap(), write_read.unwrap());
        assert_ne!(crunch_read, write_read, "shadowed uses must not conflate");
        assert_eq!(res.var(crunch_read).name, "size");
        assert_eq!(res.var(write_read).name, "size");
    }

    #[test]
    fn params_and_externals_are_classified() {
        let prog = parse("void f(int n) { total += n; }").unwrap();
        let res = resolve_function(&prog.functions[0]);
        let (_, n) = var_named(&res, "n")[0];
        assert_eq!(n.kind, VarKind::Param);
        let (_, total) = var_named(&res, "total")[0];
        assert_eq!(total.kind, VarKind::External);
        assert!(total.initialized_at_entry());
    }

    #[test]
    fn for_init_scopes_over_the_loop() {
        let src = "void f() { for (int i = 0; i < 3; i++) { g(i); } h(i); }";
        let prog = parse(src).unwrap();
        let res = resolve_function(&prog.functions[0]);
        let is = var_named(&res, "i");
        // Loop-local `i` plus the external `i` read by `h(i)` after the loop.
        assert_eq!(is.len(), 2);
        assert!(is
            .iter()
            .any(|(_, v)| matches!(v.kind, VarKind::Local { .. })));
        assert!(is.iter().any(|(_, v)| v.kind == VarKind::External));
    }

    #[test]
    fn decl_without_init_is_uninitialized() {
        let prog = parse("void f() { int x; int y = 1; int a[3]; }").unwrap();
        let res = resolve_function(&prog.functions[0]);
        let (_, x) = var_named(&res, "x")[0];
        assert_eq!(x.kind, VarKind::Local { initialized: false });
        let (_, y) = var_named(&res, "y")[0];
        assert_eq!(y.kind, VarKind::Local { initialized: true });
        // Arrays are coarsely treated as initialized storage.
        let (_, a) = var_named(&res, "a")[0];
        assert_eq!(a.kind, VarKind::Local { initialized: true });
    }

    #[test]
    fn compound_and_indexed_stores_read_their_target() {
        let prog = parse("void f(int i) { int x = 0; x += 1; int b[4]; b[i] = 2; }").unwrap();
        let res = resolve_function(&prog.functions[0]);
        let (xid, _) = var_named(&res, "x")[0];
        let (bid, _) = var_named(&res, "b")[0];
        let plus_eq = res
            .stmts
            .iter()
            .find(|s| res.writes_of(**s).contains(&xid) && res.reads_of(**s).contains(&xid))
            .copied();
        assert!(plus_eq.is_some(), "x += 1 reads and writes x");
        // The decl also writes (and kills) `b`; the partial store is the
        // write with no kill.
        let idx_store = res
            .stmts
            .iter()
            .find(|s| res.writes_of(**s).contains(&bid) && res.kills_of(**s).is_empty())
            .copied()
            .unwrap();
        assert!(
            res.reads_of(idx_store).contains(&bid),
            "partial store reads the array"
        );
    }

    #[test]
    fn same_name_in_two_functions_is_distinct_per_resolution() {
        let src = r#"
            void a() { double * buf = alloc(1); use(buf); }
            void b() { double * buf = alloc(2); H5Dwrite(d, buf); }
        "#;
        let prog = parse(src).unwrap();
        let rs = resolve_program(&prog);
        assert_eq!(rs.len(), 2);
        // Each resolution is self-contained: the decl stmt ids differ.
        let decl_of = |r: &FnResolution| var_named(r, "buf")[0].1.decl.unwrap();
        assert_ne!(decl_of(&rs[0]), decl_of(&rs[1]));
    }
}
