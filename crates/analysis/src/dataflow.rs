//! Generic worklist dataflow engine.
//!
//! An [`Analysis`] supplies a direction, a lattice (`empty` + `merge`),
//! a boundary fact and a per-statement transfer function; [`solve`] runs
//! the classic worklist iteration over a [`Cfg`] until fixpoint and then
//! replays each block once to attach facts to every statement program
//! point. Two instances ship here: [`ReachingDefs`] and [`Liveness`],
//! both keyed on [`VarId`]s from [`crate::resolve`] so shadowed names
//! never conflate.

use crate::cfg::{BlockId, Cfg};
use crate::resolve::{FnResolution, VarId, VarKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tunio_cminus::ast::StmtId;

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exit (e.g. reaching definitions).
    Forward,
    /// Facts flow exit → entry (e.g. liveness).
    Backward,
}

/// A dataflow problem over one function's CFG.
pub trait Analysis {
    /// The lattice element attached to each program point.
    type Fact: Clone + PartialEq;

    /// Flow direction.
    fn direction(&self) -> Direction;

    /// Fact at the boundary: function entry for forward problems, the
    /// synthetic exit block for backward ones.
    fn boundary(&self) -> Self::Fact;

    /// Bottom element used to initialize interior points.
    fn empty(&self) -> Self::Fact;

    /// Join `from` into `into` (must be monotone for termination).
    fn merge(&self, into: &mut Self::Fact, from: &Self::Fact);

    /// Apply one statement's effect in the flow direction.
    fn transfer(&self, stmt: StmtId, fact: &mut Self::Fact);
}

/// Fixpoint result: block-level facts plus per-statement program points.
///
/// Statement facts use *execution-order* naming for both directions:
/// [`Solution::before`] is the point just before the statement runs,
/// [`Solution::after`] just after.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at each block's entry (execution order).
    pub block_in: Vec<F>,
    /// Fact at each block's exit (execution order).
    pub block_out: Vec<F>,
    entry_facts: BTreeMap<StmtId, F>,
    exit_facts: BTreeMap<StmtId, F>,
}

impl<F> Solution<F> {
    /// Fact at the program point just before `stmt` executes.
    pub fn before(&self, stmt: StmtId) -> Option<&F> {
        self.entry_facts.get(&stmt)
    }

    /// Fact at the program point just after `stmt` executes.
    pub fn after(&self, stmt: StmtId) -> Option<&F> {
        self.exit_facts.get(&stmt)
    }
}

/// Run `analysis` to fixpoint over `cfg`.
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> Solution<A::Fact> {
    let n = cfg.blocks.len();
    let forward = analysis.direction() == Direction::Forward;
    let boundary_block = if forward { cfg.entry } else { cfg.exit };

    let mut block_in: Vec<A::Fact> = (0..n).map(|_| analysis.empty()).collect();
    let mut block_out: Vec<A::Fact> = (0..n).map(|_| analysis.empty()).collect();

    let mut worklist: VecDeque<BlockId> = (0..n as u32).map(BlockId).collect();
    let mut queued: BTreeSet<BlockId> = worklist.iter().copied().collect();

    while let Some(b) = worklist.pop_front() {
        queued.remove(&b);
        let bi = b.0 as usize;
        let block = &cfg.blocks[bi];

        // Merge incoming facts along flow-direction predecessors.
        let mut incoming = if b == boundary_block {
            analysis.boundary()
        } else {
            analysis.empty()
        };
        let flow_preds = if forward { &block.preds } else { &block.succs };
        for p in flow_preds {
            let from = if forward {
                &block_out[p.0 as usize]
            } else {
                &block_in[p.0 as usize]
            };
            analysis.merge(&mut incoming, from);
        }

        // Transfer through the block's statements in flow order.
        let mut fact = incoming.clone();
        if forward {
            for s in &block.stmts {
                analysis.transfer(*s, &mut fact);
            }
        } else {
            for s in block.stmts.iter().rev() {
                analysis.transfer(*s, &mut fact);
            }
        }

        let (start_slot, end_slot) = if forward {
            (&mut block_in[bi], &mut block_out[bi])
        } else {
            (&mut block_out[bi], &mut block_in[bi])
        };
        *start_slot = incoming;
        let changed = *end_slot != fact;
        if changed {
            *end_slot = fact;
            let flow_succs = if forward { &block.succs } else { &block.preds };
            for s in flow_succs {
                if queued.insert(*s) {
                    worklist.push_back(*s);
                }
            }
        }
    }

    // Replay each block once to attach facts to statement program points.
    let mut entry_facts = BTreeMap::new();
    let mut exit_facts = BTreeMap::new();
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if forward {
            let mut fact = block_in[bi].clone();
            for s in &block.stmts {
                entry_facts.insert(*s, fact.clone());
                analysis.transfer(*s, &mut fact);
                exit_facts.insert(*s, fact.clone());
            }
        } else {
            let mut fact = block_out[bi].clone();
            for s in block.stmts.iter().rev() {
                exit_facts.insert(*s, fact.clone());
                analysis.transfer(*s, &mut fact);
                entry_facts.insert(*s, fact.clone());
            }
        }
    }

    Solution {
        block_in,
        block_out,
        entry_facts,
        exit_facts,
    }
}

/// A definition site: `Some(stmt)` for a write at that statement, `None`
/// for the value a variable holds at function entry (parameters and
/// externals carry a real value there; for locals it stands for
/// *uninitialized storage*, which is what the possibly-uninitialized-read
/// lint looks for).
pub type Def = (VarId, Option<StmtId>);

/// Reaching definitions: which writes may provide the current value of
/// each variable at each program point. Partial stores (`a[i] = …`) gen
/// a definition without killing earlier ones; only strong writes kill.
pub struct ReachingDefs<'a> {
    res: &'a FnResolution,
}

impl<'a> ReachingDefs<'a> {
    /// Build the problem for one resolved function.
    pub fn new(res: &'a FnResolution) -> Self {
        ReachingDefs { res }
    }
}

impl Analysis for ReachingDefs<'_> {
    type Fact = BTreeSet<Def>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Self::Fact {
        // Every variable starts with its entry definition; for locals it
        // models uninitialized storage until a real write kills it.
        (0..self.res.vars.len() as u32)
            .map(|i| (VarId(i), None))
            .collect()
    }

    fn empty(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn merge(&self, into: &mut Self::Fact, from: &Self::Fact) {
        into.extend(from.iter().copied());
    }

    fn transfer(&self, stmt: StmtId, fact: &mut Self::Fact) {
        for k in self.res.kills_of(stmt) {
            fact.retain(|(v, _)| v != k);
        }
        for w in self.res.writes_of(stmt) {
            fact.insert((*w, Some(stmt)));
        }
    }
}

/// Liveness: which variables may be read later. Externals are live at
/// function exit (their final value is observable by the caller).
pub struct Liveness<'a> {
    res: &'a FnResolution,
}

impl<'a> Liveness<'a> {
    /// Build the problem for one resolved function.
    pub fn new(res: &'a FnResolution) -> Self {
        Liveness { res }
    }
}

impl Analysis for Liveness<'_> {
    type Fact = BTreeSet<VarId>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> Self::Fact {
        self.res
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::External)
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }

    fn empty(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn merge(&self, into: &mut Self::Fact, from: &Self::Fact) {
        into.extend(from.iter().copied());
    }

    fn transfer(&self, stmt: StmtId, fact: &mut Self::Fact) {
        // live_before = use ∪ (live_after \ strong-def)
        for k in self.res.kills_of(stmt) {
            fact.remove(k);
        }
        for r in self.res.reads_of(stmt) {
            fact.insert(*r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::resolve::resolve_function;
    use tunio_cminus::parser::parse;

    struct Ctx {
        res: FnResolution,
        cfg: Cfg,
    }

    fn ctx(src: &str) -> Ctx {
        let prog = parse(src).unwrap();
        let f = &prog.functions[0];
        Ctx {
            res: resolve_function(f),
            cfg: build_cfg(f),
        }
    }

    fn var(res: &FnResolution, name: &str) -> VarId {
        res.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    /// Statement whose calls include `callee`.
    fn call_site(res: &FnResolution, callee: &str) -> StmtId {
        *res.stmts
            .iter()
            .find(|s| res.calls_of(**s).iter().any(|c| c == callee))
            .unwrap_or_else(|| panic!("no call to {callee}"))
    }

    #[test]
    fn strong_write_kills_earlier_def() {
        let c = ctx("void f() { int x = 1; x = 2; g(x); }");
        let sol = solve(&c.cfg, &ReachingDefs::new(&c.res));
        let x = var(&c.res, "x");
        let at_use = sol.before(call_site(&c.res, "g")).unwrap();
        let defs: Vec<_> = at_use.iter().filter(|(v, _)| *v == x).collect();
        assert_eq!(defs.len(), 1, "only the second store reaches: {defs:?}");
        assert!(defs[0].1.is_some());
    }

    #[test]
    fn branch_defs_merge_at_join() {
        let c = ctx("void f(int c) { int x = 1; if (c) { x = 2; } g(x); }");
        let sol = solve(&c.cfg, &ReachingDefs::new(&c.res));
        let x = var(&c.res, "x");
        let at_use = sol.before(call_site(&c.res, "g")).unwrap();
        let defs: Vec<_> = at_use.iter().filter(|(v, _)| *v == x).collect();
        assert_eq!(defs.len(), 2, "decl init and then-branch store both reach");
    }

    #[test]
    fn partial_store_does_not_kill() {
        let c = ctx("void f(int i) { int a[4]; a[0] = 1; a[i] = 2; g(a); }");
        let sol = solve(&c.cfg, &ReachingDefs::new(&c.res));
        let a = var(&c.res, "a");
        let at_use = sol.before(call_site(&c.res, "g")).unwrap();
        let defs: Vec<_> = at_use.iter().filter(|(v, _)| *v == a).collect();
        assert_eq!(defs.len(), 3, "decl + both element stores reach: {defs:?}");
    }

    #[test]
    fn uninitialized_entry_def_survives_one_branch() {
        let c = ctx("void f(int cond) { int x; if (cond) { x = 1; } g(x); }");
        let sol = solve(&c.cfg, &ReachingDefs::new(&c.res));
        let x = var(&c.res, "x");
        let at_use = sol.before(call_site(&c.res, "g")).unwrap();
        assert!(
            at_use.contains(&(x, None)),
            "uninitialized entry def reaches the use on the else path"
        );
        // Fully-initialized variant: the entry def is killed.
        let c2 = ctx("void f(int cond) { int x = 0; if (cond) { x = 1; } g(x); }");
        let sol2 = solve(&c2.cfg, &ReachingDefs::new(&c2.res));
        let x2 = var(&c2.res, "x");
        let at_use2 = sol2.before(call_site(&c2.res, "g")).unwrap();
        assert!(!at_use2.contains(&(x2, None)));
    }

    #[test]
    fn loop_body_def_reaches_header() {
        let c = ctx("void f(int n) { int s = 0; while (n) { s = s + step(); n = n - 1; } g(s); }");
        let sol = solve(&c.cfg, &ReachingDefs::new(&c.res));
        let s = var(&c.res, "s");
        let at_use = sol.before(call_site(&c.res, "g")).unwrap();
        let defs: Vec<_> = at_use.iter().filter(|(v, _)| *v == s).collect();
        assert_eq!(defs.len(), 2, "init and loop-body def both reach past loop");
    }

    #[test]
    fn overwritten_store_is_not_live() {
        let c = ctx("void f() { int x = 1; x = 2; g(x); }");
        let sol = solve(&c.cfg, &Liveness::new(&c.res));
        let x = var(&c.res, "x");
        let decl = c.res.stmts[0];
        assert!(
            !sol.after(decl).unwrap().contains(&x),
            "x = 1 is overwritten before any read → dead after the decl"
        );
        let second = c.res.stmts[1];
        assert!(sol.after(second).unwrap().contains(&x));
    }

    #[test]
    fn externals_are_live_at_exit() {
        let c = ctx("void f() { total = compute(); }");
        let sol = solve(&c.cfg, &Liveness::new(&c.res));
        let total = var(&c.res, "total");
        let assign = c.res.stmts[0];
        assert!(
            sol.after(assign).unwrap().contains(&total),
            "external write is observable after return"
        );
    }

    #[test]
    fn loop_carried_liveness() {
        let c = ctx("void f(int n) { int s = 0; while (n) { use(s); s = next(s); n = n - 1; } }");
        let sol = solve(&c.cfg, &Liveness::new(&c.res));
        let s = var(&c.res, "s");
        let decl = c.res.stmts[0];
        assert!(
            sol.after(decl).unwrap().contains(&s),
            "s is read in a later loop iteration"
        );
    }
}
