//! Abstract numeric domain for the static I/O workload inference.
//!
//! The domain is a reduced product of three components per value:
//!
//! * an **interval** `[lo, hi]` with infinite bounds,
//! * a **congruence** (stride) `v ≡ rem (mod stride)` tracked through a
//!   gcd lattice, and
//! * an optional **symbolic linear form** over the entry function's
//!   size parameters (`(k + Σ cᵢ·pᵢ) / den`, floor division), so trip
//!   counts and transfer volumes stay exact *functions of the app's
//!   parameters* instead of collapsing to `⊤` the moment a parameter
//!   appears.
//!
//! Joins take the interval hull and the congruence gcd; widening drops
//! any bound that moved to ±∞ (the congruence component is finite-height
//! and needs no widening; the symbolic component is dropped unless both
//! sides agree). This is the classic interval-with-threshold-free
//! widening, delayed a few iterations by the interpreter so short loops
//! still converge to exact bounds.

use std::collections::BTreeMap;

/// One end of an interval: `-∞`, a finite integer, or `+∞`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Negative infinity.
    NegInf,
    /// A finite bound.
    Finite(i64),
    /// Positive infinity.
    PosInf,
}

impl Bound {
    /// The finite value, if this bound is finite.
    pub fn finite(self) -> Option<i64> {
        match self {
            Bound::Finite(v) => Some(v),
            _ => None,
        }
    }

    fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::NegInf, _) | (_, Bound::NegInf) => Bound::NegInf,
            (Bound::PosInf, _) | (_, Bound::PosInf) => Bound::PosInf,
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
        }
    }

    fn neg(self) -> Bound {
        match self {
            Bound::NegInf => Bound::PosInf,
            Bound::PosInf => Bound::NegInf,
            Bound::Finite(v) => Bound::Finite(v.saturating_neg()),
        }
    }

    fn mul(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_mul(b)),
            (a, b) => {
                let sa = a.signum();
                let sb = b.signum();
                if sa == 0 || sb == 0 {
                    Bound::Finite(0)
                } else if sa * sb > 0 {
                    Bound::PosInf
                } else {
                    Bound::NegInf
                }
            }
        }
    }

    fn signum(self) -> i64 {
        match self {
            Bound::NegInf => -1,
            Bound::PosInf => 1,
            Bound::Finite(v) => v.signum(),
        }
    }

    fn min(self, other: Bound) -> Bound {
        if Self::le(self, other) {
            self
        } else {
            other
        }
    }

    fn max(self, other: Bound) -> Bound {
        if Self::le(self, other) {
            other
        } else {
            self
        }
    }

    /// Total order: `-∞ ≤ finite ≤ +∞`.
    pub fn le(a: Bound, b: Bound) -> bool {
        match (a, b) {
            (Bound::NegInf, _) | (_, Bound::PosInf) => true,
            (_, Bound::NegInf) | (Bound::PosInf, _) => false,
            (Bound::Finite(x), Bound::Finite(y)) => x <= y,
        }
    }
}

/// A symbolic linear form `(k + Σ cᵢ·pᵢ) / den` (floor division, `den ≥ 1`)
/// over named size parameters of the entry function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinExpr {
    /// Constant term of the numerator.
    pub k: i64,
    /// Coefficients per parameter name (zero coefficients are removed).
    pub terms: BTreeMap<String, i64>,
    /// Denominator (`≥ 1`); the value is `numerator / den`, floor.
    pub den: i64,
}

impl LinExpr {
    /// The constant `k`.
    pub fn constant(k: i64) -> Self {
        LinExpr {
            k,
            terms: BTreeMap::new(),
            den: 1,
        }
    }

    /// The parameter `name` with coefficient 1.
    pub fn param(name: &str) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(name.to_string(), 1);
        LinExpr {
            k: 0,
            terms,
            den: 1,
        }
    }

    /// Whether the form has no parameter terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    fn normalized(mut self) -> Self {
        self.terms.retain(|_, c| *c != 0);
        if self.den > 1 {
            let mut g = self.den;
            g = gcd(g, self.k.abs());
            for c in self.terms.values() {
                g = gcd(g, c.abs());
            }
            if g > 1 {
                // Only safe to cancel when the numerator is known to be a
                // multiple of g at every point — true when all coefficients
                // (including k) share the factor.
                self.k /= g;
                for c in self.terms.values_mut() {
                    *c /= g;
                }
                self.den /= g;
            }
        }
        self
    }

    /// `self + other`, if representable (denominator product stays sane).
    pub fn add(&self, other: &LinExpr) -> Option<LinExpr> {
        // Floor-division forms only add exactly when denominators are 1 or
        // equal with aligned numerators; be conservative for mixed dens.
        if self.den != other.den && self.den != 1 && other.den != 1 {
            return None;
        }
        if self.den != other.den {
            // Scale the den-1 side up: (a)/1 + (b)/d = (a*d + b)/d. Exact.
            let (big, small) = if self.den > 1 {
                (self, other)
            } else {
                (other, self)
            };
            let d = big.den;
            let mut terms = big.terms.clone();
            for (p, c) in &small.terms {
                *terms.entry(p.clone()).or_insert(0) += c.checked_mul(d)?;
            }
            let k = big.k.checked_add(small.k.checked_mul(d)?)?;
            return Some(LinExpr { k, terms, den: d }.normalized());
        }
        let mut terms = self.terms.clone();
        for (p, c) in &other.terms {
            *terms.entry(p.clone()).or_insert(0) += *c;
        }
        Some(
            LinExpr {
                k: self.k.checked_add(other.k)?,
                terms,
                den: self.den,
            }
            .normalized(),
        )
    }

    /// `self - other`, if representable.
    pub fn sub(&self, other: &LinExpr) -> Option<LinExpr> {
        self.add(&other.scale(-1)?)
    }

    /// `self * c` for a constant `c`.
    pub fn scale(&self, c: i64) -> Option<LinExpr> {
        let mut terms = BTreeMap::new();
        for (p, coef) in &self.terms {
            terms.insert(p.clone(), coef.checked_mul(c)?);
        }
        Some(
            LinExpr {
                k: self.k.checked_mul(c)?,
                terms,
                den: self.den,
            }
            .normalized(),
        )
    }

    /// `self * other`, exact only when one side is constant with den 1.
    pub fn mul(&self, other: &LinExpr) -> Option<LinExpr> {
        if other.is_constant() && other.den == 1 {
            self.scale(other.k)
        } else if self.is_constant() && self.den == 1 {
            other.scale(self.k)
        } else {
            None
        }
    }

    /// Floor division by a positive constant `d`.
    pub fn div_floor(&self, d: i64) -> Option<LinExpr> {
        if d <= 0 {
            return None;
        }
        Some(LinExpr {
            k: self.k,
            terms: self.terms.clone(),
            den: self.den.checked_mul(d)?,
        })
    }

    /// Ceiling division by a positive constant `d`: `ceil(x/d) = floor((x+d-1)/d)`.
    pub fn div_ceil(&self, d: i64) -> Option<LinExpr> {
        if d <= 0 {
            return None;
        }
        // (num/den) is the value; ceil(value/d) = floor((num + den*(d-1)) / (den*d))
        // for non-negative numerators (our trip counts).
        let den = self.den.checked_mul(d)?;
        let k = self.k.checked_add(self.den.checked_mul(d - 1)?)?;
        Some(LinExpr {
            k,
            terms: self.terms.clone(),
            den,
        })
    }

    /// Evaluate under concrete parameter `bindings` (missing params → 0).
    pub fn eval(&self, bindings: &BTreeMap<String, i64>) -> i64 {
        let mut num = self.k as i128;
        for (p, c) in &self.terms {
            num += *c as i128 * *bindings.get(p).copied().as_ref().unwrap_or(&0) as i128;
        }
        (num.div_euclid(self.den as i128)).clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// Substitute parameter names with other linear forms (used when
    /// pushing a callee's summary up through a call site). Returns `None`
    /// when the substitution is not exactly representable.
    pub fn substitute(&self, map: &BTreeMap<String, LinExpr>) -> Option<LinExpr> {
        let mut acc = LinExpr {
            k: self.k,
            terms: BTreeMap::new(),
            den: self.den,
        };
        for (p, c) in &self.terms {
            let sub = map.get(p)?;
            if sub.den != 1 {
                return None;
            }
            let scaled = sub.scale(*c)?;
            // acc has denominator self.den; scaled has den 1.
            let mut terms = acc.terms;
            for (q, cc) in &scaled.terms {
                *terms.entry(q.clone()).or_insert(0) += cc.checked_mul(acc.den)?;
            }
            acc = LinExpr {
                k: acc.k.checked_add(scaled.k.checked_mul(acc.den)?)?,
                terms,
                den: acc.den,
            };
        }
        Some(acc.normalized())
    }

    /// Render as a human-readable formula, e.g. `8*nvals` or `(nsteps+3)/4`.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (p, c) in &self.terms {
            if *c == 1 {
                parts.push(p.clone());
            } else {
                parts.push(format!("{c}*{p}"));
            }
        }
        if self.k != 0 || parts.is_empty() {
            parts.push(self.k.to_string());
        }
        let num = parts.join("+").replace("+-", "-");
        if self.den == 1 {
            num
        } else if parts.len() == 1 {
            format!("{num}/{}", self.den)
        } else {
            format!("({num})/{}", self.den)
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Congruence component: the set `{ x : x ≡ rem (mod modulus) }`.
///
/// `modulus == 0` means the singleton `{rem}`; `modulus == 1` means no
/// congruence information (all integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Congruence {
    /// The modulus (`0` = exact constant, `1` = ⊤).
    pub modulus: i64,
    /// The representative remainder (`rem ∈ [0, modulus)` when `modulus > 1`).
    pub rem: i64,
}

impl Congruence {
    /// No congruence information.
    pub fn top() -> Self {
        Congruence { modulus: 1, rem: 0 }
    }

    /// Exactly the constant `c`.
    pub fn constant(c: i64) -> Self {
        Congruence { modulus: 0, rem: c }
    }

    fn normalize(self) -> Self {
        if self.modulus > 1 {
            Congruence {
                modulus: self.modulus,
                rem: self.rem.rem_euclid(self.modulus),
            }
        } else if self.modulus == 1 {
            Congruence::top()
        } else {
            self
        }
    }

    /// Least upper bound.
    pub fn join(self, other: Congruence) -> Congruence {
        let m = gcd(
            gcd(self.modulus, other.modulus),
            (self.rem - other.rem).abs(),
        );
        if m == 0 {
            self // equal constants
        } else {
            Congruence {
                modulus: m,
                rem: self.rem,
            }
            .normalize()
        }
    }

    /// Whether the concrete value `v` is a member.
    pub fn contains(self, v: i64) -> bool {
        match self.modulus {
            0 => v == self.rem,
            1 => true,
            m => (v - self.rem).rem_euclid(m) == 0,
        }
    }

    fn add(self, other: Congruence) -> Congruence {
        let m = gcd(self.modulus, other.modulus);
        Congruence {
            modulus: m,
            rem: self.rem.saturating_add(other.rem),
        }
        .normalize()
    }

    fn mul(self, other: Congruence) -> Congruence {
        match (self.modulus, other.modulus) {
            (0, 0) => Congruence::constant(self.rem.saturating_mul(other.rem)),
            (0, m) => scale_cong(other, self.rem, m),
            (m, 0) => scale_cong(self, other.rem, m),
            _ => Congruence::top(),
        }
    }
}

fn scale_cong(c: Congruence, by: i64, m: i64) -> Congruence {
    let _ = m;
    Congruence {
        modulus: c.modulus.saturating_mul(by.abs()),
        rem: c.rem.saturating_mul(by),
    }
    .normalize()
}

/// An abstract value: interval × congruence × optional symbolic form.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsVal {
    /// Lower interval bound.
    pub lo: Bound,
    /// Upper interval bound.
    pub hi: Bound,
    /// Congruence (stride) component.
    pub cong: Congruence,
    /// Exact symbolic linear form, when known.
    pub sym: Option<LinExpr>,
}

impl AbsVal {
    /// The full integer range, no information.
    pub fn top() -> Self {
        AbsVal {
            lo: Bound::NegInf,
            hi: Bound::PosInf,
            cong: Congruence::top(),
            sym: None,
        }
    }

    /// The empty set (unreachable value).
    pub fn bottom() -> Self {
        AbsVal {
            lo: Bound::PosInf,
            hi: Bound::NegInf,
            cong: Congruence::top(),
            sym: None,
        }
    }

    /// The singleton `{c}`.
    pub fn constant(c: i64) -> Self {
        AbsVal {
            lo: Bound::Finite(c),
            hi: Bound::Finite(c),
            cong: Congruence::constant(c),
            sym: Some(LinExpr::constant(c)),
        }
    }

    /// An unknown (but single-valued) size parameter named `name`.
    /// Modelled as non-negative: sizes, counts and ranks in the corpus
    /// are dimensions, never negative.
    pub fn param(name: &str) -> Self {
        AbsVal {
            lo: Bound::Finite(0),
            hi: Bound::PosInf,
            cong: Congruence::top(),
            sym: Some(LinExpr::param(name)),
        }
    }

    /// An interval `[lo, hi]` with no further structure.
    pub fn range(lo: i64, hi: i64) -> Self {
        if lo > hi {
            return AbsVal::bottom();
        }
        let cong = if lo == hi {
            Congruence::constant(lo)
        } else {
            Congruence::top()
        };
        AbsVal {
            lo: Bound::Finite(lo),
            hi: Bound::Finite(hi),
            cong,
            sym: if lo == hi {
                Some(LinExpr::constant(lo))
            } else {
                None
            },
        }
    }

    /// Whether this is the empty set.
    pub fn is_bottom(&self) -> bool {
        !Bound::le(self.lo, self.hi)
    }

    /// The exact constant, if single-valued.
    pub fn as_const(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Bound::Finite(a), Bound::Finite(b)) if a == b => Some(a),
            _ => match self.cong.modulus {
                0 => Some(self.cong.rem),
                _ => None,
            },
        }
    }

    /// Whether the concrete value `v` is a member.
    pub fn contains(&self, v: i64) -> bool {
        Bound::le(self.lo, Bound::Finite(v))
            && Bound::le(Bound::Finite(v), self.hi)
            && self.cong.contains(v)
    }

    /// Least upper bound (interval hull + congruence gcd; symbolic form
    /// survives only when both sides agree).
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        if self.is_bottom() {
            return other.clone();
        }
        if other.is_bottom() {
            return self.clone();
        }
        AbsVal {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            cong: self.cong.join(other.cong),
            sym: match (&self.sym, &other.sym) {
                (Some(a), Some(b)) if a == b => Some(a.clone()),
                _ => None,
            },
        }
    }

    /// Widening: any interval bound that moved since `self` jumps to ±∞.
    /// The congruence component joins (its lattice is finite-height via
    /// the gcd chain), and the symbolic form survives only on agreement,
    /// so `widen` stabilizes in a bounded number of steps.
    pub fn widen(&self, next: &AbsVal) -> AbsVal {
        if self.is_bottom() {
            return next.clone();
        }
        if next.is_bottom() {
            return self.clone();
        }
        AbsVal {
            lo: if Bound::le(self.lo, next.lo) {
                self.lo
            } else {
                Bound::NegInf
            },
            hi: if Bound::le(next.hi, self.hi) {
                self.hi
            } else {
                Bound::PosInf
            },
            cong: self.cong.join(next.cong),
            sym: match (&self.sym, &next.sym) {
                (Some(a), Some(b)) if a == b => Some(a.clone()),
                _ => None,
            },
        }
    }

    /// Abstract addition.
    pub fn add(&self, other: &AbsVal) -> AbsVal {
        if self.is_bottom() || other.is_bottom() {
            return AbsVal::bottom();
        }
        AbsVal {
            lo: self.lo.add(other.lo),
            hi: self.hi.add(other.hi),
            cong: self.cong.add(other.cong),
            sym: match (&self.sym, &other.sym) {
                (Some(a), Some(b)) => a.add(b),
                _ => None,
            },
        }
    }

    /// Abstract subtraction.
    pub fn sub(&self, other: &AbsVal) -> AbsVal {
        self.add(&other.neg())
    }

    /// Abstract negation.
    pub fn neg(&self) -> AbsVal {
        if self.is_bottom() {
            return AbsVal::bottom();
        }
        AbsVal {
            lo: self.hi.neg(),
            hi: self.lo.neg(),
            cong: Congruence {
                modulus: self.cong.modulus,
                rem: -self.cong.rem,
            }
            .normalize(),
            sym: self.sym.as_ref().and_then(|s| s.scale(-1)),
        }
    }

    /// Abstract multiplication.
    pub fn mul(&self, other: &AbsVal) -> AbsVal {
        if self.is_bottom() || other.is_bottom() {
            return AbsVal::bottom();
        }
        let candidates = [
            self.lo.mul(other.lo),
            self.lo.mul(other.hi),
            self.hi.mul(other.lo),
            self.hi.mul(other.hi),
        ];
        let mut lo = candidates[0];
        let mut hi = candidates[0];
        for c in &candidates[1..] {
            lo = lo.min(*c);
            hi = hi.max(*c);
        }
        AbsVal {
            lo,
            hi,
            cong: self.cong.mul(other.cong),
            sym: match (&self.sym, &other.sym) {
                (Some(a), Some(b)) => a.mul(b),
                _ => None,
            },
        }
    }

    /// Abstract division (C semantics: truncation toward zero; we use
    /// floor on the symbolic side, exact for non-negative operands which
    /// is what loop/trip arithmetic produces).
    pub fn div(&self, other: &AbsVal) -> AbsVal {
        if self.is_bottom() || other.is_bottom() {
            return AbsVal::bottom();
        }
        match other.as_const() {
            Some(d) if d > 0 => AbsVal {
                lo: match self.lo {
                    Bound::Finite(v) => Bound::Finite(v.div_euclid(d)),
                    b => b,
                },
                hi: match self.hi {
                    Bound::Finite(v) => Bound::Finite(v.div_euclid(d)),
                    b => b,
                },
                cong: Congruence::top(),
                sym: self.sym.as_ref().and_then(|s| s.div_floor(d)),
            },
            _ => AbsVal::top(),
        }
    }

    /// Abstract remainder (`%` by a positive constant).
    pub fn rem(&self, other: &AbsVal) -> AbsVal {
        if self.is_bottom() || other.is_bottom() {
            return AbsVal::bottom();
        }
        match (self.as_const(), other.as_const()) {
            (Some(a), Some(m)) if m != 0 => AbsVal::constant(a % m),
            (_, Some(m)) if m > 0 => {
                // x ≡ r (mod s) with m | s pins x % m for x ≥ 0.
                if self.cong.modulus > 0
                    && self.cong.modulus % m == 0
                    && Bound::le(Bound::Finite(0), self.lo)
                {
                    AbsVal::constant(self.cong.rem % m)
                } else {
                    AbsVal::range(0, m - 1)
                }
            }
            _ => AbsVal::top(),
        }
    }

    /// Ceiling division by a positive constant (`ceil(x / d)`), the shape
    /// of loop trip counts.
    pub fn div_ceil(&self, d: i64) -> AbsVal {
        if self.is_bottom() || d <= 0 {
            return AbsVal::top();
        }
        let up = |b: Bound| match b {
            Bound::Finite(v) => Bound::Finite((v + d - 1).div_euclid(d)),
            b => b,
        };
        AbsVal {
            lo: up(self.lo),
            hi: up(self.hi),
            cong: Congruence::top(),
            sym: self.sym.as_ref().and_then(|s| s.div_ceil(d)),
        }
    }

    /// Meet with `v ≤ c` (branch refinement).
    pub fn refine_le(&self, c: i64) -> AbsVal {
        let mut out = self.clone();
        out.hi = out.hi.min(Bound::Finite(c));
        if out.is_bottom() {
            return AbsVal::bottom();
        }
        out
    }

    /// Meet with `v ≥ c` (branch refinement).
    pub fn refine_ge(&self, c: i64) -> AbsVal {
        let mut out = self.clone();
        out.lo = out.lo.max(Bound::Finite(c));
        if out.is_bottom() {
            return AbsVal::bottom();
        }
        out
    }

    /// Meet with `v ≡ rem (mod m)` (from `x % m == rem` guards).
    pub fn refine_cong(&self, m: i64, rem: i64) -> AbsVal {
        if m <= 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.cong = Congruence { modulus: m, rem }.normalize();
        out
    }

    /// Clamp below at zero (used for trip counts).
    pub fn clamp_non_negative(&self) -> AbsVal {
        self.refine_ge(0)
    }

    /// Evaluate the symbolic form (when present) under concrete
    /// parameter bindings; fall back to a finite bound midpoint.
    pub fn eval(&self, bindings: &BTreeMap<String, i64>) -> Option<i64> {
        if let Some(s) = &self.sym {
            return Some(s.eval(bindings));
        }
        match (self.lo, self.hi) {
            (Bound::Finite(a), Bound::Finite(b)) => Some(if a == b { a } else { (a + b) / 2 }),
            (_, Bound::Finite(b)) => Some(b),
            (Bound::Finite(a), _) => Some(a),
            _ => None,
        }
    }

    /// Human-readable rendering for reports and goldens.
    pub fn render(&self) -> String {
        if let Some(s) = &self.sym {
            return s.render();
        }
        if let Some(c) = self.as_const() {
            return c.to_string();
        }
        let lo = match self.lo {
            Bound::NegInf => "-inf".to_string(),
            Bound::PosInf => "+inf".to_string(),
            Bound::Finite(v) => v.to_string(),
        };
        let hi = match self.hi {
            Bound::NegInf => "-inf".to_string(),
            Bound::PosInf => "+inf".to_string(),
            Bound::Finite(v) => v.to_string(),
        };
        if self.cong.modulus > 1 {
            format!("[{lo},{hi}]%{}={}", self.cong.modulus, self.cong.rem)
        } else {
            format!("[{lo},{hi}]")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_roundtrip() {
        let v = AbsVal::constant(42);
        assert_eq!(v.as_const(), Some(42));
        assert!(v.contains(42));
        assert!(!v.contains(41));
    }

    #[test]
    fn join_of_constants_learns_stride() {
        let a = AbsVal::constant(0);
        let b = AbsVal::constant(4);
        let j = a.join(&b);
        assert!(j.contains(0) && j.contains(4));
        assert!(!j.contains(3));
        assert_eq!(j.cong.modulus, 4);
        let j2 = j.join(&AbsVal::constant(8));
        assert!(j2.contains(8));
        assert!(!j2.contains(6));
    }

    #[test]
    fn widen_stabilizes() {
        let mut cur = AbsVal::constant(0);
        for step in 1..100 {
            let next = cur.join(&AbsVal::constant(step * 4));
            let widened = cur.widen(&next);
            if widened == cur {
                assert_eq!(cur.hi, Bound::PosInf);
                return;
            }
            cur = widened;
        }
        panic!("widening failed to stabilize");
    }

    #[test]
    fn symbolic_arithmetic_survives() {
        let n = AbsVal::param("n");
        let bytes = AbsVal::constant(8).mul(&n);
        let sym = bytes.sym.expect("8*n stays symbolic");
        let mut bind = BTreeMap::new();
        bind.insert("n".to_string(), 1000);
        assert_eq!(sym.eval(&bind), 8000);
        assert_eq!(sym.render(), "8*n");
    }

    #[test]
    fn ceil_div_symbolic() {
        let n = AbsVal::param("nsteps");
        let plots = n.div_ceil(4);
        let mut bind = BTreeMap::new();
        bind.insert("nsteps".to_string(), 10);
        assert_eq!(plots.sym.as_ref().unwrap().eval(&bind), 3); // ceil(10/4)
        bind.insert("nsteps".to_string(), 8);
        assert_eq!(plots.sym.as_ref().unwrap().eval(&bind), 2);
    }

    #[test]
    fn rem_guard_refinement() {
        // i in [0, 100), i % 4 == 0
        let i = AbsVal::range(0, 99).refine_cong(4, 0);
        assert!(i.contains(0) && i.contains(96));
        assert!(!i.contains(3));
        let m = i.rem(&AbsVal::constant(4));
        assert_eq!(m.as_const(), Some(0));
    }

    #[test]
    fn substitution_pushes_args_into_callee() {
        // callee summary: 8*count ; call passes count = np
        let s = LinExpr::param("count").scale(8).unwrap();
        let mut map = BTreeMap::new();
        map.insert("count".to_string(), LinExpr::param("np"));
        let out = s.substitute(&map).unwrap();
        let mut bind = BTreeMap::new();
        bind.insert("np".to_string(), 5);
        assert_eq!(out.eval(&bind), 40);
    }
}
