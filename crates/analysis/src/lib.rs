//! # tunio-analysis — dataflow analysis for I/O Discovery
//!
//! The paper's Application I/O Discovery is a static source analysis; the
//! seed implementation approximated it with per-statement *string facts*
//! (variable-name reads/writes) and a syntactic backward sweep. That
//! cannot handle shadowing (two variables with the same name conflate),
//! over-keeps dead stores, and gives no soundness story for the kernel it
//! emits. This crate is the real foundation:
//!
//! * [`resolve`] — scoped name resolution: every variable use binds to a
//!   unique [`resolve::VarId`], so shadowed and same-named variables in
//!   different functions stay distinct.
//! * [`cfg`] — a control-flow graph per function with basic blocks,
//!   handling `if`/`for`/`while`/`do-while`/`break`/`continue`/`return`.
//! * [`dataflow`] — a generic worklist fixpoint engine with
//!   reaching-definitions and liveness instances.
//! * [`slice`] — a precise interprocedural backward slicer seeded from
//!   I/O calls; `tunio-discovery` uses it as the default marking.
//! * [`lint`] — diagnostics on top of the same analyses (dead-store,
//!   unreachable-code, possibly-uninitialized-read, I/O-inside-hot-loop,
//!   plus pattern-aware I/O lints), rendered with source spans via the
//!   `tunio-lint` binary.
//! * [`domain`] / [`interp`] / [`iomodel`] — an abstract-interpretation
//!   layer: an interval+stride numeric domain with symbolic linear forms,
//!   a CFG fixpoint interpreter with widening at loop heads, and a static
//!   I/O workload model that classifies every I/O call site and predicts
//!   request sizes and transfer volume as functions of the app's size
//!   parameters.

#![warn(missing_docs)]

pub mod cfg;
pub mod dataflow;
pub mod domain;
pub mod interp;
pub mod iomodel;
pub mod lint;
pub mod resolve;
pub mod slice;

pub use cfg::{build_cfg, BlockId, Cfg};
pub use dataflow::{solve, Analysis, Liveness, ReachingDefs, Solution};
pub use domain::{AbsVal, Bound, Congruence, LinExpr};
pub use interp::{interpret_function, FnAbsState};
pub use iomodel::{predict_program, Direction, IoPrediction, PredPattern, SitePrediction};
pub use lint::{lint_program, Diagnostic, LintKind, LintOptions, Severity};
pub use resolve::{resolve_function, resolve_program, FnResolution, VarId, VarKind};
pub use slice::{default_io_predicate, io_function_closure, slice_program, SliceResult};
