//! Control-flow graphs.
//!
//! One [`Cfg`] per function: basic blocks of statement ids connected by
//! directed edges, built structurally from the AST. `if`/`for`/`while`/
//! `do-while` lower to the standard diamond/loop shapes; `break`,
//! `continue` and `return` cut the current block and start a fresh one
//! (which stays unreachable unless something jumps to it — that is
//! exactly what the unreachable-code lint reports).
//!
//! Control statements place their *header* id in the block that evaluates
//! the condition, so condition reads participate in dataflow at the right
//! program point.

use tunio_cminus::ast::{Block, Function, Stmt, StmtId, StmtKind};

/// Index of a basic block within its [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// A basic block: a run of statement ids with single-entry/single-exit
/// control flow, plus its graph edges.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    /// Statement ids in execution order.
    pub stmts: Vec<StmtId>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
    /// Whether the block is reachable from the entry block.
    pub reachable: bool,
}

/// A function's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Name of the function this graph belongs to.
    pub func: String,
    /// All blocks; index is the [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// The entry block.
    pub entry: BlockId,
    /// The single synthetic exit block (empty; `return` edges here).
    pub exit: BlockId,
}

impl Cfg {
    /// The block a statement lives in, if any.
    pub fn block_of(&self, stmt: StmtId) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.stmts.contains(&stmt))
            .map(|i| BlockId(i as u32))
    }

    /// Iterate reachable blocks in id order.
    pub fn reachable_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.reachable)
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Statement ids sitting in unreachable blocks, in id order.
    pub fn unreachable_stmts(&self) -> Vec<StmtId> {
        let mut out: Vec<StmtId> = self
            .blocks
            .iter()
            .filter(|b| !b.reachable)
            .flat_map(|b| b.stmts.iter().copied())
            .collect();
        out.sort_unstable();
        out
    }
}

/// Break/continue jump targets for the innermost enclosing loop.
#[derive(Clone, Copy)]
struct LoopCtx {
    break_to: BlockId,
    continue_to: BlockId,
}

struct Builder {
    blocks: Vec<BasicBlock>,
    exit: BlockId,
}

impl Builder {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::default());
        BlockId((self.blocks.len() - 1) as u32)
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from.0 as usize].succs.contains(&to) {
            self.blocks[from.0 as usize].succs.push(to);
            self.blocks[to.0 as usize].preds.push(from);
        }
    }

    fn push_stmt(&mut self, block: BlockId, id: StmtId) {
        self.blocks[block.0 as usize].stmts.push(id);
    }

    /// Lower a braced block starting in `cur`; returns the block left
    /// open at its end.
    fn lower_block(&mut self, block: &Block, mut cur: BlockId, ctx: Option<LoopCtx>) -> BlockId {
        for stmt in &block.stmts {
            cur = self.lower_stmt(stmt, cur, ctx);
        }
        cur
    }

    fn lower_stmt(&mut self, stmt: &Stmt, cur: BlockId, ctx: Option<LoopCtx>) -> BlockId {
        match &stmt.kind {
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => {
                self.push_stmt(cur, stmt.id);
                let join = self.new_block();
                let then_entry = self.new_block();
                self.edge(cur, then_entry);
                let then_end = self.lower_block(then_block, then_entry, ctx);
                self.edge(then_end, join);
                match else_block {
                    Some(e) => {
                        let else_entry = self.new_block();
                        self.edge(cur, else_entry);
                        let else_end = self.lower_block(e, else_entry, ctx);
                        self.edge(else_end, join);
                    }
                    None => self.edge(cur, join),
                }
                join
            }
            StmtKind::While { body, .. } => {
                let header = self.new_block();
                self.push_stmt(header, stmt.id);
                self.edge(cur, header);
                let body_entry = self.new_block();
                let after = self.new_block();
                self.edge(header, body_entry);
                self.edge(header, after);
                let inner = LoopCtx {
                    break_to: after,
                    continue_to: header,
                };
                let body_end = self.lower_block(body, body_entry, Some(inner));
                self.edge(body_end, header);
                after
            }
            StmtKind::DoWhile { body, .. } => {
                let body_entry = self.new_block();
                self.edge(cur, body_entry);
                let cond = self.new_block();
                self.push_stmt(cond, stmt.id);
                let after = self.new_block();
                let inner = LoopCtx {
                    break_to: after,
                    continue_to: cond,
                };
                let body_end = self.lower_block(body, body_entry, Some(inner));
                self.edge(body_end, cond);
                self.edge(cond, body_entry);
                self.edge(cond, after);
                after
            }
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => {
                let cur = self.lower_stmt(init, cur, ctx);
                let header = self.new_block();
                self.push_stmt(header, stmt.id);
                self.edge(cur, header);
                let body_entry = self.new_block();
                let update_block = self.new_block();
                self.push_stmt(update_block, update.id);
                let after = self.new_block();
                self.edge(header, body_entry);
                if cond.is_some() {
                    self.edge(header, after);
                }
                let inner = LoopCtx {
                    break_to: after,
                    continue_to: update_block,
                };
                let body_end = self.lower_block(body, body_entry, Some(inner));
                self.edge(body_end, update_block);
                self.edge(update_block, header);
                after
            }
            StmtKind::Break => {
                self.push_stmt(cur, stmt.id);
                if let Some(ctx) = ctx {
                    self.edge(cur, ctx.break_to);
                }
                self.new_block()
            }
            StmtKind::Continue => {
                self.push_stmt(cur, stmt.id);
                if let Some(ctx) = ctx {
                    self.edge(cur, ctx.continue_to);
                }
                self.new_block()
            }
            StmtKind::Return(_) => {
                self.push_stmt(cur, stmt.id);
                let exit = self.exit;
                self.edge(cur, exit);
                self.new_block()
            }
            _ => {
                self.push_stmt(cur, stmt.id);
                cur
            }
        }
    }
}

/// Build the control-flow graph of one function.
pub fn build_cfg(f: &Function) -> Cfg {
    let mut b = Builder {
        blocks: Vec::new(),
        exit: BlockId(0),
    };
    let entry = b.new_block();
    let exit = b.new_block();
    b.exit = exit;
    let last = b.lower_block(&f.body, entry, None);
    b.edge(last, exit);

    // Reachability from the entry block.
    let mut cfg = Cfg {
        func: f.name.clone(),
        blocks: b.blocks,
        entry,
        exit,
    };
    let mut stack = vec![entry];
    while let Some(id) = stack.pop() {
        let block = &mut cfg.blocks[id.0 as usize];
        if block.reachable {
            continue;
        }
        block.reachable = true;
        stack.extend(block.succs.iter().copied());
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::parser::parse;

    fn cfg_of(src: &str) -> Cfg {
        let prog = parse(src).unwrap();
        build_cfg(&prog.functions[0])
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = cfg_of("void f() { a = 1; b = 2; g(a, b); }");
        let entry = &cfg.blocks[cfg.entry.0 as usize];
        assert_eq!(entry.stmts.len(), 3);
        assert_eq!(entry.succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_forms_a_diamond() {
        let cfg = cfg_of("void f(int x) { if (x) { a = 1; } else { a = 2; } g(a); }");
        let entry = &cfg.blocks[cfg.entry.0 as usize];
        // Entry holds the if header and branches two ways.
        assert_eq!(entry.succs.len(), 2);
        // The join block holds g(a) and both arms reach it.
        let join = cfg
            .reachable_blocks()
            .find(|(_, b)| b.stmts.len() == 1 && b.preds.len() == 2)
            .expect("join block");
        assert_eq!(join.1.succs, vec![cfg.exit]);
    }

    #[test]
    fn while_loop_has_back_edge() {
        let cfg = cfg_of("void f(int n) { while (n) { n = step(n); } done(); }");
        let header = cfg
            .reachable_blocks()
            .find(|(id, b)| b.preds.len() == 2 && *id != cfg.exit && !b.stmts.is_empty())
            .expect("loop header has entry + back edge")
            .0;
        let hdr = &cfg.blocks[header.0 as usize];
        assert_eq!(hdr.succs.len(), 2, "into body and past the loop");
    }

    #[test]
    fn for_loop_shape() {
        let prog = parse("void f() { for (int i = 0; i < 3; i++) { g(i); } h(); }").unwrap();
        let f = &prog.functions[0];
        let cfg = build_cfg(f);
        // init lives with the entry block, header/body/update/after exist.
        let (init_id, update_id) = match &f.body.stmts[0].kind {
            StmtKind::For { init, update, .. } => (init.id, update.id),
            _ => unreachable!(),
        };
        let init_block = cfg.block_of(init_id).unwrap();
        assert_eq!(init_block, cfg.entry);
        let update_block = cfg.block_of(update_id).unwrap();
        // Update flows back to the header.
        let header = cfg.block_of(f.body.stmts[0].id).unwrap();
        assert_eq!(cfg.blocks[update_block.0 as usize].succs, vec![header]);
    }

    #[test]
    fn break_exits_and_code_after_return_is_unreachable() {
        let cfg = cfg_of(
            "void f(int n) { for (int i = 0; i < n; i++) { if (done()) { break; } } return; dead(); }",
        );
        let unreachable = cfg.unreachable_stmts();
        assert_eq!(
            unreachable.len(),
            1,
            "only dead() is unreachable: {unreachable:?}"
        );
    }

    #[test]
    fn do_while_body_always_reachable() {
        let prog = parse("void f() { do { g(); } while (cond()); after(); }").unwrap();
        let cfg = build_cfg(&prog.functions[0]);
        assert!(cfg.unreachable_stmts().is_empty());
        // The condition block has two successors: back into the body and out.
        let cond_block = cfg.block_of(prog.functions[0].body.stmts[0].id).unwrap();
        assert_eq!(cfg.blocks[cond_block.0 as usize].succs.len(), 2);
    }

    #[test]
    fn continue_jumps_to_update() {
        let prog = parse(
            "void f(int n) { for (int i = 0; i < n; i++) { if (skip(i)) { continue; } work(i); } }",
        )
        .unwrap();
        let f = &prog.functions[0];
        let cfg = build_cfg(f);
        let update_id = match &f.body.stmts[0].kind {
            StmtKind::For { update, .. } => update.id,
            _ => unreachable!(),
        };
        let update_block = cfg.block_of(update_id).unwrap();
        // continue's block feeds the update block directly.
        assert!(
            cfg.blocks[update_block.0 as usize].preds.len() >= 2,
            "fallthrough + continue edges into update"
        );
        assert!(cfg.unreachable_stmts().is_empty());
    }

    #[test]
    fn infinite_loop_makes_tail_unreachable() {
        let cfg = cfg_of("void f() { for (;;) { spin(); } after(); }");
        assert_eq!(cfg.unreachable_stmts().len(), 1);
    }
}
