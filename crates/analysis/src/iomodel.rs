//! Static I/O workload model.
//!
//! Consumes the abstract interpretation results ([`crate::interp`]) and
//! classifies every I/O call site in a program: direction, bytes per
//! operation, operation count (symbolic in the app's size parameters
//! where possible), access pattern (sequential / strided / random /
//! collective-like), and a confidence score. [`predict_program`] returns
//! one [`IoPrediction`] per entry function; `tunio-infer` (in
//! `crates/discovery`) lowers these into `tunio_workloads::AppSpec`s.
//!
//! ## Pattern classification
//!
//! * `H5Dwrite`/`H5Dread` and `MPI_File_*_all` are **collective-like**:
//!   the runtime may aggregate them, and the tuner's collective-buffering
//!   parameters apply.
//! * A POSIX data call with a preceding seek whose offset is *linear* in
//!   the enclosing loop's induction variable with coefficient `K` is
//!   **sequential** when `K` equals the request size (the seek just
//!   re-states the cursor) and **strided with stride `K`** otherwise.
//! * Offsets that involve `rand*`-like calls, or that we cannot express
//!   linearly, are **random**.
//! * A plain data call with no seek advances the cursor: **sequential**.
//!
//! The API byte/argument conventions here are shared with the dynamic
//! replay interpreter in `crates/discovery` (`dynexec`), so the static
//! and dynamic paths agree on what each call *means* and the accuracy
//! harness measures only what the *analysis* got wrong.

use std::collections::BTreeMap;

use tunio_cminus::ast::{Block, Expr, Function, Program, Stmt, StmtId, StmtKind};
use tunio_cminus::span::Span;

use crate::domain::{AbsVal, Bound, Congruence};
use crate::interp::{eval_expr_at, interpret_function, var_id_by_name, FnAbsState};

/// Data direction of an I/O call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Storage → process.
    Read,
    /// Process → storage.
    Write,
}

/// Predicted spatial access pattern of a call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredPattern {
    /// Contiguous/cursor-advancing accesses.
    Sequential,
    /// Fixed-stride accesses; `stride` is the per-iteration offset step
    /// in bytes.
    Strided {
        /// Offset advance per loop iteration, in bytes.
        stride: u64,
    },
    /// Effectively random offsets.
    Random,
    /// Collective-capable library calls (HDF5 dataset I/O, MPI-IO
    /// collective variants).
    CollectiveLike,
}

impl PredPattern {
    /// Stable label used in goldens, reports and accuracy scoring.
    pub fn label(&self) -> &'static str {
        match self {
            PredPattern::Sequential => "sequential",
            PredPattern::Strided { .. } => "strided",
            PredPattern::Random => "random",
            PredPattern::CollectiveLike => "collective",
        }
    }
}

/// What an extern call name means to the I/O model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoApi {
    /// Bulk data write.
    DataWrite {
        /// Collective-capable (HDF5/MPI collective variants).
        collective: bool,
    },
    /// Bulk data read.
    DataRead {
        /// Collective-capable.
        collective: bool,
    },
    /// Explicit file-offset positioning.
    Seek,
    /// Metadata operation (open/create/close/flush/...).
    Meta,
    /// Trivial logging write (excluded from data volume).
    Logging,
}

/// Classify an extern call name, if it is I/O-relevant.
pub fn api_of(name: &str) -> Option<IoApi> {
    match name {
        "H5Dwrite" => Some(IoApi::DataWrite { collective: true }),
        "H5Dread" => Some(IoApi::DataRead { collective: true }),
        "MPI_File_write_all" | "MPI_File_write_at_all" => {
            Some(IoApi::DataWrite { collective: true })
        }
        "MPI_File_read_all" | "MPI_File_read_at_all" => Some(IoApi::DataRead { collective: true }),
        "fwrite" | "write" | "pwrite" | "MPI_File_write" | "MPI_File_write_at" => {
            Some(IoApi::DataWrite { collective: false })
        }
        "fread" | "read" | "pread" | "MPI_File_read" | "MPI_File_read_at" => {
            Some(IoApi::DataRead { collective: false })
        }
        "fseek" | "lseek" | "MPI_File_seek" => Some(IoApi::Seek),
        "fopen" | "open" | "fclose" | "close" | "fsync" | "fflush" | "MPI_File_open"
        | "MPI_File_close" | "MPI_File_sync" | "H5Fcreate" | "H5Fopen" | "H5Fclose"
        | "H5Fflush" | "H5Dcreate" | "H5Dopen" | "H5Dclose" | "H5Screate_simple" | "H5Sclose"
        | "H5Pcreate" | "H5Pclose" => Some(IoApi::Meta),
        "printf" | "fprintf" | "puts" | "fputs" | "putchar" | "fputc" | "perror" => {
            Some(IoApi::Logging)
        }
        _ => None,
    }
}

/// One classified I/O call site.
#[derive(Debug, Clone)]
pub struct SitePrediction {
    /// Function the site lives in (the *entry* function for inlined
    /// callee sites).
    pub func: String,
    /// The call statement.
    pub stmt: StmtId,
    /// Source span of the statement.
    pub span: Span,
    /// Callee name (`H5Dwrite`, `fwrite`, ...).
    pub call: String,
    /// Data direction.
    pub dir: Direction,
    /// Bytes moved per operation (symbolic where buffer sizes are).
    pub bytes_per_op: AbsVal,
    /// Operations per run of the entry function.
    pub ops: AbsVal,
    /// Predicted spatial pattern.
    pub pattern: PredPattern,
    /// Dataset name / file path the call targets (best effort).
    pub target: String,
    /// Whether the call is collective-capable.
    pub collective: bool,
    /// Allocation site of the buffer the call moves, when known.
    pub buf: Option<StmtId>,
    /// Innermost enclosing loop statement, when inside a loop.
    pub loop_id: Option<StmtId>,
    /// Outermost enclosing loop statement (the app's main loop).
    pub outer_loop: Option<StmtId>,
    /// Loop nesting depth at the site.
    pub loop_depth: usize,
    /// Prediction confidence in `(0, 1]`.
    pub confidence: f64,
}

/// Predicted I/O behaviour of one entry function.
#[derive(Debug, Clone)]
pub struct IoPrediction {
    /// Entry function name.
    pub entry: String,
    /// Its size-parameter names (the symbolic dimensions of the
    /// prediction).
    pub params: Vec<String>,
    /// Classified data call sites, in program order.
    pub sites: Vec<SitePrediction>,
    /// Metadata operations outside any loop (setup/teardown).
    pub meta_setup: AbsVal,
    /// Metadata operations inside loops.
    pub meta_loop: AbsVal,
    /// Trivial logging ops outside loops.
    pub logging_setup: AbsVal,
    /// Trivial logging ops inside loops.
    pub logging_loop: AbsVal,
    /// Trip count of the dominant I/O loop (1 when I/O is straight-line).
    pub loop_iterations: AbsVal,
    /// Overall confidence: the minimum site confidence.
    pub confidence: f64,
}

impl IoPrediction {
    /// Total predicted transfer volume (reads + writes) under concrete
    /// parameter bindings.
    pub fn total_bytes(&self, bindings: &BTreeMap<String, i64>) -> u64 {
        self.sites.iter().map(|s| s.volume_bytes(bindings)).sum()
    }
}

impl SitePrediction {
    /// Predicted bytes this site moves in one run, under bindings.
    pub fn volume_bytes(&self, bindings: &BTreeMap<String, i64>) -> u64 {
        let per_op = self.bytes_per_op.eval(bindings).unwrap_or(0).max(0) as u64;
        let ops = self.ops.eval(bindings).unwrap_or(0).max(0) as u64;
        per_op.saturating_mul(ops)
    }
}

/// Collect `(name, args)` for every call in an expression tree.
fn collect_calls<'e>(expr: &'e Expr, out: &mut Vec<(&'e str, &'e [Expr])>) {
    match expr {
        Expr::Call { name, args } => {
            out.push((name, args));
            for a in args {
                collect_calls(a, out);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_calls(lhs, out);
            collect_calls(rhs, out);
        }
        Expr::Unary { operand, .. } | Expr::Postfix { operand, .. } => collect_calls(operand, out),
        Expr::Index { base, index } => {
            collect_calls(base, out);
            collect_calls(index, out);
        }
        Expr::Member { base, .. } => collect_calls(base, out),
        _ => {}
    }
}

/// Top-level expressions of a statement that can contain I/O calls.
fn stmt_exprs(stmt: &Stmt) -> Vec<&Expr> {
    match &stmt.kind {
        StmtKind::Decl { init: Some(e), .. } => vec![e],
        StmtKind::Assign { rhs, .. } => vec![rhs],
        StmtKind::Expr(e) => vec![e],
        StmtKind::Return(Some(e)) => vec![e],
        _ => Vec::new(),
    }
}

fn expr_has_rand(expr: &Expr) -> bool {
    let mut names = Vec::new();
    expr.call_names(&mut names);
    names.iter().any(|n| crate::interp::is_rand_fn(n))
}

struct Walker<'a> {
    f: &'a Function,
    state: &'a FnAbsState,
    funcs: &'a BTreeMap<String, (&'a Function, FnAbsState)>,
    sites: Vec<SitePrediction>,
    meta_setup: AbsVal,
    meta_loop: AbsVal,
    logging_setup: AbsVal,
    logging_loop: AbsVal,
    /// (loop stmt, exactness) stack.
    loop_stack: Vec<(StmtId, bool)>,
    /// Last seek per handle root-identifier name.
    seeks: BTreeMap<String, (StmtId, Expr)>,
    /// Guard against interprocedural recursion.
    visiting: Vec<String>,
}

impl<'a> Walker<'a> {
    fn exec_of(&self, stmt: StmtId) -> AbsVal {
        self.state
            .exec
            .get(&stmt)
            .cloned()
            .unwrap_or_else(|| AbsVal::constant(1))
    }

    fn eval_num(&self, at: StmtId, expr: &Expr) -> AbsVal {
        eval_expr_at(self.f, self.state, at, expr, &[])
    }

    fn handle_object(&self, at: StmtId, expr: &Expr) -> (String, Option<StmtId>) {
        // Resolve the handle argument to its open/create site via the
        // abstract environment.
        if let Expr::Ident(name) = expr {
            if let Some(id) = var_id_by_name(self.f, name) {
                let env = self.state.env_before(at);
                if let Some(v) = env.get(&id) {
                    if let Some(site) = v.handle {
                        if let Some(h) = self.state.handles.get(&site) {
                            return (h.object.clone(), Some(site));
                        }
                    }
                }
            }
            return (name.clone(), None);
        }
        (String::new(), None)
    }

    fn buffer_of(&self, at: StmtId, expr: &Expr) -> Option<StmtId> {
        if let Expr::Ident(name) = expr {
            let id = var_id_by_name(self.f, name)?;
            let env = self.state.env_before(at);
            env.get(&id)?.buf
        } else {
            None
        }
    }

    fn buffer_bytes(&self, site: StmtId) -> AbsVal {
        self.state
            .buffers
            .get(&site)
            .map(|b| b.bytes())
            .unwrap_or_else(AbsVal::top)
    }

    /// Linear coefficient of `expr` in the innermost loop's induction
    /// variable, or None when not linear / no loop / no induction var.
    fn offset_coefficient(&self, at: StmtId, expr: &Expr) -> Option<i64> {
        let (loop_id, _) = *self.loop_stack.last()?;
        let li = self.state.loops.get(&loop_id)?;
        let ivar = li.induction?;
        let marker = AbsVal::param("__ivar__");
        let v = eval_expr_at(self.f, self.state, at, expr, &[(ivar, marker)]);
        let sym = v.sym?;
        if sym.den != 1 {
            return None;
        }
        let per_index = *sym.terms.get("__ivar__").unwrap_or(&0);
        // Other parameters may appear (e.g. a rank offset); only the
        // induction coefficient matters, but reject mixed products —
        // `substitute`/`mul` already failed those into None.
        let step = li.step.unwrap_or(1);
        Some(per_index.saturating_mul(step))
    }

    fn pattern_for(
        &self,
        at: StmtId,
        api: IoApi,
        handle_root: &str,
        bytes: &AbsVal,
    ) -> (PredPattern, f64) {
        let collective = matches!(
            api,
            IoApi::DataWrite { collective: true } | IoApi::DataRead { collective: true }
        );
        if collective {
            return (PredPattern::CollectiveLike, 1.0);
        }
        let Some((_seek_stmt, offset)) = self.seeks.get(handle_root) else {
            // No explicit positioning: the cursor advances; sequential.
            return (PredPattern::Sequential, 0.95);
        };
        if expr_has_rand(offset) {
            return (PredPattern::Random, 0.9);
        }
        match self.offset_coefficient(at, offset) {
            Some(k) => {
                let k = k.unsigned_abs();
                match bytes.as_const() {
                    Some(l) if k == l.unsigned_abs() => (PredPattern::Sequential, 1.0),
                    _ if k == 0 => (PredPattern::Sequential, 0.8),
                    _ => (PredPattern::Strided { stride: k }, 1.0),
                }
            }
            None => (PredPattern::Random, 0.6),
        }
    }

    fn loops_exact(&self) -> bool {
        self.loop_stack.iter().all(|(_, exact)| *exact)
    }

    fn record_data_site(
        &mut self,
        stmt: &Stmt,
        call: &str,
        args: &[Expr],
        api: IoApi,
        mult: &AbsVal,
    ) {
        let dir = match api {
            IoApi::DataWrite { .. } => Direction::Write,
            _ => Direction::Read,
        };
        let collective = matches!(
            api,
            IoApi::DataWrite { collective: true } | IoApi::DataRead { collective: true }
        );
        // Per-API byte and handle conventions (shared with dynexec).
        let (bytes, handle_expr, buf_expr) = match call {
            "fwrite" | "fread" => {
                let size = args
                    .get(1)
                    .map(|e| self.eval_num(stmt.id, e))
                    .unwrap_or_else(AbsVal::top);
                let count = args
                    .get(2)
                    .map(|e| self.eval_num(stmt.id, e))
                    .unwrap_or_else(AbsVal::top);
                (size.mul(&count), args.get(3), args.first())
            }
            "write" | "read" | "pwrite" | "pread" => (
                args.get(2)
                    .map(|e| self.eval_num(stmt.id, e))
                    .unwrap_or_else(AbsVal::top),
                args.first(),
                args.get(1),
            ),
            "H5Dwrite" | "H5Dread" => {
                let buf = args.get(1).and_then(|e| self.buffer_of(stmt.id, e));
                let bytes = buf
                    .map(|b| self.buffer_bytes(b))
                    .unwrap_or_else(AbsVal::top);
                (bytes, args.first(), args.get(1))
            }
            _ => (
                // MPI_File_*: last argument is the byte count.
                args.last()
                    .map(|e| self.eval_num(stmt.id, e))
                    .unwrap_or_else(AbsVal::top),
                args.first(),
                args.get(1),
            ),
        };
        let (target, _handle_site) = handle_expr
            .map(|e| self.handle_object(stmt.id, e))
            .unwrap_or_default();
        let handle_root = handle_expr
            .and_then(|e| e.lvalue_root())
            .unwrap_or("")
            .to_string();
        let buf = buf_expr.and_then(|e| self.buffer_of(stmt.id, e));
        let (pattern, pattern_conf) = self.pattern_for(stmt.id, api, &handle_root, &bytes);
        let ops = self.exec_of(stmt.id).mul(mult).clamp_non_negative();
        let mut confidence = pattern_conf;
        if !self.loops_exact() {
            confidence *= 0.75;
        }
        if bytes.as_const().is_none() && bytes.sym.is_none() {
            confidence *= 0.5;
        }
        if ops.as_const().is_none() && ops.sym.is_none() {
            confidence *= 0.5;
        }
        self.sites.push(SitePrediction {
            func: self.f.name.clone(),
            stmt: stmt.id,
            span: stmt.span,
            call: call.to_string(),
            dir,
            bytes_per_op: bytes,
            ops,
            pattern,
            target,
            collective,
            buf,
            loop_id: self.loop_stack.last().map(|(id, _)| *id),
            outer_loop: self.loop_stack.first().map(|(id, _)| *id),
            loop_depth: self.loop_stack.len(),
            confidence: (confidence * 100.0).round() / 100.0,
        });
    }

    /// Pre-scan a loop body for seeks so a data call textually before the
    /// seek still sees it (steady-state iterations do).
    fn prescan_seeks(&mut self, block: &Block) {
        for stmt in &block.stmts {
            for expr in stmt_exprs(stmt) {
                let mut calls = Vec::new();
                collect_calls(expr, &mut calls);
                for (name, args) in calls {
                    if matches!(api_of(name), Some(IoApi::Seek)) {
                        if let (Some(h), Some(off)) = (args.first(), args.get(1)) {
                            if let Some(root) = h.lvalue_root() {
                                self.seeks.insert(root.to_string(), (stmt.id, off.clone()));
                            }
                        }
                    }
                }
            }
            if let StmtKind::If {
                then_block,
                else_block,
                ..
            } = &stmt.kind
            {
                self.prescan_seeks(then_block);
                if let Some(e) = else_block {
                    self.prescan_seeks(e);
                }
            }
        }
    }

    fn walk(&mut self, block: &Block, mult: &AbsVal) {
        for stmt in &block.stmts {
            for expr in stmt_exprs(stmt) {
                let mut calls = Vec::new();
                collect_calls(expr, &mut calls);
                for (name, args) in calls {
                    match api_of(name) {
                        Some(IoApi::DataWrite { .. }) | Some(IoApi::DataRead { .. }) => {
                            let api = api_of(name).unwrap();
                            self.record_data_site(stmt, name, args, api, mult);
                        }
                        Some(IoApi::Seek) => {
                            if let (Some(h), Some(off)) = (args.first(), args.get(1)) {
                                if let Some(root) = h.lvalue_root() {
                                    self.seeks.insert(root.to_string(), (stmt.id, off.clone()));
                                }
                            }
                        }
                        Some(IoApi::Meta) => {
                            let n = self.exec_of(stmt.id).mul(mult).clamp_non_negative();
                            if self.loop_stack.is_empty() {
                                self.meta_setup = self.meta_setup.add(&n);
                            } else {
                                self.meta_loop = self.meta_loop.add(&n);
                            }
                        }
                        Some(IoApi::Logging) => {
                            let n = self.exec_of(stmt.id).mul(mult).clamp_non_negative();
                            if self.loop_stack.is_empty() {
                                self.logging_setup = self.logging_setup.add(&n);
                            } else {
                                self.logging_loop = self.logging_loop.add(&n);
                            }
                        }
                        None => {
                            // A call to a defined function: inline its
                            // sites with this call site's multiplier.
                            if self.funcs.contains_key(name)
                                && !self.visiting.iter().any(|v| v == name)
                            {
                                let call_mult =
                                    self.exec_of(stmt.id).mul(mult).clamp_non_negative();
                                self.inline_callee(stmt.id, name, args, &call_mult);
                            }
                        }
                    }
                }
            }
            match &stmt.kind {
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    self.walk(then_block, mult);
                    if let Some(e) = else_block {
                        self.walk(e, mult);
                    }
                }
                StmtKind::For { body, .. }
                | StmtKind::While { body, .. }
                | StmtKind::DoWhile { body, .. } => {
                    let exact = self
                        .state
                        .loops
                        .get(&stmt.id)
                        .map(|l| l.exact)
                        .unwrap_or(false);
                    self.loop_stack.push((stmt.id, exact));
                    let saved_seeks = self.seeks.clone();
                    self.prescan_seeks(body);
                    self.walk(body, mult);
                    self.loop_stack.pop();
                    self.seeks = saved_seeks;
                }
                _ => {}
            }
        }
    }

    fn inline_callee(&mut self, at: StmtId, name: &str, args: &[Expr], mult: &AbsVal) {
        let Some((g, g_state)) = self.funcs.get(name) else {
            return;
        };
        // Bind callee parameter names to caller-side abstract values.
        let mut bind: BTreeMap<String, AbsVal> = BTreeMap::new();
        for (i, (_, pname)) in g.params.iter().enumerate() {
            let v = args
                .get(i)
                .map(|e| self.eval_num(at, e))
                .unwrap_or_else(AbsVal::top);
            bind.insert(pname.clone(), v);
        }
        self.visiting.push(name.to_string());
        let mut inner = Walker {
            f: g,
            state: g_state,
            funcs: self.funcs,
            sites: Vec::new(),
            meta_setup: AbsVal::constant(0),
            meta_loop: AbsVal::constant(0),
            logging_setup: AbsVal::constant(0),
            logging_loop: AbsVal::constant(0),
            loop_stack: Vec::new(),
            seeks: BTreeMap::new(),
            visiting: self.visiting.clone(),
        };
        inner.walk(&g.body, &AbsVal::constant(1));
        self.visiting.pop();
        let in_loop = !self.loop_stack.is_empty();
        for mut site in inner.sites {
            site.ops = subst_absval(&site.ops, &bind)
                .mul(mult)
                .clamp_non_negative();
            site.bytes_per_op = subst_absval(&site.bytes_per_op, &bind);
            site.func = self.f.name.clone();
            site.loop_id = site.loop_id.or(self.loop_stack.last().map(|(id, _)| *id));
            site.outer_loop = self
                .loop_stack
                .first()
                .map(|(id, _)| *id)
                .or(site.outer_loop);
            site.loop_depth += self.loop_stack.len();
            if !self.loops_exact() {
                site.confidence = (site.confidence * 0.75 * 100.0).round() / 100.0;
            }
            self.sites.push(site);
        }
        let callee_meta = subst_absval(&inner.meta_setup.add(&inner.meta_loop), &bind).mul(mult);
        let callee_log =
            subst_absval(&inner.logging_setup.add(&inner.logging_loop), &bind).mul(mult);
        if in_loop {
            self.meta_loop = self.meta_loop.add(&callee_meta);
            self.logging_loop = self.logging_loop.add(&callee_log);
        } else {
            self.meta_setup = self.meta_setup.add(&callee_meta);
            self.logging_setup = self.logging_setup.add(&callee_log);
        }
    }
}

/// Rewrite an abstract value expressed over a callee's parameters into
/// caller terms, when the argument bindings allow it.
fn subst_absval(v: &AbsVal, bind: &BTreeMap<String, AbsVal>) -> AbsVal {
    let Some(sym) = &v.sym else {
        return v.clone();
    };
    if sym.terms.is_empty() {
        return v.clone();
    }
    let mut map = BTreeMap::new();
    for p in sym.terms.keys() {
        match bind.get(p).and_then(|a| a.sym.clone()) {
            Some(ls) if ls.den == 1 => {
                map.insert(p.clone(), ls);
            }
            _ => {
                let mut out = v.clone();
                out.sym = None;
                return out;
            }
        }
    }
    match sym.substitute(&map) {
        Some(ns) => AbsVal {
            lo: Bound::Finite(0),
            hi: Bound::PosInf,
            cong: Congruence::top(),
            sym: Some(ns),
        },
        None => {
            let mut out = v.clone();
            out.sym = None;
            out
        }
    }
}

/// Predict the I/O behaviour of every entry function in `prog`.
///
/// Entry functions are those not called by any other defined function;
/// sites in callees are inlined into their callers with call-site
/// multipliers and parameter substitution.
pub fn predict_program(prog: &Program) -> Vec<IoPrediction> {
    let mut funcs: BTreeMap<String, (&Function, FnAbsState)> = BTreeMap::new();
    for f in &prog.functions {
        funcs.insert(f.name.clone(), (f, interpret_function(f)));
    }
    // Which defined functions are called by other defined functions?
    let mut called: Vec<String> = Vec::new();
    for f in &prog.functions {
        let mut names = Vec::new();
        prog_calls(&f.body, &mut names);
        for n in names {
            if funcs.contains_key(&n) && n != f.name {
                called.push(n);
            }
        }
    }
    let mut out = Vec::new();
    for f in &prog.functions {
        if called.contains(&f.name) {
            continue;
        }
        let (_, state) = funcs.get(&f.name).unwrap();
        let mut w = Walker {
            f,
            state,
            funcs: &funcs,
            sites: Vec::new(),
            meta_setup: AbsVal::constant(0),
            meta_loop: AbsVal::constant(0),
            logging_setup: AbsVal::constant(0),
            logging_loop: AbsVal::constant(0),
            loop_stack: Vec::new(),
            seeks: BTreeMap::new(),
            visiting: vec![f.name.clone()],
        };
        w.walk(&f.body, &AbsVal::constant(1));
        let sites = w.sites;
        // Dominant loop: the outer loop enclosing the most data sites.
        let mut by_loop: BTreeMap<StmtId, usize> = BTreeMap::new();
        for s in &sites {
            if let Some(l) = s.outer_loop {
                *by_loop.entry(l).or_insert(0) += 1;
            }
        }
        let loop_iterations = by_loop
            .iter()
            .max_by_key(|(_, n)| **n)
            .and_then(|(l, _)| state.loops.get(l))
            .map(|li| li.trip.clone())
            .unwrap_or_else(|| AbsVal::constant(1));
        let confidence = sites.iter().map(|s| s.confidence).fold(1.0f64, f64::min);
        out.push(IoPrediction {
            entry: f.name.clone(),
            params: f.params.iter().map(|(_, n)| n.clone()).collect(),
            sites,
            meta_setup: w.meta_setup,
            meta_loop: w.meta_loop,
            logging_setup: w.logging_setup,
            logging_loop: w.logging_loop,
            loop_iterations,
            confidence: (confidence * 100.0).round() / 100.0,
        });
    }
    out
}

fn prog_calls(block: &Block, out: &mut Vec<String>) {
    for stmt in &block.stmts {
        for e in stmt_exprs(stmt) {
            e.call_names(out);
        }
        match &stmt.kind {
            StmtKind::If {
                then_block,
                else_block,
                cond,
            } => {
                cond.call_names(out);
                prog_calls(then_block, out);
                if let Some(e) = else_block {
                    prog_calls(e, out);
                }
            }
            StmtKind::For {
                cond,
                body,
                init,
                update,
            } => {
                if let Some(c) = cond {
                    c.call_names(out);
                }
                for e in stmt_exprs(init) {
                    e.call_names(out);
                }
                for e in stmt_exprs(update) {
                    e.call_names(out);
                }
                prog_calls(body, out);
            }
            StmtKind::While { cond, body } | StmtKind::DoWhile { cond, body } => {
                cond.call_names(out);
                prog_calls(body, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::parser::parse;
    use tunio_cminus::samples;

    fn predict(src: &str) -> IoPrediction {
        let prog = parse(src).unwrap();
        predict_program(&prog).into_iter().next().expect("entry fn")
    }

    fn bind(pairs: &[(&str, i64)]) -> BTreeMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn vpic_prediction_is_symbolic_and_collective() {
        let p = predict(samples::VPIC_IO);
        assert_eq!(p.sites.len(), 1);
        let s = &p.sites[0];
        assert_eq!(s.call, "H5Dwrite");
        assert_eq!(s.pattern, PredPattern::CollectiveLike);
        assert_eq!(s.target, "x");
        // bytes = 8 * particles, ops = num_steps.
        let b = bind(&[("num_steps", 5), ("particles", 1000)]);
        assert_eq!(s.volume_bytes(&b), 5 * 8 * 1000);
        assert_eq!(p.total_bytes(&b), 40_000);
    }

    #[test]
    fn flash_plot_guard_scales_ops() {
        let p = predict(samples::FLASH_IO);
        assert_eq!(p.sites.len(), 2);
        let b = bind(&[("nsteps", 10), ("blocks", 64)]);
        let ckpt = p.sites.iter().find(|s| s.target == "unk").unwrap();
        let plot = p.sites.iter().find(|s| s.target == "dens").unwrap();
        assert_eq!(ckpt.ops.eval(&b), Some(10));
        assert_eq!(plot.ops.eval(&b), Some(3)); // ceil(10/4)
        assert_eq!(p.total_bytes(&b), (10 + 3) * 64 * 8);
    }

    #[test]
    fn bdcats_read_and_write_directions() {
        let p = predict(samples::BDCATS_IO);
        let reads: Vec<_> = p
            .sites
            .iter()
            .filter(|s| s.dir == Direction::Read)
            .collect();
        let writes: Vec<_> = p
            .sites
            .iter()
            .filter(|s| s.dir == Direction::Write)
            .collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(writes.len(), 1);
        // The loop can break early: confidence degrades but the symbolic
        // upper bound survives.
        assert!(reads[0].confidence < 1.0);
        let b = bind(&[("max_rounds", 6), ("np", 100)]);
        assert_eq!(reads[0].ops.eval(&b), Some(6));
        assert_eq!(reads[0].volume_bytes(&b), 6 * 8 * 100);
        // `labels` may point at either allocation after the loop (the
        // zero-trip path keeps alloc_labels, iterations repoint it at the
        // slab via the dbscan passthrough), so its size is unknown.
        assert_eq!(writes[0].ops.eval(&b), Some(1));
        assert!(writes[0].buf.is_none());
        assert!(writes[0].bytes_per_op.as_const().is_none());
        assert!(writes[0].bytes_per_op.sym.is_none());
        assert!(writes[0].confidence <= 0.5);
    }

    #[test]
    fn pure_compute_has_no_sites() {
        let p = predict(samples::PURE_COMPUTE);
        assert!(p.sites.is_empty());
        assert_eq!(p.loop_iterations.as_const(), Some(1));
    }

    #[test]
    fn interprocedural_sites_inline_with_multipliers() {
        let src = r#"
            void save_frame(int nvals, hid_t fp) {
                double * buf = alloc_frame(nvals);
                fwrite(buf, 8, nvals, fp);
            }
            void main_loop(int steps, int nvals) {
                hid_t fp = fopen("frames.bin", 0);
                for (int s = 0; s < steps; s++) {
                    save_frame(nvals, fp);
                }
                fclose(fp);
            }
        "#;
        let prog = parse(src).unwrap();
        let preds = predict_program(&prog);
        assert_eq!(preds.len(), 1, "save_frame is not an entry");
        let p = &preds[0];
        assert_eq!(p.entry, "main_loop");
        assert_eq!(p.sites.len(), 1);
        let b = bind(&[("steps", 3), ("nvals", 100)]);
        assert_eq!(p.sites[0].ops.eval(&b), Some(3));
        assert_eq!(p.sites[0].volume_bytes(&b), 3 * 800);
    }

    #[test]
    fn strided_seek_detected() {
        let src = r#"
            void gyro(int nframes) {
                hid_t fp = fopen("gyro.dat", 0);
                double * frame = alloc_frame(131072);
                for (int f = 0; f < nframes; f++) {
                    fseek(fp, f * 4194304, 0);
                    fwrite(frame, 8, 131072, fp);
                }
                fclose(fp);
            }
        "#;
        let p = predict(src);
        assert_eq!(p.sites.len(), 1);
        assert_eq!(
            p.sites[0].pattern,
            PredPattern::Strided { stride: 4_194_304 }
        );
    }

    #[test]
    fn random_seek_detected() {
        let src = r#"
            void probe(int nprobes) {
                hid_t fd = open("probe.dat", 0);
                double * buf = alloc_buf(32768);
                for (int i = 0; i < nprobes; i++) {
                    lseek(fd, rand_offset(i), 0);
                    read(fd, buf, 262144);
                }
                close(fd);
            }
        "#;
        let p = predict(src);
        assert_eq!(p.sites.len(), 1);
        assert_eq!(p.sites[0].pattern, PredPattern::Random);
        assert_eq!(p.sites[0].dir, Direction::Read);
    }

    #[test]
    fn sequential_rewrite_seek_is_sequential() {
        // Seek whose per-iteration advance equals the request size.
        let src = r#"
            void log_append(int n) {
                hid_t fp = fopen("log.bin", 0);
                double * buf = alloc_buf(8192);
                for (int i = 0; i < n; i++) {
                    fseek(fp, i * 65536, 0);
                    fwrite(buf, 8, 8192, fp);
                }
                fclose(fp);
            }
        "#;
        let p = predict(src);
        assert_eq!(p.sites[0].pattern, PredPattern::Sequential);
    }
}
