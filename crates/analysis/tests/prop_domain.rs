//! Property tests for the abstract domain (`tunio_analysis::domain`).
//!
//! Every generator yields an abstract value *together with a concrete
//! member*, so each property checks genuine concretization soundness:
//! whatever holds of the member must be reflected by the abstract
//! result. The suite covers the lattice operations (join/widen), the
//! arithmetic transfer functions, branch refinement, and the symbolic
//! `eval` path — including widening termination, which the interpreter's
//! loop fixpoint relies on.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tunio_analysis::{AbsVal, LinExpr};

/// Ceiling division matching the domain's `div_ceil` contract.
fn ceil_div(v: i64, d: i64) -> i64 {
    v.div_euclid(d) + i64::from(v.rem_euclid(d) != 0)
}

/// An abstract value paired with one concrete member of its
/// concretization. Mixes constants, intervals, stride-carrying values
/// (built through the abstract arithmetic itself) and the non-negative
/// symbolic parameter.
fn val_with_member() -> impl Strategy<Value = (AbsVal, i64)> {
    prop_oneof![
        (-200i64..200).prop_map(|c| (AbsVal::constant(c), c)),
        (-100i64..100, 0i64..40, 0i64..40)
            .prop_map(|(lo, w, off)| { (AbsVal::range(lo, lo + w), lo + off % (w + 1)) }),
        // b + m*j for j in 0..=k: exercises mul/add and carries a
        // congruence component (x ≡ b mod m).
        (-20i64..20, 1i64..9, 1i64..10, 0i64..10).prop_map(|(b, m, k, j)| {
            let v = AbsVal::constant(m)
                .mul(&AbsVal::range(0, k))
                .add(&AbsVal::constant(b));
            (v, b + m * (j % (k + 1)))
        }),
        // The non-negative size parameter contains every v ≥ 0.
        (0i64..500).prop_map(|v| (AbsVal::param("n"), v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sanity of the generator itself (and of the mul/add used to build
    /// the strided case): the paired member really is a member.
    #[test]
    fn generated_members_are_contained((a, v) in val_with_member()) {
        prop_assert!(!a.is_bottom());
        prop_assert!(a.contains(v), "{} should contain {v}", a.render());
    }

    /// Join is an upper bound of both operands and is symmetric.
    #[test]
    fn join_is_a_symmetric_upper_bound(
        (a, va) in val_with_member(),
        (b, vb) in val_with_member(),
    ) {
        let j = a.join(&b);
        prop_assert!(j.contains(va), "{} lost {va} from lhs", j.render());
        prop_assert!(j.contains(vb), "{} lost {vb} from rhs", j.render());
        prop_assert_eq!(j, b.join(&a));
    }

    /// Joining with itself (or with bottom) changes nothing.
    #[test]
    fn join_is_idempotent_with_bottom_as_identity((a, _v) in val_with_member()) {
        prop_assert_eq!(a.join(&a), a.clone());
        prop_assert_eq!(a.join(&AbsVal::bottom()), a.clone());
        prop_assert_eq!(AbsVal::bottom().join(&a), a);
    }

    /// Widening over-approximates the join: it keeps the members of both
    /// operands (so the loop fixpoint never drops reachable values).
    #[test]
    fn widen_is_an_upper_bound(
        (a, va) in val_with_member(),
        (b, vb) in val_with_member(),
    ) {
        let w = a.widen(&b);
        prop_assert!(w.contains(va), "{} lost {va} from lhs", w.render());
        prop_assert!(w.contains(vb), "{} lost {vb} from rhs", w.render());
    }

    /// Repeatedly widening against any finite set of values reaches a
    /// fixpoint in a bounded number of steps: each step can only move a
    /// bound to ±∞ once, drop the symbolic form once, and walk the
    /// congruence modulus down a finite divisor chain.
    #[test]
    fn widening_terminates(vals in proptest::collection::vec(val_with_member(), 2..8)) {
        let mut w = vals[0].0.clone();
        let mut steps = 0u32;
        loop {
            let mut changed = false;
            for (v, _) in &vals {
                let next = w.widen(v);
                if next != w {
                    w = next;
                    changed = true;
                }
                steps += 1;
                prop_assert!(steps <= 256, "widening did not stabilize: {}", w.render());
            }
            if !changed {
                break;
            }
        }
        // The fixpoint absorbs every chain element's members.
        for (_, m) in &vals {
            prop_assert!(w.contains(*m), "fixpoint {} lost {m}", w.render());
        }
    }

    /// Arithmetic transfer functions are sound: the concrete result of
    /// each operation on members is a member of the abstract result.
    #[test]
    fn arithmetic_is_sound(
        (a, va) in val_with_member(),
        (b, vb) in val_with_member(),
    ) {
        prop_assert!(a.add(&b).contains(va + vb));
        prop_assert!(a.sub(&b).contains(va - vb));
        prop_assert!(a.neg().contains(-va));
        prop_assert!(a.mul(&b).contains(va * vb));
    }

    /// Division-family soundness against a positive constant divisor
    /// (the only shape the interpreter produces). `rem` additionally
    /// assumes a non-negative dividend — the domain models sizes and
    /// counts — so the dividend is clamped accordingly.
    #[test]
    fn division_by_positive_constants_is_sound(
        (a, va) in val_with_member(),
        d in 1i64..16,
    ) {
        let div = AbsVal::constant(d);
        prop_assert!(a.div(&div).contains(va.div_euclid(d)));
        prop_assert!(a.div_ceil(d).contains(ceil_div(va, d)));
        let nn = a.refine_ge(0);
        if va >= 0 {
            prop_assert!(nn.rem(&div).contains(va % d), "({}) % {d} lost {va}", nn.render());
        }
    }

    /// Branch refinement keeps exactly the satisfying members: a member
    /// survives `refine_le(c)` iff it is ≤ c (dually for `refine_ge`),
    /// and `clamp_non_negative` never admits a negative value.
    #[test]
    fn refinement_filters_members_exactly(
        (a, va) in val_with_member(),
        c in -150i64..150,
        neg in 1i64..100,
    ) {
        prop_assert_eq!(a.refine_le(c).contains(va), va <= c);
        prop_assert_eq!(a.refine_ge(c).contains(va), va >= c);
        let nn = a.clamp_non_negative();
        prop_assert!(!nn.contains(-neg));
        prop_assert_eq!(nn.contains(va), va >= 0);
    }

    /// The symbolic path agrees with the interval path: evaluating the
    /// linear form of `k·n + b` under a binding lands inside the
    /// abstract value built from the same expression.
    #[test]
    fn symbolic_eval_lands_in_the_abstraction(
        k in 1i64..16,
        b in 0i64..50,
        n in 0i64..200,
    ) {
        let e = AbsVal::param("n")
            .mul(&AbsVal::constant(k))
            .add(&AbsVal::constant(b));
        let mut binds = BTreeMap::new();
        binds.insert("n".to_string(), n);
        prop_assert_eq!(e.eval(&binds), Some(k * n + b));
        prop_assert!(e.contains(k * n + b));
    }

    /// `LinExpr::div_ceil` really is ceiling division for non-negative
    /// values (the trip-count shape), including when the expression
    /// already carries a denominator.
    #[test]
    fn linexpr_div_ceil_is_ceiling_division(
        k in 0i64..64,
        c in 0i64..16,
        n in 0i64..128,
        d1 in 1i64..8,
        d2 in 1i64..8,
    ) {
        let e = LinExpr::constant(k)
            .add(&LinExpr::param("n").scale(c).unwrap())
            .and_then(|e| e.div_ceil(d1))
            .and_then(|e| e.div_ceil(d2))
            .expect("div_ceil of non-negative linear form");
        let mut binds = BTreeMap::new();
        binds.insert("n".to_string(), n);
        prop_assert_eq!(e.eval(&binds), ceil_div(ceil_div(k + c * n, d1), d2));
    }
}
