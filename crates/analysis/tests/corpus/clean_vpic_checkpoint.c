void vpic_checkpoint(int steps, int np) {
    hid_t file = H5Fcreate("vpic.h5", 0);
    hid_t dset = H5Dcreate(file, "particles", 0);
    double * buf = allocate_particles(np);
    for (int s = 0; s < steps; s++) {
        buf = advance_particles(buf, np);
        H5Dwrite(dset, buf);
    }
    H5Dclose(dset);
    H5Fclose(file);
}
