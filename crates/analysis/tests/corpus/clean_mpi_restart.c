void write_restart(int nranks, int blocks) {
    hid_t fh = MPI_File_open("restart.bin");
    int offset = nranks * blocks;
    MPI_File_write_at(fh, offset, blocks);
    MPI_File_close(fh);
}
