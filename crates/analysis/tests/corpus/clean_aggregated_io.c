void flush_tiles(int nt, int tile_bytes) {
    double * staging = alloc_staging(nt * tile_bytes);
    for (int t = 0; t < nt; t++) {
        staging = pack_tile(staging, t);
    }
    hid_t f = H5Fcreate("tiles.h5", 0);
    H5Dwrite(f, staging);
    H5Fclose(f);
}
