//! The clean C corpus under `tests/corpus/` must stay warning-free —
//! it is the set CI gates with `tunio-lint --deny warnings`, and serves
//! as the worked examples of lint-clean I/O code (aggregate staging
//! writes instead of nested-loop I/O, initialized buffers, no dead
//! stores). Informational findings are allowed; warnings are not.

use std::path::PathBuf;
use tunio_analysis::lint::{has_warnings, lint_program, LintOptions};
use tunio_cminus::parser::parse;

#[test]
fn corpus_is_warning_free() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus dir exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("c") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let program =
            parse(&src).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let diags = lint_program(&program, &LintOptions::default());
        assert!(
            !has_warnings(&diags),
            "{} must be lint-clean, found: {:#?}",
            path.display(),
            diags
        );
        checked += 1;
    }
    assert!(checked >= 3, "expected at least 3 corpus files");
}
