//! Golden-output regression tests for `tunio-lint`.
//!
//! The text and JSON renderings over every built-in sample program are
//! compared byte-for-byte against snapshots under `tests/golden/`.
//! Diagnostics are fully deterministic (sorted by span, kind, message),
//! so byte-exact snapshots are stable.
//!
//! When a change intentionally moves the output, re-bless with:
//!
//! ```text
//! TUNIO_BLESS=1 cargo test -p tunio-analysis --test golden_lints
//! ```
//!
//! and commit the updated files together with the change that moved them.

use std::path::PathBuf;
use tunio_analysis::lint::{lint_program, render_text, LintOptions};
use tunio_cminus::parser::parse;
use tunio_cminus::samples;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("TUNIO_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             TUNIO_BLESS=1 cargo test -p tunio-analysis --test golden_lints",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden lint output {name} diverged; if the change is intentional, re-bless with \
         TUNIO_BLESS=1 cargo test -p tunio-analysis --test golden_lints"
    );
}

/// Text rendering over all samples, in the exact format `tunio-lint
/// --sample all` prints.
#[test]
fn sample_lints_match_golden_text() {
    let mut out = String::new();
    for (name, src) in samples::all_samples() {
        let program = parse(src).expect("samples parse");
        let diags = lint_program(&program, &LintOptions::default());
        out.push_str(&format!("== {name} ==\n"));
        out.push_str(&render_text(&diags));
    }
    check_golden("sample_lints.txt", &out);
}

/// JSON rendering over all samples, matching `tunio-lint --sample all
/// --json` per-input objects.
#[test]
fn sample_lints_match_golden_json() {
    let inputs: Vec<serde_json::Value> = samples::all_samples()
        .into_iter()
        .map(|(name, src)| {
            let program = parse(src).expect("samples parse");
            let diags = lint_program(&program, &LintOptions::default());
            let findings: Vec<serde_json::Value> = diags.iter().map(|d| d.to_json()).collect();
            let warnings = diags
                .iter()
                .filter(|d| d.severity == tunio_analysis::Severity::Warning)
                .count();
            serde_json::json!({
                "name": name,
                "warnings": warnings,
                "infos": diags.len() - warnings,
                "diagnostics": findings,
            })
        })
        .collect();
    let report = serde_json::json!({ "version": 1, "inputs": inputs });
    let actual = serde_json::to_string_pretty(&report).unwrap() + "\n";
    check_golden("sample_lints.json", &actual);
}
