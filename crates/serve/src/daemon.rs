//! The multi-tenant tuning daemon.
//!
//! `tunio-serve` accepts campaign submissions over HTTP and runs them on
//! a shared worker pool. Its design leans entirely on the per-campaign
//! failure boundary the rest of the workspace provides:
//!
//! * a campaign that fails ([`CampaignError`]) or whose evaluator
//!   *panics* marks only that campaign `failed` — the process, the other
//!   tenants, and the worker thread all survive;
//! * every campaign checkpoints to its own WAL under the daemon's WAL
//!   directory, so a killed daemon resumes every in-flight campaign on
//!   the next boot (bitwise-identically, per the WAL replay contract);
//! * WALs the binary cannot host (unknown strategy, alien version) are
//!   quarantined at boot — renamed aside, counted, logged — never a
//!   reason to refuse to start.
//!
//! Tenancy is cooperative but real: per-tenant admission quotas bound
//! how much of the pool one tenant can hold, and the evaluation memo
//! cache is namespaced per tenant — tenant A's prior results warm-start
//! tenant A's next identical campaign (`counters.sim_wall_s == 0.0`
//! proves a fully-warm run) and are never visible to tenant B.

use crate::http::{read_request, write_response, Request};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;
use tunio::checkpoint::{load, scan_dir, CheckpointHeader};
use tunio::pipeline::{
    outcome_json, run_campaign_opts, run_strategy_campaign_opts, spec_from_header, CampaignOptions,
    CampaignSpec, PipelineKind, StrategyKind,
};
use tunio_iosim::{FaultPlan, NoiseProfile};
use tunio_trace as trace;
use tunio_tuner::{CacheEntry, EvalCounters, RacingConfig};
use tunio_workloads::Variant;

/// Acquire a mutex, recovering from poisoning: a worker that panicked
/// inside a campaign must not wedge the daemon's bookkeeping. All state
/// behind these locks is updated transactionally (full-record writes),
/// so a poisoned guard's data is still consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Daemon configuration (CLI flags map 1:1).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` lets the OS pick (tests).
    pub addr: String,
    /// Directory for campaign WALs, outcome files, and request metadata.
    pub wal_dir: PathBuf,
    /// Campaign worker threads (concurrent campaigns).
    pub workers: usize,
    /// Max queued+running campaigns one tenant may hold (429 beyond).
    pub max_active_per_tenant: usize,
    /// Max total queued campaigns (503 beyond).
    pub max_queue: usize,
    /// Suppress boot/recovery log lines on stderr.
    pub quiet: bool,
    /// Write a JSON-lines causal trace of every campaign here (the file
    /// `tunio-report --critical-path` reads). `None` disables tracing;
    /// the timeline endpoint then only sees scheduler-stall time.
    pub trace_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            wal_dir: PathBuf::from("tunio-serve-wal"),
            workers: 2,
            max_active_per_tenant: 4,
            max_queue: 64,
            quiet: false,
            trace_path: None,
        }
    }
}

/// One tenant's campaign submission (the `POST /campaigns` body).
#[derive(Debug, Clone)]
pub struct CampaignRequest {
    /// Tenant identity. Quotas and the warm cache are keyed by this.
    pub tenant: String,
    /// Optional campaign name (the id becomes `{tenant}--{name}`);
    /// auto-numbered when absent.
    pub name: Option<String>,
    /// Application label (`hacc`, `vpic`, ...), as in `tunio-tune --app`.
    pub app: String,
    /// Pipeline label, as in `tunio-tune --pipeline`.
    pub pipeline: String,
    /// Optional strategy backend (`ga|random|lhs|bo`); classic GA loop
    /// when absent.
    pub strategy: Option<String>,
    /// `full`, `kernel`, or `reduced:<frac>`.
    pub variant: String,
    /// Generation budget.
    pub iterations: u32,
    /// Population size.
    pub population: usize,
    /// Campaign seed.
    pub seed: u64,
    /// 500-node scale when true.
    pub large_scale: bool,
    /// Evaluator threads for strategy campaigns.
    pub threads: Option<usize>,
    /// Transient-fault injection rate (chaos testing).
    pub fault_rate: Option<f64>,
    /// Fault stream seed (defaults to the campaign seed).
    pub fault_seed: Option<u64>,
    /// Drill switch: the worker panics instead of running the campaign.
    /// Proves panic isolation end-to-end without a special build.
    pub inject_panic: bool,
    /// Heteroscedastic interference profile (`quiet|busy|storm`).
    pub noise_profile: Option<String>,
    /// Interference seed (defaults to the campaign seed).
    pub noise_seed: Option<u64>,
    /// Noise-robust racing evaluation (strategy campaigns only).
    pub racing: bool,
}

fn ident_ok(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
}

impl CampaignRequest {
    /// Parse a submission from its JSON body. `tenant` and `app` are
    /// required; everything else has CLI-matching defaults.
    pub fn from_json(v: &serde_json::Value) -> Result<CampaignRequest, String> {
        let str_field = |key: &str| v.get(key).and_then(|x| x.as_str()).map(str::to_string);
        let tenant = str_field("tenant").ok_or("missing field `tenant`")?;
        if !ident_ok(&tenant) {
            return Err(format!(
                "bad tenant `{tenant}` (want [A-Za-z0-9_.-]{{1,64}})"
            ));
        }
        let name = str_field("name");
        if let Some(n) = &name {
            if !ident_ok(n) {
                return Err(format!("bad name `{n}` (want [A-Za-z0-9_.-]{{1,64}})"));
            }
        }
        let req = CampaignRequest {
            tenant,
            name,
            app: str_field("app").ok_or("missing field `app`")?,
            pipeline: str_field("pipeline").unwrap_or_else(|| "tunio".to_string()),
            strategy: str_field("strategy"),
            variant: str_field("variant").unwrap_or_else(|| "kernel".to_string()),
            iterations: v.get("iterations").and_then(|x| x.as_u64()).unwrap_or(10) as u32,
            population: v.get("population").and_then(|x| x.as_u64()).unwrap_or(6) as usize,
            seed: v.get("seed").and_then(|x| x.as_u64()).unwrap_or(42),
            large_scale: matches!(v.get("large_scale"), Some(serde_json::Value::Bool(true))),
            threads: v
                .get("threads")
                .and_then(|x| x.as_u64())
                .map(|n| n as usize),
            fault_rate: v.get("fault_rate").and_then(|x| x.as_f64()),
            fault_seed: v.get("fault_seed").and_then(|x| x.as_u64()),
            inject_panic: matches!(v.get("inject_panic"), Some(serde_json::Value::Bool(true))),
            noise_profile: str_field("noise_profile"),
            noise_seed: v.get("noise_seed").and_then(|x| x.as_u64()),
            racing: matches!(v.get("racing"), Some(serde_json::Value::Bool(true))),
        };
        if let Some(p) = &req.noise_profile {
            NoiseProfile::parse(p)
                .ok_or_else(|| format!("unknown noise profile `{p}` (want quiet|busy|storm)"))?;
        }
        if req.racing && req.strategy.is_none() {
            return Err("racing needs a strategy backend (`strategy`)".to_string());
        }
        req.to_spec()?; // validate app/pipeline/variant/strategy up front
        Ok(req)
    }

    /// Deterministic JSON rendering (the `{id}.meta.json` sidecar).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"tenant\":{}", quote(&self.tenant)));
        if let Some(n) = &self.name {
            s.push_str(&format!(",\"name\":{}", quote(n)));
        }
        s.push_str(&format!(",\"app\":{}", quote(&self.app)));
        s.push_str(&format!(",\"pipeline\":{}", quote(&self.pipeline)));
        if let Some(st) = &self.strategy {
            s.push_str(&format!(",\"strategy\":{}", quote(st)));
        }
        s.push_str(&format!(",\"variant\":{}", quote(&self.variant)));
        s.push_str(&format!(",\"iterations\":{}", self.iterations));
        s.push_str(&format!(",\"population\":{}", self.population));
        s.push_str(&format!(",\"seed\":{}", self.seed));
        s.push_str(&format!(",\"large_scale\":{}", self.large_scale));
        if let Some(t) = self.threads {
            s.push_str(&format!(",\"threads\":{t}"));
        }
        if let Some(r) = self.fault_rate {
            s.push_str(&format!(",\"fault_rate\":{r:?}"));
        }
        if let Some(fs) = self.fault_seed {
            s.push_str(&format!(",\"fault_seed\":{fs}"));
        }
        if self.inject_panic {
            s.push_str(",\"inject_panic\":true");
        }
        if let Some(p) = &self.noise_profile {
            s.push_str(&format!(",\"noise_profile\":{}", quote(p)));
        }
        if let Some(ns) = self.noise_seed {
            s.push_str(&format!(",\"noise_seed\":{ns}"));
        }
        if self.racing {
            s.push_str(",\"racing\":true");
        }
        s.push('}');
        s
    }

    /// Resolve to a runnable campaign. Errs with a human-readable reason
    /// for anything this build cannot host.
    pub fn to_spec(&self) -> Result<(CampaignSpec, Option<StrategyKind>), String> {
        let app = tunio_workloads::all_apps()
            .into_iter()
            .find(|a| a.name == self.app)
            .ok_or_else(|| format!("unknown application `{}`", self.app))?;
        let kind = match self.pipeline.as_str() {
            "tunio" => PipelineKind::TunIo,
            "hstuner" => PipelineKind::HsTunerNoStop,
            "hstuner-heuristic" => PipelineKind::HsTunerHeuristic,
            "impact-first" => PipelineKind::ImpactFirstOnly,
            "rl-stop" => PipelineKind::RlStopOnly,
            other => return Err(format!("unknown pipeline `{other}`")),
        };
        let variant = parse_variant(&self.variant)?;
        let strategy = match &self.strategy {
            Some(s) => Some(
                StrategyKind::parse(s)
                    .ok_or_else(|| format!("unknown strategy `{s}` (want ga|random|lhs|bo)"))?,
            ),
            None => None,
        };
        if self.iterations == 0 || self.population == 0 {
            return Err("iterations and population must be >= 1".to_string());
        }
        Ok((
            CampaignSpec {
                app,
                variant,
                kind,
                max_iterations: self.iterations,
                population: self.population,
                seed: self.seed,
                large_scale: self.large_scale,
            },
            strategy,
        ))
    }

    /// The warm-cache namespace this campaign's evaluations belong to.
    /// Two campaigns share memo entries only when the simulator would
    /// produce identical results for identical keys: same app, variant,
    /// simulator seed, and scale. Pipeline and strategy deliberately do
    /// NOT participate — they change which keys get evaluated, not what
    /// a key evaluates to.
    pub fn fingerprint(&self) -> String {
        let mut fp = format!(
            "{}|{}|{}|{}",
            self.app, self.variant, self.seed, self.large_scale
        );
        // Interference changes every run's report, so noisy campaigns
        // must never share warm entries with quiet ones (or with noisy
        // campaigns under a different profile or seed).
        if let Some(p) = &self.noise_profile {
            fp.push_str(&format!(
                "|noise={p}:{}",
                self.noise_seed.unwrap_or(self.seed)
            ));
        }
        fp
    }
}

fn parse_variant(v: &str) -> Result<Variant, String> {
    if v == "full" {
        Ok(Variant::Full)
    } else if v == "kernel" {
        Ok(Variant::Kernel)
    } else if let Some(frac) = v.strip_prefix("reduced:") {
        let keep_fraction: f64 = frac.parse().map_err(|_| format!("bad fraction `{frac}`"))?;
        if !(0.0..=1.0).contains(&keep_fraction) || keep_fraction == 0.0 {
            return Err("reduced fraction must be in (0, 1]".to_string());
        }
        Ok(Variant::ReducedKernel { keep_fraction })
    } else {
        Err(format!("unknown variant `{v}`"))
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// Lifecycle of one submitted campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running it.
    Running,
    /// Finished; outcome JSON is durable next to its WAL.
    Done,
    /// The campaign errored or its evaluator panicked. Everyone else
    /// keeps running.
    Failed,
}

impl CampaignState {
    fn label(&self) -> &'static str {
        match self {
            CampaignState::Queued => "queued",
            CampaignState::Running => "running",
            CampaignState::Done => "done",
            CampaignState::Failed => "failed",
        }
    }
}

/// Daemon-side record of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignRecord {
    /// `{tenant}--{name}`.
    pub id: String,
    /// The submission.
    pub request: CampaignRequest,
    /// Where it is in its lifecycle.
    pub state: CampaignState,
    /// Failure reason, when `Failed`.
    pub error: Option<String>,
    /// Whether this run continued an existing WAL (crash recovery).
    pub resumed: bool,
    /// Engine counters of the finished run. `sim_wall_s == 0.0` means
    /// every evaluation came from the tenant's warm cache or the WAL.
    pub counters: Option<EvalCounters>,
    /// Best tuned performance (B/s), when finished.
    pub best_perf: Option<f64>,
    /// Completed generations (recovered records report the WAL count).
    pub generations: u32,
    /// The campaign's trace id: a stable hash of the campaign id, so the
    /// same campaign resumes under the same trace across daemon
    /// restarts. Minted at submission, returned in the 202 body, and
    /// the root of every span the campaign emits.
    pub trace_id: u64,
    /// Span id reserved for the `serve.campaign` root span (opened
    /// logically at submission, emitted by the worker at completion).
    root_span_id: u64,
    /// Submission wall-clock in trace time (`trace::now_us`); the root
    /// span and queue-wait segment start here.
    submitted_us: u64,
    /// Timeline JSON frozen at completion, served by
    /// `GET /campaigns/{id}/timeline` once the campaign settles.
    timeline_json: Option<String>,
}

/// Stable trace id for a campaign id (FNV-1a 64): resubmitting or
/// resuming the same campaign keeps the same trace identity.
fn trace_id_for(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // The timeline store treats 0 as the synthetic window node.
    h.max(1)
}

impl CampaignRecord {
    fn fresh(id: &str, request: CampaignRequest) -> CampaignRecord {
        let trace_id = trace_id_for(id);
        let submitted_us = trace::now_us();
        trace::timeline::register(trace_id, submitted_us);
        CampaignRecord {
            id: id.to_string(),
            request,
            state: CampaignState::Queued,
            error: None,
            resumed: false,
            counters: None,
            best_perf: None,
            generations: 0,
            trace_id,
            root_span_id: trace::alloc_span_id(),
            submitted_us,
            timeline_json: None,
        }
    }

    /// Deterministic status JSON (the `GET /campaigns/{id}` body).
    pub fn status_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"id\":{}", quote(&self.id)));
        s.push_str(&format!(",\"trace_id\":\"{:016x}\"", self.trace_id));
        s.push_str(&format!(",\"tenant\":{}", quote(&self.request.tenant)));
        s.push_str(&format!(",\"state\":{}", quote(self.state.label())));
        s.push_str(&format!(",\"resumed\":{}", self.resumed));
        s.push_str(&format!(",\"generations\":{}", self.generations));
        match &self.error {
            Some(e) => s.push_str(&format!(",\"error\":{}", quote(e))),
            None => s.push_str(",\"error\":null"),
        }
        match self.best_perf {
            Some(p) => s.push_str(&format!(",\"best_perf\":{p:?}")),
            None => s.push_str(",\"best_perf\":null"),
        }
        match &self.counters {
            Some(c) => s.push_str(&format!(
                ",\"counters\":{{\"evaluations\":{},\"cache_hits\":{},\"sim_wall_s\":{:?}}}",
                c.evaluations, c.cache_hits, c.sim_wall_s
            )),
            None => s.push_str(",\"counters\":null"),
        }
        s.push('}');
        s
    }
}

/// Per-tenant warm cache: tenant → campaign fingerprint → key → entry.
type WarmCache = HashMap<String, HashMap<String, HashMap<Vec<usize>, CacheEntry>>>;

struct Shared {
    config: ServeConfig,
    records: Mutex<BTreeMap<String, CampaignRecord>>,
    queue: Mutex<VecDeque<String>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    seq: AtomicU64,
    warm: Mutex<WarmCache>,
}

impl Shared {
    fn wal_path(&self, id: &str) -> PathBuf {
        self.config.wal_dir.join(format!("{id}.jsonl"))
    }

    fn outcome_path(&self, id: &str) -> PathBuf {
        self.config.wal_dir.join(format!("{id}.outcome.json"))
    }

    fn meta_path(&self, id: &str) -> PathBuf {
        self.config.wal_dir.join(format!("{id}.meta.json"))
    }

    fn log(&self, line: &str) {
        if !self.config.quiet {
            eprintln!("tunio-serve: {line}");
        }
    }
}

/// Durable write: temp file in the same directory, then rename.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

/// Admission outcome: HTTP status + JSON body.
type Reply = (u16, String);

fn submit(shared: &Arc<Shared>, req: CampaignRequest) -> Reply {
    if shared.draining.load(Ordering::SeqCst) {
        return (503, "{\"error\":\"draining\"}".to_string());
    }
    let tenant = req.tenant.clone();
    let name = match &req.name {
        Some(n) => n.clone(),
        None => format!("c{:04}", shared.seq.fetch_add(1, Ordering::SeqCst)),
    };
    let id = format!("{tenant}--{name}");
    {
        let mut records = lock(&shared.records);
        if records.contains_key(&id) {
            return (
                409,
                format!("{{\"error\":\"campaign {} already exists\"}}", quote(&id)),
            );
        }
        let active = records
            .values()
            .filter(|r| {
                r.request.tenant == tenant
                    && matches!(r.state, CampaignState::Queued | CampaignState::Running)
            })
            .count();
        if active >= shared.config.max_active_per_tenant {
            trace::labeled_counter("tunio.serve.rejected_quota", &[("tenant", &tenant)]).inc(1);
            return (
                429,
                format!(
                    "{{\"error\":\"tenant {} already has {active} active campaigns (limit {})\"}}",
                    quote(&tenant),
                    shared.config.max_active_per_tenant
                ),
            );
        }
        let queued = lock(&shared.queue).len();
        if queued >= shared.config.max_queue {
            return (
                503,
                format!(
                    "{{\"error\":\"queue full ({queued}/{})\"}}",
                    shared.config.max_queue
                ),
            );
        }
        // The meta sidecar lets a restarted daemon re-enqueue campaigns
        // that were accepted but never started a WAL before the crash.
        if let Err(e) = write_atomic(&shared.meta_path(&id), &req.to_json()) {
            return (
                500,
                format!(
                    "{{\"error\":\"cannot persist request: {}\"}}",
                    quote(&e.to_string())
                ),
            );
        }
        records.insert(id.clone(), CampaignRecord::fresh(&id, req));
        lock(&shared.queue).push_back(id.clone());
    }
    shared.queue_cv.notify_one();
    trace::labeled_counter("tunio.serve.submitted", &[("tenant", &tenant)]).inc(1);
    (
        202,
        format!(
            "{{\"id\":{},\"trace_id\":\"{:016x}\",\"state\":\"queued\"}}",
            quote(&id),
            trace_id_for(&id)
        ),
    )
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let next = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(id) = q.pop_front() {
                    break Some(id);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        };
        match next {
            Some(id) => execute(shared, &id),
            None => break,
        }
    }
}

fn execute(shared: &Arc<Shared>, id: &str) {
    let wal = shared.wal_path(id);
    let resumed = wal.exists();
    let picked = {
        let mut records = lock(&shared.records);
        records.get_mut(id).map(|record| {
            // `resumed` must become visible atomically with `Running`:
            // the events endpoint derives its line sequence from both,
            // and setting them in two steps would let a tailing client
            // see a "started" line whose position later shifts when the
            // "resumed" line lands in front of it (skipped/repeated
            // lines under `from=N` pagination).
            record.state = CampaignState::Running;
            if resumed {
                record.resumed = true;
            }
            (
                record.request.clone(),
                record.trace_id,
                record.root_span_id,
                record.submitted_us,
            )
        })
    };
    let Some((request, trace_id, root_span_id, submitted_us)) = picked else {
        return;
    };
    if resumed {
        trace::labeled_counter("tunio.serve.resumed", &[("tenant", &request.tenant)]).inc(1);
    }
    // Queue-wait span: submission → worker pickup, hanging directly off
    // the campaign's root span (which is emitted at completion).
    let picked_up_us = trace::now_us();
    trace::emit_span_at(
        "serve.queue_wait",
        trace_id,
        trace::alloc_span_id(),
        Some(root_span_id),
        submitted_us,
        picked_up_us,
        vec![("id", id.into())],
    );
    {
        // Everything the campaign emits parents under the serve root.
        let _ctx = trace::with_context(Some(trace::SpanContext {
            trace_id,
            span_id: root_span_id,
        }));
        run_admitted(shared, id, &request, &wal);
    }
    // Close the root span (freezing the trace's overhead accumulator),
    // freeze the timeline for the status endpoint, and release the live
    // store entry.
    let end_us = trace::now_us();
    let state = lock(&shared.records)
        .get(id)
        .map(|r| r.state.label())
        .unwrap_or("unknown");
    trace::emit_span_at(
        "serve.campaign",
        trace_id,
        root_span_id,
        None,
        submitted_us,
        end_us,
        vec![("id", id.into()), ("state", state.into())],
    );
    if let Some(t) = trace::timeline::snapshot(trace_id, end_us) {
        let mut records = lock(&shared.records);
        if let Some(record) = records.get_mut(id) {
            record.timeline_json = Some(t.to_json());
        }
    }
    trace::timeline::forget(trace_id);
}

fn run_admitted(shared: &Arc<Shared>, id: &str, request: &CampaignRequest, wal: &Path) {
    let tenant = request.tenant.clone();
    let (spec, strategy) = match request.to_spec() {
        Ok(parts) => parts,
        Err(e) => {
            finish_failed(shared, id, &tenant, &e);
            return;
        }
    };
    // Warm-start from the tenant's own namespace only. Entries from the
    // WAL win (preloaded first inside the campaign), so a resume is
    // bitwise-faithful even when the warm cache has newer data.
    let preload: Vec<CacheEntry> = {
        let warm = lock(&shared.warm);
        warm.get(&tenant)
            .and_then(|per_fp| per_fp.get(&request.fingerprint()))
            .map(|entries| entries.values().cloned().collect())
            .unwrap_or_default()
    };
    let warm_count = preload.len();
    let opts = CampaignOptions {
        checkpoint: Some(wal.to_path_buf()),
        resume: true,
        fault_plan: request
            .fault_rate
            .map(|rate| FaultPlan::chaos(request.fault_seed.unwrap_or(request.seed), rate)),
        policy: None,
        abort_after: None,
        threads: request.threads,
        warm_start: None,
        preload,
        noise_profile: request
            .noise_profile
            .as_deref()
            .and_then(NoiseProfile::parse),
        noise_seed: request.noise_seed,
        racing: request.racing.then(RacingConfig::default),
    };
    // The panic boundary. An evaluator panic (or the inject_panic drill)
    // unwinds to here, fails this one campaign, and the worker moves on.
    let result = catch_unwind(AssertUnwindSafe(|| {
        if request.inject_panic {
            panic!("injected panic drill (inject_panic=true)");
        }
        match strategy {
            Some(s) => run_strategy_campaign_opts(&spec, s, &opts),
            None => run_campaign_opts(&spec, &opts),
        }
    }));
    match result {
        Ok(Ok(outcome)) => {
            let json = outcome_json(&outcome);
            if let Err(e) = write_atomic(&shared.outcome_path(id), &json) {
                finish_failed(shared, id, &tenant, &format!("cannot persist outcome: {e}"));
                return;
            }
            harvest_wal(shared, &tenant, &request.fingerprint(), wal);
            {
                let mut records = lock(&shared.records);
                if let Some(record) = records.get_mut(id) {
                    record.state = CampaignState::Done;
                    record.counters = Some(outcome.counters);
                    record.best_perf = Some(outcome.trace.best_perf);
                    record.generations = outcome.trace.records.len() as u32;
                }
            }
            trace::labeled_counter("tunio.serve.completed", &[("tenant", &tenant)]).inc(1);
            if warm_count > 0 && outcome.counters.sim_wall_s == 0.0 {
                trace::labeled_counter("tunio.serve.fully_warm_runs", &[("tenant", &tenant)])
                    .inc(1);
            }
            shared.log(&format!(
                "campaign {id} done ({} generations, {} warm entries preloaded)",
                outcome.trace.records.len(),
                warm_count
            ));
        }
        Ok(Err(e)) => finish_failed(shared, id, &tenant, &e.to_string()),
        Err(payload) => {
            trace::counter("tunio.serve.worker_panics").inc(1);
            let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
                s
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s
            } else {
                "non-string panic payload"
            };
            finish_failed(shared, id, &tenant, &format!("evaluator panicked: {msg}"));
        }
    }
}

fn finish_failed(shared: &Arc<Shared>, id: &str, tenant: &str, why: &str) {
    {
        let mut records = lock(&shared.records);
        if let Some(record) = records.get_mut(id) {
            record.state = CampaignState::Failed;
            record.error = Some(why.to_string());
        }
    }
    trace::labeled_counter("tunio.serve.failed", &[("tenant", tenant)]).inc(1);
    shared.log(&format!("campaign {id} failed: {why}"));
}

/// Fold a finished campaign's WAL cache entries into its tenant's warm
/// cache so the tenant's next identical campaign replays them instead of
/// touching the simulator. First write wins on key collisions — entries
/// for one fingerprint are deterministic, so collisions are identical.
fn harvest_wal(shared: &Arc<Shared>, tenant: &str, fingerprint: &str, wal: &Path) {
    let Ok((_, generations)) = load(wal) else {
        return;
    };
    let mut warm = lock(&shared.warm);
    let entries = warm
        .entry(tenant.to_string())
        .or_default()
        .entry(fingerprint.to_string())
        .or_default();
    let mut added = 0u64;
    for generation in generations {
        for entry in generation.entries {
            if !entries.contains_key(&entry.key) {
                entries.insert(entry.key.clone(), entry);
                added += 1;
            }
        }
    }
    if added > 0 {
        trace::labeled_counter("tunio.serve.warm_entries", &[("tenant", tenant)]).inc(added);
    }
}

// ---------------------------------------------------------------------------
// Startup recovery
// ---------------------------------------------------------------------------

fn recover(shared: &Arc<Shared>) -> std::io::Result<()> {
    let scan = scan_dir(&shared.config.wal_dir, |h: &CheckpointHeader| {
        spec_from_header(h).map(|_| ())
    })?;
    for q in scan.quarantined {
        // The trace file may live inside the WAL directory; it is ours,
        // not an alien campaign WAL — never quarantine it.
        if shared.config.trace_path.as_deref() == Some(q.path.as_path()) {
            continue;
        }
        let target = q.path.with_extension("jsonl.quarantined");
        let _ = std::fs::rename(&q.path, &target);
        trace::counter("tunio.serve.quarantined_wals").inc(1);
        shared.log(&format!(
            "quarantined {} -> {}: {}",
            q.path.display(),
            target.display(),
            q.reason
        ));
    }
    let mut to_queue: Vec<String> = Vec::new();
    for wal in scan.resumable {
        let Some(id) = wal
            .path
            .file_stem()
            .and_then(|s| s.to_str())
            .map(String::from)
        else {
            continue;
        };
        let request = match recover_request(shared, &id, &wal.header) {
            Ok(r) => r,
            Err(why) => {
                shared.log(&format!("cannot reconstruct request for {id}: {why}"));
                continue;
            }
        };
        let tenant = request.tenant.clone();
        let fingerprint = request.fingerprint();
        let mut record = CampaignRecord::fresh(&id, request);
        record.generations = wal.generations as u32;
        if shared.outcome_path(&id).exists() {
            // Finished before the previous shutdown: the outcome file is
            // durable, so surface it as done and recycle its entries.
            record.state = CampaignState::Done;
            if let Ok((_, generations)) = load(&wal.path) {
                if let Some(last) = generations.last() {
                    record.best_perf = Some(last.record.best_perf);
                }
            }
            harvest_wal(shared, &tenant, &fingerprint, &wal.path);
            shared.log(&format!("recovered finished campaign {id}"));
        } else {
            record.resumed = true;
            to_queue.push(id.clone());
            shared.log(&format!(
                "resuming campaign {id} ({} generations in WAL)",
                wal.generations
            ));
        }
        lock(&shared.records).insert(id, record);
    }
    // Accepted-but-never-started campaigns: a meta sidecar with no WAL.
    let mut meta_ids: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&shared.config.wal_dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|s| s.to_str()) else {
            continue;
        };
        if let Some(id) = name.strip_suffix(".meta.json") {
            meta_ids.push(id.to_string());
        }
    }
    meta_ids.sort();
    for id in meta_ids {
        if lock(&shared.records).contains_key(&id) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(shared.meta_path(&id)) else {
            continue;
        };
        let Ok(value) = serde_json::from_str::<serde_json::Value>(&text) else {
            shared.log(&format!("unreadable meta sidecar for {id}, skipping"));
            continue;
        };
        match CampaignRequest::from_json(&value) {
            Ok(request) => {
                lock(&shared.records).insert(id.clone(), CampaignRecord::fresh(&id, request));
                to_queue.push(id.clone());
                shared.log(&format!("re-enqueued never-started campaign {id}"));
            }
            Err(why) => shared.log(&format!("stale meta sidecar for {id}: {why}")),
        }
    }
    for id in to_queue {
        lock(&shared.queue).push_back(id);
        shared.queue_cv.notify_one();
    }
    Ok(())
}

/// Rebuild a submission for a recovered WAL: prefer its meta sidecar,
/// else invert the WAL header (tenant comes from the id's `{tenant}--`
/// prefix, or `recovered` for foreign ids).
fn recover_request(
    shared: &Arc<Shared>,
    id: &str,
    header: &CheckpointHeader,
) -> Result<CampaignRequest, String> {
    if let Ok(text) = std::fs::read_to_string(shared.meta_path(id)) {
        if let Ok(value) = serde_json::from_str::<serde_json::Value>(&text) {
            if let Ok(request) = CampaignRequest::from_json(&value) {
                return Ok(request);
            }
        }
    }
    let (spec, strategy) = spec_from_header(header)?;
    let tenant = id
        .split_once("--")
        .map(|(t, _)| t.to_string())
        .filter(|t| ident_ok(t))
        .unwrap_or_else(|| "recovered".to_string());
    Ok(CampaignRequest {
        tenant,
        name: None,
        app: spec.app.name.clone(),
        pipeline: match spec.kind {
            PipelineKind::TunIo => "tunio",
            PipelineKind::HsTunerNoStop => "hstuner",
            PipelineKind::HsTunerHeuristic => "hstuner-heuristic",
            PipelineKind::ImpactFirstOnly => "impact-first",
            PipelineKind::RlStopOnly => "rl-stop",
        }
        .to_string(),
        strategy: strategy.map(|s| s.label().to_string()),
        variant: match spec.variant {
            Variant::Full => "full".to_string(),
            Variant::Kernel => "kernel".to_string(),
            Variant::ReducedKernel { keep_fraction } => format!("reduced:{keep_fraction}"),
        },
        iterations: spec.max_iterations,
        population: spec.population,
        seed: spec.seed,
        large_scale: spec.large_scale,
        threads: None,
        fault_rate: None,
        fault_seed: None,
        inject_panic: false,
        noise_profile: None,
        noise_seed: None,
        racing: false,
    })
}

// ---------------------------------------------------------------------------
// HTTP surface
// ---------------------------------------------------------------------------

fn handle_request(shared: &Arc<Shared>, req: &Request) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".to_string()),
        ("GET", "/metrics") => (200, trace::render_global()),
        ("POST", "/drain") => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            (200, "{\"state\":\"draining\"}".to_string())
        }
        ("POST", "/campaigns") => {
            let body = String::from_utf8_lossy(&req.body);
            let value: serde_json::Value = match serde_json::from_str(&body) {
                Ok(v) => v,
                Err(e) => {
                    return (
                        400,
                        format!(
                            "{{\"error\":\"bad JSON: {}\"}}",
                            quote_inner(&e.to_string())
                        ),
                    )
                }
            };
            match CampaignRequest::from_json(&value) {
                Ok(request) => submit(shared, request),
                Err(why) => (400, format!("{{\"error\":{}}}", quote(&why))),
            }
        }
        ("GET", "/campaigns") => {
            let records = lock(&shared.records);
            let filter = req.query_get("tenant");
            let items: Vec<String> = records
                .values()
                .filter(|r| filter.is_none_or(|t| r.request.tenant == t))
                .map(|r| r.status_json())
                .collect();
            (200, format!("[{}]", items.join(",")))
        }
        ("GET", path) if path.starts_with("/campaigns/") => {
            let rest = &path["/campaigns/".len()..];
            if let Some(id) = rest.strip_suffix("/events") {
                let from: usize = req
                    .query_get("from")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                events_reply(shared, id, from)
            } else if let Some(id) = rest.strip_suffix("/timeline") {
                timeline_reply(shared, id)
            } else {
                let records = lock(&shared.records);
                match records.get(rest) {
                    Some(r) => (200, r.status_json()),
                    None => (404, "{\"error\":\"no such campaign\"}".to_string()),
                }
            }
        }
        _ => (404, "{\"error\":\"no such endpoint\"}".to_string()),
    }
}

fn quote_inner(s: &str) -> String {
    let q = quote(s);
    q[1..q.len() - 1].to_string()
}

/// Build the event stream for one campaign: lifecycle events framed
/// around per-generation progress read straight from the WAL. Returned
/// as JSONL; `from=N` skips the first N lines so clients can tail.
fn events_reply(shared: &Arc<Shared>, id: &str, from: usize) -> Reply {
    let record = {
        let records = lock(&shared.records);
        match records.get(id) {
            Some(r) => r.clone(),
            None => return (404, "{\"error\":\"no such campaign\"}".to_string()),
        }
    };
    let mut lines: Vec<String> = Vec::new();
    lines.push(format!(
        "{{\"event\":\"submitted\",\"id\":{},\"tenant\":{}}}",
        quote(id),
        quote(&record.request.tenant)
    ));
    if record.resumed {
        lines.push("{\"event\":\"resumed\"}".to_string());
    }
    if record.state != CampaignState::Queued {
        lines.push("{\"event\":\"started\"}".to_string());
    }
    if let Ok((_, generations)) = load(&shared.wal_path(id)) {
        for g in &generations {
            lines.push(format!(
                "{{\"event\":\"generation\",\"iteration\":{},\"best_perf\":{:?},\"cost_s\":{:?}}}",
                g.record.iteration, g.record.best_perf, g.record.cost_s
            ));
        }
    }
    match record.state {
        CampaignState::Done => lines.push(format!(
            "{{\"event\":\"done\",\"best_perf\":{:?}}}",
            record.best_perf.unwrap_or(f64::NAN)
        )),
        CampaignState::Failed => lines.push(format!(
            "{{\"event\":\"failed\",\"error\":{}}}",
            quote(record.error.as_deref().unwrap_or("unknown"))
        )),
        _ => {}
    }
    let body: String = lines.into_iter().skip(from).map(|l| l + "\n").collect();
    (200, body)
}

/// The wall-clock breakdown for one campaign: the frozen timeline once
/// it settled, a live reconstruction from the span store while it is
/// still queued or running.
fn timeline_reply(shared: &Arc<Shared>, id: &str) -> Reply {
    let (trace_id, cached) = {
        let records = lock(&shared.records);
        match records.get(id) {
            Some(r) => (r.trace_id, r.timeline_json.clone()),
            None => return (404, "{\"error\":\"no such campaign\"}".to_string()),
        }
    };
    if let Some(json) = cached {
        return (200, json);
    }
    match trace::timeline::snapshot(trace_id, trace::now_us()) {
        Some(t) => (200, t.to_json()),
        None => (
            404,
            "{\"error\":\"no timeline for this campaign\"}".to_string(),
        ),
    }
}

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let (reply, is_metrics) = match read_request(&mut stream) {
        Ok(req) => {
            let is_metrics = req.method == "GET" && req.path == "/metrics";
            (handle_request(shared, &req), is_metrics)
        }
        Err(e) => (
            (400, format!("{{\"error\":{}}}", quote(&e.to_string()))),
            false,
        ),
    };
    let content_type = if is_metrics {
        // The Prometheus text exposition format's required content type.
        "text/plain; version=0.0.4; charset=utf-8"
    } else if reply.1.starts_with('{') || reply.1.starts_with('[') {
        "application/json"
    } else {
        "text/plain; charset=utf-8"
    };
    let _ = write_response(&mut stream, reply.0, content_type, &reply.1);
}

// ---------------------------------------------------------------------------
// Daemon lifecycle
// ---------------------------------------------------------------------------

/// A running `tunio-serve` instance: HTTP listener + campaign workers.
///
/// Shut down with [`Daemon::drain_and_join`] (graceful: queued work
/// finishes, new submissions get 503). Dropping only stops the listener;
/// an abrupt kill is always safe — that is what the WAL recovery path
/// is for.
pub struct Daemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop_listener: Arc<AtomicBool>,
    listener_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    /// Whether this daemon installed the global trace sink (and so must
    /// flush and clear it when it drains).
    owns_sink: bool,
}

impl Daemon {
    /// Boot: create the WAL directory, recover every campaign found in
    /// it, bind the listener, start the worker pool.
    pub fn start(config: ServeConfig) -> std::io::Result<Daemon> {
        std::fs::create_dir_all(&config.wal_dir)?;
        let owns_sink = if let Some(path) = &config.trace_path {
            trace::set_sink(Arc::new(trace::JsonlSink::create(path)?));
            true
        } else {
            false
        };
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            config,
            records: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            warm: Mutex::new(HashMap::new()),
        });
        recover(&shared)?;
        let stop_listener = Arc::new(AtomicBool::new(false));
        let listener_handle = {
            let shared = shared.clone();
            let stop = stop_listener.clone();
            std::thread::Builder::new()
                .name("tunio-serve-http".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let shared = shared.clone();
                                let _ = std::thread::Builder::new()
                                    .name("tunio-serve-conn".to_string())
                                    .spawn(move || handle_conn(&shared, stream));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                })?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("tunio-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        shared.log(&format!(
            "listening on {addr} ({} workers, WAL dir {})",
            workers,
            shared.config.wal_dir.display()
        ));
        Ok(Daemon {
            addr,
            shared,
            stop_listener,
            listener_handle: Some(listener_handle),
            worker_handles,
            owns_sink,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start a graceful drain: refuse new submissions, let queued and
    /// running campaigns finish.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether a drain has been requested (via [`Daemon::drain`] or
    /// `POST /drain`).
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drain and block until every worker has exited, then stop the
    /// listener. Campaigns still queued when the drain starts DO run.
    pub fn drain_and_join(&mut self) {
        self.drain();
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        self.stop_listener.store(true, Ordering::SeqCst);
        if let Some(handle) = self.listener_handle.take() {
            let _ = handle.join();
        }
        if self.owns_sink {
            // Flush the JSONL trace so offline reconstruction sees every
            // span the drained campaigns emitted.
            trace::clear_sink();
            self.owns_sink = false;
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Only the listener: workers may be mid-campaign, and killing a
        // campaign abruptly is exactly what the WAL makes safe.
        self.stop_listener.store(true, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(handle) = self.listener_handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(json: &str) -> serde_json::Value {
        serde_json::from_str(json).expect("valid json")
    }

    #[test]
    fn request_parses_with_defaults() {
        let req =
            CampaignRequest::from_json(&value("{\"tenant\":\"alice\",\"app\":\"hacc\"}")).unwrap();
        assert_eq!(req.pipeline, "tunio");
        assert_eq!(req.variant, "kernel");
        assert_eq!(req.iterations, 10);
        assert_eq!(req.population, 6);
        assert_eq!(req.seed, 42);
        assert!(!req.inject_panic);
        let (spec, strategy) = req.to_spec().unwrap();
        assert_eq!(spec.kind, PipelineKind::TunIo);
        assert!(strategy.is_none());
    }

    #[test]
    fn request_rejects_what_the_build_cannot_host() {
        for (body, needle) in [
            ("{\"app\":\"hacc\"}", "tenant"),
            ("{\"tenant\":\"a\",\"app\":\"nope\"}", "unknown application"),
            (
                "{\"tenant\":\"a\",\"app\":\"hacc\",\"pipeline\":\"x\"}",
                "unknown pipeline",
            ),
            (
                "{\"tenant\":\"a\",\"app\":\"hacc\",\"strategy\":\"x\"}",
                "unknown strategy",
            ),
            (
                "{\"tenant\":\"a\",\"app\":\"hacc\",\"variant\":\"x\"}",
                "unknown variant",
            ),
            (
                "{\"tenant\":\"bad tenant!\",\"app\":\"hacc\"}",
                "bad tenant",
            ),
        ] {
            let err = CampaignRequest::from_json(&value(body)).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn request_meta_json_round_trips() {
        let req = CampaignRequest::from_json(&value(
            "{\"tenant\":\"t1\",\"name\":\"n\",\"app\":\"vpic\",\"pipeline\":\"hstuner\",\
             \"strategy\":\"bo\",\"variant\":\"reduced:0.25\",\"iterations\":7,\
             \"population\":5,\"seed\":9,\"large_scale\":true,\"threads\":3,\
             \"fault_rate\":0.1,\"fault_seed\":4,\"inject_panic\":true}",
        ))
        .unwrap();
        let reparsed = CampaignRequest::from_json(&value(&req.to_json())).unwrap();
        assert_eq!(format!("{reparsed:?}"), format!("{req:?}"));
    }

    #[test]
    fn noisy_request_round_trips_and_namespaces_the_warm_cache() {
        let req = CampaignRequest::from_json(&value(
            "{\"tenant\":\"t1\",\"app\":\"hacc\",\"strategy\":\"random\",\
             \"noise_profile\":\"storm\",\"noise_seed\":7,\"racing\":true}",
        ))
        .unwrap();
        assert_eq!(req.noise_profile.as_deref(), Some("storm"));
        assert_eq!(req.noise_seed, Some(7));
        assert!(req.racing);
        let reparsed = CampaignRequest::from_json(&value(&req.to_json())).unwrap();
        assert_eq!(format!("{reparsed:?}"), format!("{req:?}"));

        // Interference changes every run report, so a noisy submission
        // must never share warm-cache entries with a quiet one (or with
        // a different noise seed).
        let quiet =
            CampaignRequest::from_json(&value("{\"tenant\":\"t1\",\"app\":\"hacc\"}")).unwrap();
        assert_ne!(req.fingerprint(), quiet.fingerprint());
        let mut reseeded = req.clone();
        reseeded.noise_seed = Some(8);
        assert_ne!(req.fingerprint(), reseeded.fingerprint());
    }

    #[test]
    fn racing_requires_a_strategy_backend() {
        let err = CampaignRequest::from_json(&value(
            "{\"tenant\":\"t\",\"app\":\"hacc\",\"racing\":true}",
        ))
        .unwrap_err();
        assert!(err.contains("strategy"), "{err}");
        let err = CampaignRequest::from_json(&value(
            "{\"tenant\":\"t\",\"app\":\"hacc\",\"noise_profile\":\"gale\"}",
        ))
        .unwrap_err();
        assert!(err.contains("noise"), "{err}");
    }

    #[test]
    fn fingerprint_ignores_pipeline_and_strategy() {
        let a = CampaignRequest::from_json(&value("{\"tenant\":\"t\",\"app\":\"hacc\"}")).unwrap();
        let mut b = a.clone();
        b.pipeline = "hstuner".to_string();
        b.strategy = Some("random".to_string());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.seed = 43;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
