//! # tunio-serve — the multi-tenant tuning daemon
//!
//! A long-running service that accepts tuning-campaign submissions over
//! a small JSON/HTTP API and runs them on a shared worker pool:
//!
//! * `POST /campaigns` — submit (202 with the campaign id; 429 over the
//!   tenant quota; 503 while draining or when the queue is full).
//! * `GET /campaigns[?tenant=t]` — list statuses.
//! * `GET /campaigns/{id}` — one status.
//! * `GET /campaigns/{id}/events?from=N` — progress as JSONL events
//!   (lifecycle + one `generation` event per completed WAL generation).
//! * `GET /campaigns/{id}/timeline` — exclusive wall-clock segments and
//!   the critical path of the campaign's span DAG: live while running,
//!   frozen at completion.
//! * `GET /healthz`, `GET /metrics` — liveness and Prometheus text.
//! * `POST /drain` — graceful shutdown: finish everything, accept
//!   nothing new.
//!
//! The daemon exists because the rest of the workspace made it safe: a
//! campaign is a fallible unit of work
//! ([`tunio::pipeline::CampaignError`]), evaluator panics are isolated
//! to the campaign that caused them, and every campaign WALs its
//! progress so a killed daemon resumes all in-flight work at boot —
//! bitwise-identically. See [`daemon`] for the tenancy model.

#![warn(missing_docs)]

pub mod daemon;
pub mod http;

pub use daemon::{CampaignRecord, CampaignRequest, CampaignState, Daemon, ServeConfig};
