//! `tunio-serve` — run the multi-tenant tuning daemon.
//!
//! ```text
//! tunio-serve --addr 127.0.0.1:8080 --wal-dir /var/lib/tunio/wal \
//!             [--workers 2] [--max-active-per-tenant 4] [--max-queue 64] \
//!             [--trace trace.jsonl] [--quiet]
//! ```
//!
//! `--trace FILE` writes a causal JSON-lines trace of every campaign;
//! feed it to `tunio-report --critical-path` for offline wall-clock
//! attribution, or hit `GET /campaigns/{id}/timeline` for the same
//! breakdown live.
//!
//! SIGTERM and SIGINT start a graceful drain: running and queued
//! campaigns finish, new submissions get 503, and the process exits 0
//! once the pool is idle. `kill -9` is also fine — every campaign's WAL
//! makes the next boot resume it exactly where it stopped.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use tunio_serve::{Daemon, ServeConfig};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn handle(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = handle as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tunio-serve [--addr HOST:PORT] [--wal-dir DIR] [--workers N]\n\
         \x20      [--max-active-per-tenant N] [--max-queue N] [--trace FILE] [--quiet]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig {
        addr: "127.0.0.1:7070".to_string(),
        ..ServeConfig::default()
    };
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        let result: Result<(), String> = (|| {
            match argv[i].as_str() {
                "--addr" => config.addr = value(&argv, &mut i, "--addr")?,
                "--wal-dir" => config.wal_dir = PathBuf::from(value(&argv, &mut i, "--wal-dir")?),
                "--workers" => {
                    config.workers = value(&argv, &mut i, "--workers")?
                        .parse()
                        .map_err(|e| format!("bad workers: {e}"))?;
                    if config.workers == 0 {
                        return Err("workers must be >= 1".to_string());
                    }
                }
                "--max-active-per-tenant" => {
                    config.max_active_per_tenant = value(&argv, &mut i, "--max-active-per-tenant")?
                        .parse()
                        .map_err(|e| format!("bad max-active-per-tenant: {e}"))?;
                }
                "--max-queue" => {
                    config.max_queue = value(&argv, &mut i, "--max-queue")?
                        .parse()
                        .map_err(|e| format!("bad max-queue: {e}"))?;
                }
                "--trace" => {
                    config.trace_path = Some(PathBuf::from(value(&argv, &mut i, "--trace")?))
                }
                "--quiet" => config.quiet = true,
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            return usage();
        }
        i += 1;
    }

    install_signal_handlers();
    let mut daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot start daemon: {e}");
            return ExitCode::from(1);
        }
    };
    println!("tunio-serve listening on {}", daemon.addr());
    loop {
        std::thread::sleep(Duration::from_millis(50));
        if SHUTDOWN.load(Ordering::SeqCst) || daemon.draining() {
            eprintln!("tunio-serve: draining (finishing in-flight campaigns)");
            daemon.drain_and_join();
            eprintln!("tunio-serve: drained, exiting");
            return ExitCode::SUCCESS;
        }
    }
}
