//! A hand-rolled HTTP/1.1 request/response layer over `std::net`.
//!
//! The daemon speaks just enough HTTP for `curl` and the load generator:
//! request line + headers + `Content-Length` bodies in, fixed-length
//! `Connection: close` responses out. No external dependency, same
//! trade-off as [`tunio_trace`]'s `MetricsServer` — the build environment
//! vendors every dependency, so a full HTTP stack is not on the table,
//! and the API surface (a handful of JSON endpoints) does not need one.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on request size (start line + headers + body). Campaign
/// submissions are a few hundred bytes; anything larger is abuse.
const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// A parsed request: method, path, query pairs, body bytes.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path with the query string stripped (e.g. `/campaigns/t--c0001`).
    pub path: String,
    /// Decoded `k=v` query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length`-delimited).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_get(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one request off the stream. Returns `Err` on malformed input,
/// timeouts (2s for slow-loris protection), or oversized requests.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut seen: Vec<u8> = Vec::new();
    let header_end = loop {
        if let Some(pos) = find_subslice(&seen, b"\r\n\r\n") {
            break pos;
        }
        if seen.len() > MAX_REQUEST_BYTES {
            return Err(bad("request headers too large"));
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        seen.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8_lossy(&seen[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let start = lines.next().unwrap_or("");
    let mut parts = start.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_REQUEST_BYTES {
        return Err(bad("request body too large"));
    }
    let mut body: Vec<u8> = seen[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        body,
    })
}

/// Write a fixed-length `Connection: close` response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 {} {}\r\n\
         Content-Type: {}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        status,
        reason(status),
        content_type,
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Canonical reason phrase for the handful of statuses the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn bad(why: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, why)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8]) -> std::io::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // Keep the write half open until the server has parsed.
            std::thread::sleep(Duration::from_millis(50));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = roundtrip(
            b"POST /campaigns?tenant=alice&x HTTP/1.1\r\n\
              Host: localhost\r\nContent-Length: 10\r\n\r\n{\"a\":true}"
                .as_slice(),
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaigns");
        assert_eq!(req.query_get("tenant"), Some("alice"));
        assert_eq!(req.query_get("x"), Some(""));
        assert_eq!(req.body, b"{\"a\":true}");
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_REQUEST_BYTES + 1
        );
        assert!(roundtrip(raw.as_bytes()).is_err());
    }

    #[test]
    fn get_without_body_parses() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }
}
