//! End-to-end tests for the daemon over real HTTP: multi-tenant
//! concurrency, per-tenant cache namespacing, quota enforcement, panic
//! isolation, restart recovery, and WAL quarantine.
//!
//! The trace metric registry is global to the test process, so metric
//! assertions check presence/deltas, never absolute values.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use tunio_serve::{Daemon, ServeConfig};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tunio-serve-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn config(wal_dir: &Path, workers: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        wal_dir: wal_dir.to_path_buf(),
        workers,
        max_active_per_tenant: 4,
        max_queue: 64,
        quiet: true,
        trace_path: None,
    }
}

fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn submit(addr: SocketAddr, body: &str) -> (u16, String) {
    http(addr, "POST", "/campaigns", Some(body))
}

/// Poll a campaign until it leaves queued/running (or the deadline hits).
/// Returns its final status JSON.
fn await_settled(addr: SocketAddr, id: &str) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http(addr, "GET", &format!("/campaigns/{id}"), None);
        assert_eq!(status, 200, "status for {id}: {body}");
        let v: serde_json::Value = serde_json::from_str(&body).expect("status json");
        let state = v.get("state").and_then(|s| s.as_str()).unwrap_or("");
        if state == "done" || state == "failed" {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "campaign {id} stuck in `{state}`"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn state_of(v: &serde_json::Value) -> &str {
    v.get("state").and_then(|s| s.as_str()).unwrap()
}

const SPEC: &str = "\"app\":\"hacc\",\"variant\":\"kernel\",\"iterations\":6,\
                    \"population\":4,\"seed\":42";

#[test]
fn concurrent_tenants_complete_with_namespaced_caches() {
    let dir = test_dir("tenants");
    let mut daemon = Daemon::start(config(&dir, 2)).expect("daemon boots");
    let addr = daemon.addr();

    // Four tenants submit the same campaign simultaneously.
    let tenants = ["t1", "t2", "t3", "t4"];
    let mut ids = Vec::new();
    for t in tenants {
        let (status, body) = submit(
            addr,
            &format!("{{\"tenant\":\"{t}\",\"name\":\"first\",{SPEC}}}"),
        );
        assert_eq!(status, 202, "{body}");
        ids.push(format!("{t}--first"));
    }
    for id in &ids {
        let v = await_settled(addr, id);
        assert_eq!(state_of(&v), "done", "{id}: {v:?}");
    }

    // Determinism across tenants: identical specs, byte-identical outcomes.
    let first = std::fs::read(dir.join("t1--first.outcome.json")).unwrap();
    for t in &tenants[1..] {
        let other = std::fs::read(dir.join(format!("{t}--first.outcome.json"))).unwrap();
        assert_eq!(first, other, "outcome diverged for {t}");
    }

    // A tenant's rerun of the same fingerprint is served fully from its
    // own warm cache: the simulator is never touched (sim_wall_s == 0).
    let (status, _) = submit(
        addr,
        &format!("{{\"tenant\":\"t1\",\"name\":\"again\",{SPEC}}}"),
    );
    assert_eq!(status, 202);
    let v = await_settled(addr, "t1--again");
    assert_eq!(state_of(&v), "done");
    let warm_wall = v
        .get("counters")
        .and_then(|c| c.get("sim_wall_s"))
        .and_then(|x| x.as_f64())
        .unwrap();
    assert_eq!(warm_wall, 0.0, "warm rerun touched the simulator: {v:?}");
    let rerun = std::fs::read(dir.join("t1--again.outcome.json")).unwrap();
    assert_eq!(first, rerun, "warm rerun forked the outcome");

    // A *new* tenant running the same spec gets no such warmth — its
    // namespace is empty, so it must pay for its own simulations.
    let (status, _) = submit(
        addr,
        &format!("{{\"tenant\":\"t5\",\"name\":\"cold\",{SPEC}}}"),
    );
    assert_eq!(status, 202);
    let v = await_settled(addr, "t5--cold");
    assert_eq!(state_of(&v), "done");
    let cold_wall = v
        .get("counters")
        .and_then(|c| c.get("sim_wall_s"))
        .and_then(|x| x.as_f64())
        .unwrap();
    assert!(
        cold_wall > 0.0,
        "tenant t5 was served from another tenant's cache: {v:?}"
    );

    // Progress events: lifecycle + one generation event per WAL line,
    // and `from=N` tails past what was already seen.
    let (status, events) = http(addr, "GET", "/campaigns/t1--first/events", None);
    assert_eq!(status, 200);
    let generations = events
        .lines()
        .filter(|l| l.contains("\"event\":\"generation\""))
        .count();
    assert!(generations >= 1, "no generation events: {events}");
    assert!(events.contains("\"event\":\"submitted\""));
    assert!(events.contains("\"event\":\"done\""));
    let (_, tail) = http(addr, "GET", "/campaigns/t1--first/events?from=2", None);
    assert_eq!(tail.lines().count(), events.lines().count() - 2);

    // Per-tenant labeled metrics are exposed on /metrics.
    let (_, metrics) = http(addr, "GET", "/metrics", None);
    assert!(
        metrics.contains("tunio_serve_submitted{tenant=\"t1\"}"),
        "{metrics}"
    );
    assert!(metrics.contains("tunio_serve_completed{tenant=\"t5\"}"));

    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenant_quota_returns_429_without_losing_admitted_work() {
    let dir = test_dir("quota");
    let mut cfg = config(&dir, 1);
    cfg.max_active_per_tenant = 2;
    let mut daemon = Daemon::start(cfg).expect("daemon boots");
    let addr = daemon.addr();

    let (s1, _) = submit(addr, &format!("{{\"tenant\":\"q\",\"name\":\"a\",{SPEC}}}"));
    let (s2, _) = submit(addr, &format!("{{\"tenant\":\"q\",\"name\":\"b\",{SPEC}}}"));
    assert_eq!((s1, s2), (202, 202));
    let (s3, body) = submit(addr, &format!("{{\"tenant\":\"q\",\"name\":\"c\",{SPEC}}}"));
    assert_eq!(s3, 429, "{body}");
    assert!(body.contains("active campaigns"), "{body}");

    // Another tenant is not affected by q's quota.
    let (s4, _) = submit(addr, &format!("{{\"tenant\":\"r\",\"name\":\"a\",{SPEC}}}"));
    assert_eq!(s4, 202);

    // The admitted campaigns still finish; quota frees up afterwards.
    assert_eq!(state_of(&await_settled(addr, "q--a")), "done");
    assert_eq!(state_of(&await_settled(addr, "q--b")), "done");
    let (s5, _) = submit(addr, &format!("{{\"tenant\":\"q\",\"name\":\"c\",{SPEC}}}"));
    assert_eq!(s5, 202);
    assert_eq!(state_of(&await_settled(addr, "q--c")), "done");

    // Duplicate ids are refused.
    let (s6, _) = submit(addr, &format!("{{\"tenant\":\"q\",\"name\":\"c\",{SPEC}}}"));
    assert_eq!(s6, 409);

    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evaluator_panic_fails_one_campaign_and_spares_the_rest() {
    let dir = test_dir("panic");
    let mut daemon = Daemon::start(config(&dir, 2)).expect("daemon boots");
    let addr = daemon.addr();

    // Four tenants: one panicking evaluator drill, one chaos-faulted but
    // survivable, two plain. The acceptance bar: 3 complete, 1 failed,
    // the process never dies.
    let bodies = [
        format!("{{\"tenant\":\"p1\",\"name\":\"x\",{SPEC}}}"),
        format!("{{\"tenant\":\"p2\",\"name\":\"x\",{SPEC},\"inject_panic\":true}}"),
        format!("{{\"tenant\":\"p3\",\"name\":\"x\",{SPEC},\"fault_rate\":0.2}}"),
        format!("{{\"tenant\":\"p4\",\"name\":\"x\",{SPEC}}}"),
    ];
    for b in &bodies {
        let (status, body) = submit(addr, b);
        assert_eq!(status, 202, "{body}");
    }
    let p1 = await_settled(addr, "p1--x");
    let p2 = await_settled(addr, "p2--x");
    let p3 = await_settled(addr, "p3--x");
    let p4 = await_settled(addr, "p4--x");
    assert_eq!(state_of(&p1), "done");
    assert_eq!(state_of(&p2), "failed");
    assert!(
        p2.get("error")
            .and_then(|e| e.as_str())
            .unwrap()
            .contains("panicked"),
        "{p2:?}"
    );
    assert_eq!(state_of(&p3), "done");
    assert_eq!(state_of(&p4), "done");

    // The daemon is still healthy and still takes work after the panic.
    let (status, body) = http(addr, "GET", "/healthz", None);
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));
    let (status, _) = submit(
        addr,
        &format!("{{\"tenant\":\"p2\",\"name\":\"y\",{SPEC}}}"),
    );
    assert_eq!(status, 202);
    assert_eq!(state_of(&await_settled(addr, "p2--y")), "done");

    // The failure is visible in the event stream too.
    let (_, events) = http(addr, "GET", "/campaigns/p2--x/events", None);
    assert!(events.contains("\"event\":\"failed\""), "{events}");

    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_resumes_interrupted_campaigns_bitwise_identically() {
    let dir = test_dir("restart");
    let (reference, wal_lines) = {
        let mut daemon = Daemon::start(config(&dir, 1)).expect("daemon boots");
        let addr = daemon.addr();
        let (status, _) = submit(
            addr,
            &format!("{{\"tenant\":\"w\",\"name\":\"job\",{SPEC}}}"),
        );
        assert_eq!(status, 202);
        assert_eq!(state_of(&await_settled(addr, "w--job")), "done");
        daemon.drain_and_join();
        let outcome = std::fs::read(dir.join("w--job.outcome.json")).unwrap();
        let wal = std::fs::read_to_string(dir.join("w--job.jsonl")).unwrap();
        (outcome, wal.lines().map(String::from).collect::<Vec<_>>())
    };

    // Simulate a kill -9 mid-campaign: keep the header plus the first
    // two generations of the WAL and delete the outcome file.
    assert!(wal_lines.len() >= 4, "campaign too short for the drill");
    let truncated: String = wal_lines[..3].join("\n") + "\n";
    std::fs::write(dir.join("w--job.jsonl"), truncated).unwrap();
    std::fs::remove_file(dir.join("w--job.outcome.json")).unwrap();

    // A fresh daemon over the same WAL dir resumes it to completion
    // without being asked, and the outcome is byte-identical.
    let mut daemon = Daemon::start(config(&dir, 1)).expect("daemon reboots");
    let addr = daemon.addr();
    let v = await_settled(addr, "w--job");
    assert_eq!(state_of(&v), "done", "{v:?}");
    assert_eq!(
        v.get("resumed"),
        Some(&serde_json::Value::Bool(true)),
        "{v:?}"
    );
    let resumed = std::fs::read(dir.join("w--job.outcome.json")).unwrap();
    assert_eq!(reference, resumed, "resume forked the outcome");
    let (_, events) = http(addr, "GET", "/campaigns/w--job/events", None);
    assert!(events.contains("\"event\":\"resumed\""), "{events}");

    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn boot_quarantines_alien_wals_and_keeps_serving() {
    let dir = test_dir("quarantine");
    // A WAL this build cannot host (unknown strategy)...
    std::fs::write(
        dir.join("z--alien.jsonl"),
        "{\"version\":1,\"app\":\"hacc\",\"variant\":\"Kernel\",\
         \"kind\":\"TunIO [strategy=alien]\",\"max_iterations\":4,\
         \"population\":4,\"seed\":1,\"large_scale\":false}\n",
    )
    .unwrap();
    // ...and one that is not a checkpoint at all.
    std::fs::write(dir.join("z--noise.jsonl"), "not json at all\n").unwrap();

    let mut daemon = Daemon::start(config(&dir, 1)).expect("daemon boots despite bad WALs");
    let addr = daemon.addr();
    assert!(dir.join("z--alien.jsonl.quarantined").exists());
    assert!(dir.join("z--noise.jsonl.quarantined").exists());
    assert!(!dir.join("z--alien.jsonl").exists());

    // Quarantine is an event, not an outage: submissions still work.
    let (status, _) = submit(
        addr,
        &format!("{{\"tenant\":\"z\",\"name\":\"ok\",{SPEC}}}"),
    );
    assert_eq!(status, 202);
    assert_eq!(state_of(&await_settled(addr, "z--ok")), "done");
    let (_, metrics) = http(addr, "GET", "/metrics", None);
    assert!(
        metrics.contains("tunio_serve_quarantined_wals"),
        "{metrics}"
    );

    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Like [`http`] but returns the raw response (status line + headers +
/// body) so tests can assert on headers.
fn http_raw(addr: SocketAddr, method: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    response
}

/// Exposition-format conformance: the content type advertises version
/// 0.0.4, every `# TYPE` is preceded by a `# HELP` for the same family,
/// and every sample line belongs to a typed family (allowing the
/// summary-style `_sum`/`_count` suffixes).
fn assert_conformant_scrape(raw: &str) -> String {
    let (headers, body) = raw.split_once("\r\n\r\n").expect("headers present");
    assert!(
        headers
            .to_ascii_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "scrape content type is not exposition 0.0.4: {headers}"
    );
    let lines: Vec<&str> = body.lines().collect();
    let mut families = std::collections::HashSet::new();
    for (i, line) in lines.iter().enumerate() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                ["counter", "gauge", "summary", "histogram"].contains(&kind),
                "unknown family kind: {line}"
            );
            assert!(
                i > 0 && lines[i - 1].starts_with(&format!("# HELP {name} ")),
                "family {name} lacks a # HELP line before its # TYPE"
            );
            families.insert(name.to_string());
        }
    }
    for line in &lines {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let name = line.split(['{', ' ']).next().expect("sample name");
        let base = name
            .strip_suffix("_sum")
            .filter(|b| families.contains(*b))
            .or_else(|| {
                name.strip_suffix("_count")
                    .filter(|b| families.contains(*b))
            })
            .unwrap_or(name);
        assert!(
            families.contains(base),
            "sample `{name}` has no # TYPE family: {line}"
        );
    }
    body.to_string()
}

#[test]
fn events_from_boundary_is_empty_and_tailing_never_skips_or_repeats() {
    let dir = test_dir("events-pagination");
    let mut daemon = Daemon::start(config(&dir, 1)).expect("daemon boots");
    let addr = daemon.addr();
    let (status, _) = submit(
        addr,
        &format!("{{\"tenant\":\"e\",\"name\":\"tail\",{SPEC}}}"),
    );
    assert_eq!(status, 202);

    // Tail the stream with `from=len(seen)` while the campaign runs. The
    // stream is append-only, so the concatenation of the tails must equal
    // the final full fetch: nothing skipped, nothing repeated.
    let mut collected: Vec<String> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, batch) = http(
            addr,
            "GET",
            &format!("/campaigns/e--tail/events?from={}", collected.len()),
            None,
        );
        assert_eq!(status, 200);
        collected.extend(batch.lines().map(String::from));
        if collected
            .iter()
            .any(|l| l.contains("\"event\":\"done\"") || l.contains("\"event\":\"failed\""))
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "campaign never settled: {collected:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, full) = http(addr, "GET", "/campaigns/e--tail/events", None);
    assert_eq!(status, 200);
    let full_lines: Vec<String> = full.lines().map(String::from).collect();
    assert_eq!(
        collected, full_lines,
        "incremental tails diverged from the full stream"
    );

    // Boundary: `from` equal to the current event count is an empty 200
    // body, not an error — and so is anything past the end.
    let n = full_lines.len();
    let (status, body) = http(
        addr,
        "GET",
        &format!("/campaigns/e--tail/events?from={n}"),
        None,
    );
    assert_eq!((status, body.as_str()), (200, ""));
    let (status, body) = http(
        addr,
        "GET",
        &format!("/campaigns/e--tail/events?from={}", n + 7),
        None,
    );
    assert_eq!((status, body.as_str()), (200, ""));

    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn timeline_live_equals_offline_reconstruction_and_metrics_conform() {
    let dir = test_dir("timeline");
    let trace_path = dir.join("trace.jsonl");
    let mut cfg = config(&dir, 1);
    cfg.trace_path = Some(trace_path.clone());
    let mut daemon = Daemon::start(cfg).expect("daemon boots");
    let addr = daemon.addr();

    // A strategy campaign across 4 evaluator threads; the 202 body carries
    // the trace id that names this campaign's span DAG.
    let (status, body) = submit(
        addr,
        "{\"tenant\":\"tl\",\"name\":\"flow\",\"app\":\"hacc\",\"variant\":\"kernel\",\
         \"iterations\":3,\"population\":4,\"seed\":7,\"strategy\":\"bo\",\"threads\":4}",
    );
    assert_eq!(status, 202, "{body}");
    let sub: serde_json::Value = serde_json::from_str(&body).expect("202 json");
    let trace_hex = sub
        .get("trace_id")
        .and_then(|t| t.as_str())
        .expect("trace_id in 202 body")
        .to_string();
    assert_eq!(trace_hex.len(), 16, "trace id is 16 hex chars: {trace_hex}");

    // The timeline endpoint answers while the campaign is queued/running
    // (or from the frozen snapshot if it already settled) — and segments
    // sum to the wall clock exactly either way.
    let (status, live_early) = http(addr, "GET", "/campaigns/tl--flow/timeline", None);
    assert_eq!(status, 200, "{live_early}");
    let early: serde_json::Value = serde_json::from_str(&live_early).expect("timeline json");
    let sum_segments = |v: &serde_json::Value| -> u64 {
        match v.get("segments") {
            Some(serde_json::Value::Array(segs)) => segs
                .iter()
                .map(|s| s.get("us").and_then(|u| u.as_u64()).expect("segment us"))
                .sum(),
            other => panic!("segments missing: {other:?}"),
        }
    };
    assert_eq!(
        Some(sum_segments(&early)),
        early.get("wall_us").and_then(|w| w.as_u64()),
        "live segments do not sum to wall: {live_early}"
    );

    let v = await_settled(addr, "tl--flow");
    assert_eq!(state_of(&v), "done", "{v:?}");
    assert_eq!(
        v.get("trace_id").and_then(|t| t.as_str()),
        Some(trace_hex.as_str()),
        "status echoes the submission's trace id"
    );

    // The frozen timeline: complete, same trace id, sums exactly.
    let (status, live) = http(addr, "GET", "/campaigns/tl--flow/timeline", None);
    assert_eq!(status, 200, "{live}");
    let frozen: serde_json::Value = serde_json::from_str(&live).expect("timeline json");
    assert_eq!(
        frozen.get("complete"),
        Some(&serde_json::Value::Bool(true)),
        "{live}"
    );
    assert_eq!(
        frozen.get("trace_id").and_then(|t| t.as_str()),
        Some(trace_hex.as_str())
    );
    let wall = frozen.get("wall_us").and_then(|w| w.as_u64()).unwrap();
    assert_eq!(sum_segments(&frozen), wall, "{live}");
    let crit = match frozen.get("critical_path") {
        Some(serde_json::Value::Array(steps)) => steps.len(),
        other => panic!("critical_path missing: {other:?}"),
    };
    assert!(
        crit >= 2,
        "critical path should descend below the root: {live}"
    );

    // Golden scrape: exposition conformance, and the per-segment
    // histograms from the traced campaign are present and typed.
    let scrape = assert_conformant_scrape(&http_raw(addr, "GET", "/metrics"));
    assert!(
        scrape.contains("# TYPE tunio_timeline_segment_s summary"),
        "per-segment histograms missing from scrape"
    );
    assert!(
        scrape.contains(&format!("trace_id=\"{trace_hex}\"")),
        "exemplar trace id missing from scrape"
    );

    // Drain flushes the JSONL sink; the offline reconstruction from the
    // trace file must be byte-identical to what the live endpoint served.
    daemon.drain_and_join();
    let text = std::fs::read_to_string(&trace_path).expect("trace file");
    let (records, _) = tunio_trace::report::parse_jsonl_lenient(&text);
    let timelines = tunio_trace::timeline::from_records(&records);
    let offline = timelines
        .iter()
        .find(|t| format!("{:016x}", t.trace_id) == trace_hex)
        .expect("campaign's trace in the file");
    assert_eq!(
        offline.to_json(),
        live,
        "offline reconstruction diverged from the live endpoint"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_refuses_new_work_but_finishes_queued_work() {
    let dir = test_dir("drain");
    let mut daemon = Daemon::start(config(&dir, 1)).expect("daemon boots");
    let addr = daemon.addr();
    let (s1, _) = submit(addr, &format!("{{\"tenant\":\"d\",\"name\":\"a\",{SPEC}}}"));
    let (s2, _) = submit(addr, &format!("{{\"tenant\":\"d\",\"name\":\"b\",{SPEC}}}"));
    assert_eq!((s1, s2), (202, 202));
    let (status, body) = http(addr, "POST", "/drain", None);
    assert_eq!((status, body.as_str()), (200, "{\"state\":\"draining\"}"));
    let (s3, body) = submit(addr, &format!("{{\"tenant\":\"d\",\"name\":\"c\",{SPEC}}}"));
    assert_eq!(s3, 503, "{body}");
    daemon.drain_and_join();
    // Both admitted campaigns ran to completion during the drain.
    assert!(dir.join("d--a.outcome.json").exists());
    assert!(dir.join("d--b.outcome.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
