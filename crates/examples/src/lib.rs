//! Placeholder.
