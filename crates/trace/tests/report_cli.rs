//! Regression tests for the `tunio-report` binary's lenient input
//! handling: empty traces and traces truncated mid-line (the emitting
//! process died before its final flush) must report what parsed and
//! exit 0; only totally unreadable input exits non-zero.

use std::path::PathBuf;
use std::process::Command;

fn report_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tunio-report"))
}

fn tmp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tunio_report_cli_{name}_{}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn empty_trace_file_is_reported_not_an_error() {
    let path = tmp_file("empty", "");
    let out = report_bin().arg(&path).output().unwrap();
    std::fs::remove_file(&path).ok();
    assert!(out.status.success(), "stderr: {}", text(&out.stderr));
    assert!(text(&out.stdout).contains("no campaign records"));
}

#[test]
fn empty_trace_file_with_critical_path_is_reported_not_an_error() {
    let path = tmp_file("empty_cp", "");
    let out = report_bin()
        .arg(&path)
        .arg("--critical-path")
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert!(out.status.success(), "stderr: {}", text(&out.stderr));
    assert!(text(&out.stdout).contains("no spans"));
}

#[test]
fn truncated_trace_reports_the_parsed_prefix() {
    let contents = concat!(
        r#"{"t_us":0,"name":"campaign","fields":{"label":"t","iterations":2}}"#,
        "\n",
        r#"{"t_us":100,"name":"ga.generation","fields":{"iter":0,"best_perf":1.0}}"#,
        "\n",
        r#"{"t_us":200,"name":"ga.gener"#, // torn tail: process was killed
    );
    let path = tmp_file("torn", contents);
    let out = report_bin().arg(&path).output().unwrap();
    std::fs::remove_file(&path).ok();
    assert!(
        out.status.success(),
        "truncated trace must still report; stderr: {}",
        text(&out.stderr)
    );
    let stdout = text(&out.stdout);
    assert!(stdout.contains('t'), "summary should render: {stdout}");
    let stderr = text(&out.stderr);
    assert!(
        stderr.contains("skipped 1"),
        "torn line should be warned about on stderr: {stderr}"
    );
}

#[test]
fn truncated_trace_critical_path_reports_the_parsed_spans() {
    let contents = concat!(
        r#"{"t_us":0,"name":"serve.campaign","dur_us":1000,"trace_id":5,"span_id":1,"fields":{}}"#,
        "\n",
        r#"{"t_us":100,"name":"eval.simulate","dur_us":400,"trace_id":5,"span_id":2,"parent_id":1,"fields":{}}"#,
        "\n",
        r#"{"t_us":600,"name":"eval.sim"#, // torn tail
    );
    let path = tmp_file("torn_cp", contents);
    let out = report_bin()
        .arg(&path)
        .arg("--critical-path")
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert!(out.status.success(), "stderr: {}", text(&out.stderr));
    let stdout = text(&out.stdout);
    assert!(stdout.contains("simulation"), "segment table: {stdout}");
    assert!(stdout.contains("sums exactly"), "invariant line: {stdout}");
}

#[test]
fn totally_unreadable_input_exits_nonzero() {
    let path = tmp_file("garbage", "this is not json\nnor is this\n");
    let out = report_bin().arg(&path).output().unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
    assert!(text(&out.stderr).contains("no line parsed"));
}

#[test]
fn critical_path_json_emits_one_timeline_per_line() {
    let contents = concat!(
        r#"{"t_us":0,"name":"serve.campaign","dur_us":1000,"trace_id":7,"span_id":1,"fields":{"trace_overhead_us":3}}"#,
        "\n",
        r#"{"t_us":100,"name":"strategy.propose","dur_us":50,"trace_id":7,"span_id":2,"parent_id":1,"fields":{}}"#,
        "\n",
    );
    let path = tmp_file("cp_json", contents);
    let out = report_bin()
        .arg(&path)
        .arg("--critical-path")
        .arg("--json")
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert!(out.status.success(), "stderr: {}", text(&out.stderr));
    let stdout = text(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1);
    let v: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(
        v.get("trace_id").and_then(|t| t.as_str()),
        Some("0000000000000007")
    );
    assert!(v.get("segments").is_some());
    assert!(v.get("critical_path").is_some());
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}
