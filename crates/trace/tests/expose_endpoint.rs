//! Integration tests for the metrics exposition endpoint: a real HTTP
//! scrape against a live server, and a concurrency test proving scrapes
//! mid-campaign never block writers or observe torn histograms.
//!
//! These tests share the process-global metric registry, so they run in
//! one #[test] body each over disjoint metric names.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tunio_trace as trace;
use tunio_trace::MetricsServer;

fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (headers, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(
        headers.starts_with("HTTP/1.1 200 OK"),
        "unexpected status: {headers}"
    );
    assert!(headers.contains("text/plain"));
    body.to_string()
}

#[test]
fn scrape_returns_exposition_format() {
    trace::counter("ep.golden.requests").inc(42);
    trace::labeled_gauge("ep.golden.progress", &[("stage", "ga")]).set(0.5);
    let h = trace::labeled_histogram("ep.golden.self_s", &[("layer", "lustre.data")]);
    h.record(1.0);
    h.record(3.0);

    let server = MetricsServer::serve("127.0.0.1:0").expect("bind");
    let body = scrape(server.addr());

    // Counter: sanitized name, `# TYPE` header, exact value.
    assert!(body.contains("# TYPE ep_golden_requests counter\n"));
    assert!(body.contains("ep_golden_requests 42\n"));
    // Gauge with a label.
    assert!(body.contains("# TYPE ep_golden_progress gauge\n"));
    assert!(body.contains("ep_golden_progress{stage=\"ga\"} 0.5\n"));
    // Histogram as summary: count/sum plus min/max quantiles; the label
    // value keeps its dot (only names are sanitized, values are escaped).
    assert!(body.contains("# TYPE ep_golden_self_s summary\n"));
    assert!(body.contains("ep_golden_self_s{layer=\"lustre.data\",quantile=\"0\"} 1\n"));
    assert!(body.contains("ep_golden_self_s{layer=\"lustre.data\",quantile=\"1\"} 3\n"));
    assert!(body.contains("ep_golden_self_s_sum{layer=\"lustre.data\"} 4\n"));
    assert!(body.contains("ep_golden_self_s_count{layer=\"lustre.data\"} 2\n"));

    // A second scrape on the same server still works (connection: close
    // per request, listener stays up).
    let again = scrape(server.addr());
    assert!(again.contains("ep_golden_requests 42\n"));
}

#[test]
fn label_values_are_escaped_in_scrape() {
    trace::labeled_counter("ep.escape.total", &[("path", "a\"b\\c\nd")]).inc(1);
    let server = MetricsServer::serve("127.0.0.1:0").expect("bind");
    let body = scrape(server.addr());
    assert!(
        body.contains("ep_escape_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
        "escaped label missing in:\n{body}"
    );
}

#[test]
fn concurrent_scrapes_never_block_or_tear() {
    // Writers hammer a histogram whose every sample is 2.5; any
    // internally-consistent snapshot therefore satisfies
    // sum == count * 2.5 exactly (2.5 is a power-of-two fraction, so the
    // float sum is exact). A torn read (count from one state, sum from
    // another) would violate it.
    const SAMPLE: f64 = 2.5;
    let server = MetricsServer::serve("127.0.0.1:0").expect("bind");
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let h = trace::labeled_histogram("ep.tear.cost", &[("layer", "mpiio")]);
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.record(SAMPLE);
                    n += 1;
                }
                n
            })
        })
        .collect();

    let mut scrapes = 0;
    while scrapes < 20 {
        let body = scrape(server.addr());
        let field = |suffix: &str| -> Option<f64> {
            body.lines()
                .find(|l| l.starts_with(&format!("ep_tear_cost{suffix}")))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
        };
        if let (Some(count), Some(sum)) = (
            field("_count{layer=\"mpiio\"}"),
            field("_sum{layer=\"mpiio\"}"),
        ) {
            assert_eq!(
                sum,
                count * SAMPLE,
                "torn scrape: count {count} vs sum {sum}"
            );
        }
        scrapes += 1;
    }

    stop.store(true, Ordering::Relaxed);
    let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(total > 0, "writers must have made progress during scrapes");

    // Final state is fully consistent too.
    let h = trace::labeled_histogram("ep.tear.cost", &[("layer", "mpiio")]);
    let d = h.get();
    assert_eq!(d.count, total);
    assert_eq!(d.sum, total as f64 * SAMPLE);
}
