//! Concurrency hammer for the JSON-lines sink: many threads closing
//! spans at once must never produce a torn or interleaved line. Every
//! emitted line is re-parsed and accounted for.

use std::collections::HashSet;
use std::sync::{Arc, Barrier};
use tunio_trace::sink::record_from_json;

const THREADS: usize = 16;
const SPANS_PER_THREAD: usize = 200;

#[test]
fn concurrent_span_closes_produce_intact_lines() {
    let path =
        std::env::temp_dir().join(format!("tunio_jsonl_hammer_{}.jsonl", std::process::id()));
    let sink = tunio_trace::sink::JsonlSink::create(&path).unwrap();
    tunio_trace::set_sink(std::sync::Arc::new(sink));

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..SPANS_PER_THREAD {
                    let span = tunio_trace::span(
                        "hammer.work",
                        vec![
                            ("thread", tunio_trace::FieldValue::U64(t as u64)),
                            ("i", tunio_trace::FieldValue::U64(i as u64)),
                            (
                                "payload",
                                tunio_trace::FieldValue::Str(format!(
                                    "a \"quoted\" payload with newline-ish \\n content #{i}"
                                )),
                            ),
                        ],
                    );
                    drop(span);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    tunio_trace::clear_sink();

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut span_ids: HashSet<u64> = HashSet::new();
    let mut total = 0usize;
    for (n, line) in text.lines().enumerate() {
        let rec = record_from_json(line)
            .unwrap_or_else(|e| panic!("line {} is torn or malformed: {e}\n{line}", n + 1));
        assert_eq!(rec.name, "hammer.work");
        let thread = field_u64(&rec, "thread");
        let i = field_u64(&rec, "i");
        assert!(
            seen.insert((thread, i)),
            "duplicate line for thread {thread} span {i}"
        );
        assert!(
            span_ids.insert(rec.span_id.expect("span id")),
            "span ids must be unique"
        );
        total += 1;
    }
    assert_eq!(
        total,
        THREADS * SPANS_PER_THREAD,
        "every close must emit exactly one line"
    );
}

fn field_u64(rec: &tunio_trace::Record, key: &str) -> u64 {
    rec.fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| match v {
            tunio_trace::FieldValue::U64(u) => *u,
            other => panic!("field {key} not u64: {other:?}"),
        })
        .unwrap_or_else(|| panic!("missing field {key}"))
}
