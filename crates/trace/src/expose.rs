//! Prometheus-style text exposition of the metric registry.
//!
//! [`render_prometheus`] turns a metric snapshot into the text exposition
//! format (version 0.0.4): `# HELP` / `# TYPE` headers for every family,
//! sanitized metric names, escaped label values. Histograms are exposed as summaries carrying
//! `_count`/`_sum` plus min/max as the 0/1 quantiles — the registry keeps
//! no buckets by design (see [`crate::metrics`]).
//!
//! [`MetricsServer`] serves that text over HTTP from a background thread
//! so a live campaign can be scraped mid-run: scrapes only read atomic
//! snapshots and never block metric writers. Each accepted connection is
//! handled on its own short-lived thread, so one stalled scraper cannot
//! starve the others — the serve daemon exposes this endpoint to every
//! tenant at once.

use crate::metrics::{MetricSnapshot, MetricValue};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

fn help_registry() -> &'static Mutex<HashMap<String, String>> {
    static HELP: OnceLock<Mutex<HashMap<String, String>>> = OnceLock::new();
    HELP.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Register help text for a metric family (keyed by the raw, unsanitized
/// metric name). Rendering emits it as the family's `# HELP` line; a
/// family never described falls back to its own name, so every exported
/// family always carries a `# HELP` line.
pub fn describe(name: &str, help: &str) {
    help_registry()
        .lock()
        .insert(name.to_string(), help.to_string());
}

/// Escape help text per the exposition format: backslash and newline.
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Sanitize a metric name for the exposition format: any character
/// outside `[a-zA-Z0-9_:]` becomes `_` (so `tunio.profile.self_s`
/// exposes as `tunio_profile_self_s`).
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escape a label value: backslash, double quote and newline get
/// backslash-escaped per the exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Render snapshots in the Prometheus text exposition format. Input order
/// is preserved; [`crate::metrics_snapshot`] already sorts by name then
/// labels, which groups each metric's series under one `# TYPE` header.
pub fn render_prometheus(snapshots: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut last_typed: Option<String> = None;
    for snap in snapshots {
        let name = sanitize_name(&snap.name);
        let kind = match snap.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "summary",
        };
        if last_typed.as_deref() != Some(name.as_str()) {
            let help = help_registry()
                .lock()
                .get(&snap.name)
                .cloned()
                .unwrap_or_else(|| snap.name.clone());
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&help)));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_typed = Some(name.clone());
        }
        match &snap.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("{name}{} {v}\n", label_block(&snap.labels, None)));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{name}{} {}\n",
                    label_block(&snap.labels, None),
                    fmt_f64(*v)
                ));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{name}{} {}\n",
                    label_block(&snap.labels, Some(("quantile", "0"))),
                    fmt_f64(h.min)
                ));
                out.push_str(&format!(
                    "{name}{} {}\n",
                    label_block(&snap.labels, Some(("quantile", "1"))),
                    fmt_f64(h.max)
                ));
                out.push_str(&format!(
                    "{name}_sum{} {}\n",
                    label_block(&snap.labels, None),
                    fmt_f64(h.sum)
                ));
                out.push_str(&format!(
                    "{name}_count{} {}\n",
                    label_block(&snap.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

/// Render the *global* registry's current state (what a scrape returns).
pub fn render_global() -> String {
    render_prometheus(&crate::metrics_snapshot())
}

/// A background-thread HTTP server exposing [`render_global`] on every
/// request. Bind to port 0 to let the OS pick (tests); [`MetricsServer::addr`]
/// reports the resolved address. Shut down explicitly or on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9090"`) and start serving scrapes
    /// from a background thread.
    pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("tunio-metrics".to_string())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // One thread per scrape: a client that connects
                            // and then stalls must not block the accept loop
                            // (read timeouts in serve_one bound each thread's
                            // lifetime to ~500ms).
                            let _ = std::thread::Builder::new()
                                .name("tunio-metrics-conn".to_string())
                                .spawn(move || {
                                    let _ = serve_one(stream);
                                });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the server thread and wait for it to exit.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    // The accepted stream inherits the listener's non-blocking flag on
    // some platforms; reads below rely on the timeout instead.
    stream.set_nonblocking(false)?;
    // Drain the request line and headers (best effort, bounded): the
    // response is the same for every path, so parsing is unnecessary.
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 1024];
    let mut seen = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = render_global();
    let response = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramData;

    fn snap(name: &str, labels: &[(&str, &str)], value: MetricValue) -> MetricSnapshot {
        MetricSnapshot {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        }
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(
            sanitize_name("tunio.eval.cache_hits"),
            "tunio_eval_cache_hits"
        );
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(sanitize_name("sp ace-dash"), "sp_ace_dash");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
    }

    #[test]
    fn renders_each_metric_kind() {
        let snaps = vec![
            snap("app.count", &[], MetricValue::Counter(7)),
            snap("app.level", &[("stage", "two")], MetricValue::Gauge(2.5)),
            snap(
                "app.cost",
                &[("layer", "lustre.data")],
                MetricValue::Histogram(HistogramData {
                    count: 3,
                    sum: 6.0,
                    min: 1.0,
                    max: 3.0,
                }),
            ),
        ];
        let text = render_prometheus(&snaps);
        assert!(text.contains("# TYPE app_count counter\napp_count 7\n"));
        assert!(text.contains("# TYPE app_level gauge\napp_level{stage=\"two\"} 2.5\n"));
        assert!(text.contains("# TYPE app_cost summary\n"));
        assert!(text.contains("app_cost{layer=\"lustre.data\",quantile=\"0\"} 1\n"));
        assert!(text.contains("app_cost{layer=\"lustre.data\",quantile=\"1\"} 3\n"));
        assert!(text.contains("app_cost_sum{layer=\"lustre.data\"} 6\n"));
        assert!(text.contains("app_cost_count{layer=\"lustre.data\"} 3\n"));
    }

    #[test]
    fn every_family_gets_a_help_line_before_its_type_line() {
        describe("helped.metric", "a described family");
        let snaps = vec![
            snap("helped.metric", &[], MetricValue::Counter(1)),
            snap("unhelped.metric", &[], MetricValue::Gauge(0.5)),
        ];
        let text = render_prometheus(&snaps);
        assert!(text
            .contains("# HELP helped_metric a described family\n# TYPE helped_metric counter\n"));
        // Families without registered help fall back to their raw name so
        // a # HELP line is never missing.
        assert!(
            text.contains("# HELP unhelped_metric unhelped.metric\n# TYPE unhelped_metric gauge\n")
        );
    }

    #[test]
    fn type_header_emitted_once_per_series_group() {
        let snaps = vec![
            snap("multi", &[("l", "a")], MetricValue::Counter(1)),
            snap("multi", &[("l", "b")], MetricValue::Counter(2)),
        ];
        let text = render_prometheus(&snaps);
        assert_eq!(text.matches("# TYPE multi counter").count(), 1);
        assert!(text.contains("multi{l=\"a\"} 1\n"));
        assert!(text.contains("multi{l=\"b\"} 2\n"));
    }

    #[test]
    fn stalled_scrapers_do_not_block_healthy_ones() {
        let mut server = MetricsServer::serve("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        // Three clients connect and then say nothing: with a serial accept
        // loop each would hold the server for its full 500ms read timeout.
        let stalled: Vec<TcpStream> = (0..3)
            .map(|_| TcpStream::connect(addr).expect("connect"))
            .collect();
        let started = std::time::Instant::now();
        let mut healthy = TcpStream::connect(addr).expect("connect");
        healthy
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        healthy.read_to_string(&mut response).expect("response");
        assert!(
            response.starts_with("HTTP/1.1 200 OK"),
            "unexpected response: {response:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "healthy scrape blocked behind stalled clients: {:?}",
            started.elapsed()
        );
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn non_finite_values_render_prometheus_style() {
        let snaps = vec![
            snap("g.inf", &[], MetricValue::Gauge(f64::INFINITY)),
            snap("g.nan", &[], MetricValue::Gauge(f64::NAN)),
        ];
        let text = render_prometheus(&snaps);
        assert!(text.contains("g_inf +Inf\n"));
        assert!(text.contains("g_nan NaN\n"));
    }
}
