//! Replay a JSON-lines trace into a human-readable campaign summary.
//!
//! This is the library behind the `tunio-report` binary: it parses the
//! records emitted by the instrumented pipeline (see the DESIGN.md trace
//! section for the emission map) and renders per-generation timing, the
//! RoTI curve, cache hit rate and the stop reason.

use crate::sink::record_from_json;
use crate::{FieldValue, Record};

/// Bytes per megabyte (perf fields are bytes/s; reports show MB/s).
const MB: f64 = 1_000_000.0;

/// One generation row reconstructed from a `ga.generation` span.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationRow {
    /// Generation number (1-based).
    pub iteration: u64,
    /// Best perf so far, bytes/s.
    pub best_perf: f64,
    /// Best perf within the generation, bytes/s.
    pub generation_best_perf: f64,
    /// Simulated tuning cost charged this generation, seconds.
    pub cost_s: f64,
    /// Cumulative simulated tuning cost, seconds.
    pub cumulative_cost_s: f64,
    /// Parameter-subset size tuned this generation.
    pub subset_size: u64,
    /// Real wall time of the generation (span duration), microseconds.
    pub wall_us: u64,
    /// Faults the simulator injected during this generation.
    pub faults: u64,
    /// Evaluation attempts retried during this generation.
    pub retries: u64,
    /// Evaluations that exhausted their retries this generation.
    pub failures: u64,
    /// Keys quarantined by the circuit breaker this generation.
    pub quarantined: u64,
}

impl GenerationRow {
    /// RoTI at this generation given the campaign's default perf:
    /// MB/s gained per minute of tuning.
    pub fn roti(&self, default_perf: f64) -> f64 {
        let minutes = self.cumulative_cost_s / 60.0;
        if minutes <= 0.0 {
            return 0.0;
        }
        ((self.best_perf - default_perf) / MB) / minutes
    }
}

/// One stopper verdict reconstructed from a `stop.decision` event.
#[derive(Debug, Clone, PartialEq)]
pub struct StopDecision {
    /// Stopper display name.
    pub stopper: String,
    /// Generation the verdict was issued after.
    pub iteration: u64,
    /// `true` = stop the campaign.
    pub stop: bool,
}

/// Per-layer self-time totals summed from `profile.layer` events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayerTotals {
    /// Layer name as emitted by the simulator (e.g. `hdf5`, `lustre.data`).
    pub layer: String,
    /// Exclusive (self) time attributed to the layer, seconds.
    pub self_s: f64,
    /// Bytes that crossed the layer.
    pub bytes: f64,
    /// Operations the layer performed.
    pub ops: f64,
}

/// One static workload inference reconstructed from a `tunio.infer.app`
/// span (emitted by `tunio_discovery::infer::lower_prediction`).
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRow {
    /// Entry function that was inferred.
    pub app: String,
    /// Prediction confidence in [0, 1].
    pub confidence: f64,
    /// I/O call sites the static model classified.
    pub sites: u64,
    /// Real wall time of the inference (span duration), microseconds.
    pub wall_us: u64,
}

/// Warm-start application reconstructed from a `campaign.warm_start`
/// event (emitted when a campaign seeds its search from inference).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStartInfo {
    /// App the features were inferred from.
    pub app: String,
    /// Confidence of the inference behind the features.
    pub confidence: f64,
    /// Seed configurations handed to the strategy.
    pub seeds: u64,
}

/// One early racing discard reconstructed from an `eval.discard` event
/// (emitted when noise-robust racing drops a clear loser).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscardRow {
    /// Mean objective when discarded, bytes/s.
    pub mean: f64,
    /// CI half-width at the discard decision, bytes/s.
    pub half_width: f64,
    /// The incumbent objective it lost to, bytes/s.
    pub incumbent: f64,
    /// Samples the configuration had received.
    pub samples: u64,
}

/// Everything the report knows about one campaign in the trace.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Campaign label (pipeline kind), when the trace carries one.
    pub label: Option<String>,
    /// Application name, when the trace carries one.
    pub app: Option<String>,
    /// Per-generation rows, in order.
    pub generations: Vec<GenerationRow>,
    /// Stopper verdicts, in order.
    pub decisions: Vec<StopDecision>,
    /// Perf of the default configuration, bytes/s.
    pub default_perf: Option<f64>,
    /// Best perf found, bytes/s.
    pub best_perf: Option<f64>,
    /// Whether the stopper fired before the budget.
    pub stopped_early: Option<bool>,
    /// Name of the stopper that ended the campaign.
    pub stopper_name: Option<String>,
    /// Simulator evaluations performed (cache misses).
    pub evaluations: Option<u64>,
    /// Memoized lookups served.
    pub cache_hits: Option<u64>,
    /// Campaign wall time, microseconds (from the `campaign` span).
    pub campaign_wall_us: Option<u64>,
    /// Per-layer attribution summed over the campaign's `profile.layer`
    /// events, in first-seen order (the simulator emits layers in a
    /// fixed order, so this matches the canonical layer order).
    pub layers: Vec<LayerTotals>,
    /// Faults injected over the campaign (from `campaign.done`).
    pub faults_injected: Option<u64>,
    /// Evaluation attempts retried over the campaign.
    pub retries: Option<u64>,
    /// Evaluations that exhausted their retries.
    pub failed_evaluations: Option<u64>,
    /// Keys quarantined by the circuit breaker.
    pub quarantined_keys: Option<u64>,
    /// Evaluations served the penalty value.
    pub penalties_served: Option<u64>,
    /// Static workload inferences that preceded the campaign, in order.
    pub inferences: Vec<InferenceRow>,
    /// Warm-start application, when the campaign was seeded from
    /// inferred features.
    pub warm_start: Option<WarmStartInfo>,
    /// Per-config sample counts observed under noise-robust racing
    /// (the `samples` field of `strategy.observe` events), in commit
    /// order. Empty for racing-free campaigns.
    pub racing_samples: Vec<u64>,
    /// Top-up repeats run at the commit frontier (`eval.repeat` events).
    pub racing_topups: u64,
    /// Early discards, in commit order (`eval.discard` events).
    pub racing_discards: Vec<DiscardRow>,
}

impl CampaignSummary {
    /// Cache hit rate in [0, 1], when both counters are known.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let (h, e) = (self.cache_hits?, self.evaluations?);
        let total = h + e;
        (total > 0).then(|| h as f64 / total as f64)
    }

    /// Final RoTI, MB/s per minute.
    pub fn final_roti(&self) -> Option<f64> {
        let default = self.default_perf?;
        self.generations.last().map(|g| g.roti(default))
    }

    /// Peak RoTI over the campaign, MB/s per minute.
    pub fn peak_roti(&self) -> Option<(u64, f64)> {
        let default = self.default_perf?;
        self.generations
            .iter()
            .map(|g| (g.iteration, g.roti(default)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Whether the campaign saw any fault-machinery activity at all.
    /// A fault-free campaign renders exactly as it did before the
    /// resilience columns existed.
    pub fn had_faults(&self) -> bool {
        self.faults_injected.unwrap_or(0) > 0
            || self.retries.unwrap_or(0) > 0
            || self.penalties_served.unwrap_or(0) > 0
            || self
                .generations
                .iter()
                .any(|g| g.faults > 0 || g.retries > 0 || g.failures > 0 || g.quarantined > 0)
    }

    /// Whether the campaign ran noise-robust racing evaluation at all.
    /// A racing-free campaign renders exactly as it did before the
    /// racing section existed.
    pub fn had_racing(&self) -> bool {
        !self.racing_samples.is_empty()
            || self.racing_topups > 0
            || !self.racing_discards.is_empty()
    }

    /// The stop reason: last affirmative decision, or budget exhaustion.
    pub fn stop_reason(&self) -> String {
        if let Some(d) = self.decisions.iter().rev().find(|d| d.stop) {
            return format!("{} stopped after generation {}", d.stopper, d.iteration);
        }
        match &self.stopper_name {
            Some(name) => format!("budget exhausted under stopper {name}"),
            None => "budget exhausted".to_string(),
        }
    }
}

fn f64_field(r: &Record, key: &str) -> Option<f64> {
    r.fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::F64(f) => Some(*f),
            FieldValue::I64(i) => Some(*i as f64),
            FieldValue::U64(u) => Some(*u as f64),
            _ => None,
        })
}

fn u64_field(r: &Record, key: &str) -> Option<u64> {
    r.fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::U64(u) => Some(*u),
            FieldValue::I64(i) => u64::try_from(*i).ok(),
            FieldValue::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Some(*f as u64),
            _ => None,
        })
}

fn str_field<'a>(r: &'a Record, key: &str) -> Option<&'a str> {
    r.fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

fn bool_field(r: &Record, key: &str) -> Option<bool> {
    r.fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::Bool(b) => Some(*b),
            _ => None,
        })
}

/// Parse a JSON-lines trace (one record per non-empty line). Strict:
/// the first bad line fails the whole parse. Interactive consumers that
/// should survive truncated traces use [`parse_jsonl_lenient`].
pub fn parse_jsonl(text: &str) -> Result<Vec<Record>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| record_from_json(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Parse a JSON-lines trace, keeping every line that parses and
/// reporting the ones that don't (`"line N: why"`). A trace file
/// truncated mid-line — the emitting process was killed — yields its
/// intact prefix plus one error for the torn tail, never a hard failure.
/// An empty file yields `(vec![], vec![])`.
pub fn parse_jsonl_lenient(text: &str) -> (Vec<Record>, Vec<String>) {
    let mut records = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match record_from_json(line) {
            Ok(r) => records.push(r),
            Err(e) => errors.push(format!("line {}: {e}", i + 1)),
        }
    }
    (records, errors)
}

/// Fold a record stream into campaign summaries. A `campaign.done`
/// event closes the current campaign; traces without one still yield a
/// single summary from whatever generations and decisions they carry.
pub fn summarize(records: &[Record]) -> Vec<CampaignSummary> {
    let mut out: Vec<CampaignSummary> = Vec::new();
    let mut cur = CampaignSummary::default();
    let mut open = false;

    for r in records {
        match r.name.as_str() {
            "campaign" => {
                // The campaign span closes *after* campaign.done; attach
                // its wall time to the most recently closed campaign if
                // this one is empty, else to the current one.
                let target = if !open && !out.is_empty() {
                    out.last_mut().unwrap()
                } else {
                    &mut cur
                };
                target.label = str_field(r, "kind")
                    .map(str::to_string)
                    .or(target.label.take());
                target.app = str_field(r, "app")
                    .map(str::to_string)
                    .or(target.app.take());
                target.campaign_wall_us = r.dur_us.or(target.campaign_wall_us);
            }
            "ga.generation" => {
                open = true;
                cur.generations.push(GenerationRow {
                    iteration: u64_field(r, "iteration").unwrap_or(0),
                    best_perf: f64_field(r, "best_perf").unwrap_or(0.0),
                    generation_best_perf: f64_field(r, "generation_best_perf").unwrap_or(0.0),
                    cost_s: f64_field(r, "cost_s").unwrap_or(0.0),
                    cumulative_cost_s: f64_field(r, "cumulative_cost_s").unwrap_or(0.0),
                    subset_size: u64_field(r, "subset_size").unwrap_or(0),
                    wall_us: r.dur_us.unwrap_or(0),
                    faults: u64_field(r, "faults").unwrap_or(0),
                    retries: u64_field(r, "retries").unwrap_or(0),
                    failures: u64_field(r, "failures").unwrap_or(0),
                    quarantined: u64_field(r, "quarantined").unwrap_or(0),
                });
            }
            "profile.layer" => {
                open = true;
                let name = str_field(r, "layer").unwrap_or("?");
                let totals = match cur.layers.iter_mut().find(|t| t.layer == name) {
                    Some(t) => t,
                    None => {
                        cur.layers.push(LayerTotals {
                            layer: name.to_string(),
                            ..LayerTotals::default()
                        });
                        cur.layers.last_mut().unwrap()
                    }
                };
                totals.self_s += f64_field(r, "self_s").unwrap_or(0.0);
                totals.bytes += f64_field(r, "bytes").unwrap_or(0.0);
                totals.ops += f64_field(r, "ops").unwrap_or(0.0);
            }
            "tunio.infer.app" => {
                open = true;
                cur.inferences.push(InferenceRow {
                    app: str_field(r, "app").unwrap_or("?").to_string(),
                    confidence: f64_field(r, "confidence").unwrap_or(0.0),
                    sites: u64_field(r, "sites").unwrap_or(0),
                    wall_us: r.dur_us.unwrap_or(0),
                });
            }
            "campaign.warm_start" => {
                open = true;
                cur.warm_start = Some(WarmStartInfo {
                    app: str_field(r, "app").unwrap_or("?").to_string(),
                    confidence: f64_field(r, "confidence").unwrap_or(0.0),
                    seeds: u64_field(r, "seeds").unwrap_or(0),
                });
            }
            "strategy.observe" => {
                if let Some(n) = u64_field(r, "samples") {
                    open = true;
                    cur.racing_samples.push(n);
                }
            }
            "eval.repeat" => {
                open = true;
                cur.racing_topups += 1;
            }
            "eval.discard" => {
                open = true;
                cur.racing_discards.push(DiscardRow {
                    mean: f64_field(r, "mean").unwrap_or(0.0),
                    half_width: f64_field(r, "half_width").unwrap_or(0.0),
                    incumbent: f64_field(r, "incumbent").unwrap_or(0.0),
                    samples: u64_field(r, "samples").unwrap_or(0),
                });
            }
            "stop.decision" => {
                open = true;
                cur.decisions.push(StopDecision {
                    stopper: str_field(r, "stopper").unwrap_or("?").to_string(),
                    iteration: u64_field(r, "iteration").unwrap_or(0),
                    stop: bool_field(r, "stop").unwrap_or(false),
                });
            }
            "campaign.done" => {
                cur.label = str_field(r, "kind")
                    .map(str::to_string)
                    .or(cur.label.take());
                cur.app = str_field(r, "app").map(str::to_string).or(cur.app.take());
                cur.default_perf = f64_field(r, "default_perf");
                cur.best_perf = f64_field(r, "best_perf");
                cur.stopped_early = bool_field(r, "stopped_early");
                cur.stopper_name = str_field(r, "stopper_name").map(str::to_string);
                cur.evaluations = u64_field(r, "evaluations");
                cur.cache_hits = u64_field(r, "cache_hits");
                cur.faults_injected = u64_field(r, "faults_injected");
                cur.retries = u64_field(r, "retries");
                cur.failed_evaluations = u64_field(r, "failed_evaluations");
                cur.quarantined_keys = u64_field(r, "quarantined_keys");
                cur.penalties_served = u64_field(r, "penalties_served");
                out.push(std::mem::take(&mut cur));
                open = false;
            }
            "metric" => {
                let target = if !open && !out.is_empty() {
                    out.last_mut().unwrap()
                } else {
                    &mut cur
                };
                match str_field(r, "metric") {
                    Some("tunio.eval.evaluations") => {
                        target.evaluations = target.evaluations.or(u64_field(r, "value"))
                    }
                    Some("tunio.eval.cache_hits") => {
                        target.cache_hits = target.cache_hits.or(u64_field(r, "value"))
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    if open
        || !cur.generations.is_empty()
        || !cur.decisions.is_empty()
        || !cur.inferences.is_empty()
    {
        out.push(cur);
    }
    // Derive missing aggregates from the generation rows.
    for s in &mut out {
        if s.best_perf.is_none() {
            s.best_perf = s.generations.last().map(|g| g.best_perf);
        }
        if s.default_perf.is_none() {
            // Without an explicit default, RoTI is relative to the first
            // generation's starting point — better than nothing.
            s.default_perf = s.generations.first().map(|g| g.best_perf);
        }
    }
    out
}

/// Render the per-layer attribution table from trace-derived totals.
fn render_layer_table(layers: &[LayerTotals]) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    let total: f64 = layers.iter().map(|t| t.self_s).sum();
    let mut out = String::from(
        "layer         self s   % total        MiB          ops\n\
         ------------+--------+--------+-----------+------------\n",
    );
    for t in layers {
        let pct = if total > 0.0 {
            100.0 * t.self_s / total
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<12} | {:>6.2} | {:>5.1}% | {:>9.1} | {:>10.0}\n",
            t.layer,
            t.self_s,
            pct,
            t.bytes / MIB,
            t.ops,
        ));
    }
    out.push_str(&format!("total {total:>.2} s attributed\n"));
    out
}

/// Render the flamegraph-style self/total tree from trace-derived
/// totals. The hierarchy mirrors the simulated stack: requests enter
/// through HDF5, fan out through MPI-IO onto the network and Lustre,
/// with the burst buffer and metadata path alongside.
fn render_layer_tree(layers: &[LayerTotals]) -> String {
    let s = |name: &str| {
        layers
            .iter()
            .find(|t| t.layer == name)
            .map_or(0.0, |t| t.self_s)
    };
    let lustre = s("lustre.data") + s("lustre.rpc");
    let mpiio = s("mpiio") + s("network") + lustre;
    let hdf5 = s("hdf5") + mpiio;
    let io = s("burst") + hdf5 + s("interference");
    let run = s("compute") + io + s("mds");
    let mut rows: Vec<(usize, &str, f64, f64)> = vec![
        (0, "run", 0.0, run),
        (1, "compute", s("compute"), s("compute")),
        (1, "io", 0.0, io),
        (2, "burst", s("burst"), s("burst")),
        (2, "hdf5", s("hdf5"), hdf5),
        (3, "mpiio", s("mpiio"), mpiio),
        (4, "network", s("network"), s("network")),
        (4, "lustre", 0.0, lustre),
        (5, "lustre.data", s("lustre.data"), s("lustre.data")),
        (5, "lustre.rpc", s("lustre.rpc"), s("lustre.rpc")),
        (1, "mds", s("mds"), s("mds")),
    ];
    // Interference only appears when the simulator ran with a noise
    // profile attached; interference-free traces keep the historical
    // 11-row tree byte-for-byte.
    if layers.iter().any(|t| t.layer == "interference") {
        let pos = rows
            .iter()
            .position(|(_, name, _, _)| *name == "mds")
            .unwrap_or(rows.len());
        rows.insert(
            pos,
            (2, "interference", s("interference"), s("interference")),
        );
    }
    let mut out = String::new();
    for (depth, name, self_s, total_s) in rows {
        out.push_str(&format!(
            "{:indent$}{:<width$} total {:>8.3} s  self {:>8.3} s\n",
            "",
            name,
            total_s,
            self_s,
            indent = depth * 2,
            width = 14usize.saturating_sub(depth * 2) + 8,
        ));
    }
    out
}

fn fmt_us(us: u64) -> String {
    if us >= 2_000_000 {
        format!("{:.2} s", us as f64 / 1e6)
    } else if us >= 2_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

/// Render one campaign summary as plain text.
pub fn render(s: &CampaignSummary) -> String {
    let mut out = String::new();
    let label = s.label.as_deref().unwrap_or("campaign");
    match &s.app {
        Some(app) => out.push_str(&format!("== {label} on {app} ==\n")),
        None => out.push_str(&format!("== {label} ==\n")),
    }

    let gens = s.generations.len();
    out.push_str(&format!("generations       : {gens}\n"));
    if let (Some(best), Some(default)) = (s.best_perf, s.default_perf) {
        out.push_str(&format!(
            "best perf         : {:.1} MB/s (default {:.1} MB/s, gain {:.1} MB/s)\n",
            best / MB,
            default / MB,
            (best - default).max(0.0) / MB
        ));
    }
    if let Some(last) = s.generations.last() {
        out.push_str(&format!(
            "tuning cost       : {:.1} min simulated\n",
            last.cumulative_cost_s / 60.0
        ));
    }
    if let Some(wall) = s.campaign_wall_us {
        out.push_str(&format!("real wall time    : {}\n", fmt_us(wall)));
    }
    for inf in &s.inferences {
        out.push_str(&format!(
            "inference         : {} — {} sites, confidence {:.2}, {}\n",
            inf.app,
            inf.sites,
            inf.confidence,
            fmt_us(inf.wall_us)
        ));
    }
    if let Some(ws) = &s.warm_start {
        out.push_str(&format!(
            "warm start        : seeded from {} ({} seeds, confidence {:.2})\n",
            ws.app, ws.seeds, ws.confidence
        ));
    }
    if let (Some(h), Some(e)) = (s.cache_hits, s.evaluations) {
        let rate = s.cache_hit_rate().unwrap_or(0.0);
        out.push_str(&format!(
            "eval cache        : {h} hits / {e} misses ({:.1}% hit rate)\n",
            rate * 100.0
        ));
    }
    if let Some(roti) = s.final_roti() {
        out.push_str(&format!("final RoTI        : {roti:.2} MB/s per min\n"));
    }
    if let Some((at, peak)) = s.peak_roti() {
        out.push_str(&format!(
            "peak RoTI         : {peak:.2} MB/s per min (generation {at})\n"
        ));
    }
    match s.stopped_early {
        Some(true) => out.push_str(&format!(
            "stop reason       : {} (early)\n",
            s.stop_reason()
        )),
        Some(false) => out.push_str(&format!("stop reason       : {}\n", s.stop_reason())),
        None => {}
    }
    let chaotic = s.had_faults();
    if chaotic {
        out.push_str(&format!(
            "resilience        : {} faults, {} retries, {} failed evals, {} quarantined, {} penalties\n",
            s.faults_injected.unwrap_or_else(|| s.generations.iter().map(|g| g.faults).sum()),
            s.retries.unwrap_or_else(|| s.generations.iter().map(|g| g.retries).sum()),
            s.failed_evaluations
                .unwrap_or_else(|| s.generations.iter().map(|g| g.failures).sum()),
            s.quarantined_keys
                .unwrap_or_else(|| s.generations.iter().map(|g| g.quarantined).sum()),
            s.penalties_served.unwrap_or(0),
        ));
    }

    if s.had_racing() {
        let settled = s.racing_samples.len() as u64;
        let total: u64 = s.racing_samples.iter().sum();
        let max = s.racing_samples.iter().max().copied().unwrap_or(0);
        let avg = if settled > 0 {
            total as f64 / settled as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "racing            : {settled} settled ({total} samples, avg {avg:.1}, max {max}), \
             {} top-ups, {} discarded early\n",
            s.racing_topups,
            s.racing_discards.len(),
        ));
        if !s.racing_discards.is_empty() {
            out.push_str("\nearly discards (clear losers):\n");
            out.push_str(
                "   # | mean MB/s | ±CI MB/s | incumbent MB/s | samples\n\
                 -----+-----------+----------+----------------+--------\n",
            );
            for (i, d) in s.racing_discards.iter().enumerate() {
                out.push_str(&format!(
                    "{:>4} | {:>9.1} | {:>8.1} | {:>14.1} | {:>7}\n",
                    i + 1,
                    d.mean / MB,
                    d.half_width / MB,
                    d.incumbent / MB,
                    d.samples,
                ));
            }
        }
    }

    if gens > 0 {
        let fault_cols = if chaotic { " | faults | retries" } else { "" };
        out.push_str(&format!(
            "\n gen | best MB/s | gen-best MB/s | cost s | cum min |   RoTI | subset | wall{fault_cols}\n",
        ));
        let fault_rule = if chaotic { "+--------+--------" } else { "" };
        out.push_str(&format!(
            "-----+-----------+---------------+--------+---------+--------+--------+------{fault_rule}\n",
        ));
        let default = s.default_perf.unwrap_or(0.0);
        for g in &s.generations {
            out.push_str(&format!(
                "{:>4} | {:>9.1} | {:>13.1} | {:>6.1} | {:>7.2} | {:>6.2} | {:>6} | {}",
                g.iteration,
                g.best_perf / MB,
                g.generation_best_perf / MB,
                g.cost_s,
                g.cumulative_cost_s / 60.0,
                g.roti(default),
                g.subset_size,
                fmt_us(g.wall_us),
            ));
            if chaotic {
                out.push_str(&format!(" | {:>6} | {:>7}", g.faults, g.retries));
                if g.quarantined > 0 {
                    out.push_str(&format!("  [{} quarantined]", g.quarantined));
                }
            }
            out.push('\n');
        }
    }

    if !s.layers.is_empty() {
        out.push_str("\nlayer attribution (self time):\n");
        out.push_str(&render_layer_table(&s.layers));
        out.push_str(&render_layer_tree(&s.layers));
    }

    let verdicts: Vec<&StopDecision> = s.decisions.iter().filter(|d| d.stop).collect();
    if !verdicts.is_empty() {
        out.push_str("\nstop verdicts:\n");
        for d in verdicts {
            out.push_str(&format!(
                "  generation {:>3}: {} → stop\n",
                d.iteration, d.stopper
            ));
        }
    }
    out
}

/// Parse, summarize and render a whole JSON-lines trace.
pub fn report(text: &str) -> Result<String, String> {
    let records = parse_jsonl(text)?;
    let summaries = summarize(&records);
    if summaries.is_empty() {
        return Ok("trace contains no campaign records\n".to_string());
    }
    Ok(summaries.iter().map(render).collect::<Vec<_>>().join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_record(iter: u64, best: f64, cum: f64) -> String {
        format!(
            r#"{{"t_us":{},"name":"ga.generation","dur_us":1200,"fields":{{"iteration":{iter},"best_perf":{best},"generation_best_perf":{best},"cost_s":60.0,"cumulative_cost_s":{cum},"subset_size":12}}}}"#,
            iter * 1000
        )
    }

    fn sample_trace() -> String {
        let lines = [
            gen_record(1, 100e6, 60.0),
            gen_record(2, 400e6, 120.0),
            r#"{"t_us":2500,"name":"stop.decision","fields":{"stopper":"heuristic-5pct-5iter","iteration":2,"stop":true}}"#
                .to_string(),
            r#"{"t_us":2600,"name":"campaign.done","fields":{"kind":"TunIO","app":"hacc","best_perf":400e6,"default_perf":100e6,"stopped_early":true,"stopper_name":"heuristic-5pct-5iter","evaluations":30,"cache_hits":70}}"#
                .to_string(),
            r#"{"t_us":2700,"name":"campaign","dur_us":9000,"fields":{"kind":"TunIO","app":"hacc"}}"#
                .to_string(),
        ];
        lines.join("\n")
    }

    #[test]
    fn summarizes_generations_cache_and_stop() {
        let records = parse_jsonl(&sample_trace()).unwrap();
        let sums = summarize(&records);
        assert_eq!(sums.len(), 1);
        let s = &sums[0];
        assert_eq!(s.generations.len(), 2);
        assert_eq!(s.cache_hit_rate(), Some(0.7));
        assert_eq!(s.stopped_early, Some(true));
        assert_eq!(s.campaign_wall_us, Some(9000));
        // RoTI at generation 2: gained 300 MB/s over 2 minutes = 150.
        let final_roti = s.final_roti().unwrap();
        assert!((final_roti - 150.0).abs() < 1e-9, "{final_roti}");
        assert_eq!(s.peak_roti().unwrap().0, 2);
        assert!(s.stop_reason().contains("heuristic-5pct-5iter"));
        assert!(s.stop_reason().contains("generation 2"));
    }

    #[test]
    fn renders_all_headline_sections() {
        let text = report(&sample_trace()).unwrap();
        for needle in [
            "TunIO on hacc",
            "best perf",
            "eval cache",
            "70.0% hit rate",
            "final RoTI",
            "peak RoTI",
            "stop reason",
            "gen | best MB/s",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn traces_without_campaign_done_still_summarize() {
        let text = format!(
            "{}\n{}",
            gen_record(1, 100e6, 60.0),
            gen_record(2, 150e6, 120.0)
        );
        let sums = summarize(&parse_jsonl(&text).unwrap());
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].generations.len(), 2);
        // Default falls back to the first generation's best.
        assert_eq!(sums[0].default_perf, Some(100e6));
    }

    fn layer_record(iter: u64, layer: &str, self_s: f64, bytes: f64, ops: f64) -> String {
        format!(
            r#"{{"t_us":{},"name":"profile.layer","fields":{{"iteration":{iter},"layer":"{layer}","self_s":{self_s},"cum_self_s":{self_s},"bytes":{bytes},"ops":{ops}}}}}"#,
            iter * 1000 + 10
        )
    }

    #[test]
    fn layer_events_accumulate_across_generations() {
        let lines = [
            layer_record(1, "hdf5", 2.0, 1e6, 10.0),
            layer_record(1, "lustre.data", 3.0, 1e6, 0.0),
            layer_record(2, "hdf5", 1.5, 5e5, 4.0),
            r#"{"t_us":9000,"name":"campaign.done","fields":{"kind":"TunIO","app":"hacc"}}"#
                .to_string(),
        ];
        let sums = summarize(&parse_jsonl(&lines.join("\n")).unwrap());
        assert_eq!(sums.len(), 1);
        let layers = &sums[0].layers;
        assert_eq!(layers.len(), 2);
        let hdf5 = layers.iter().find(|t| t.layer == "hdf5").unwrap();
        assert!((hdf5.self_s - 3.5).abs() < 1e-12);
        assert!((hdf5.bytes - 1.5e6).abs() < 1e-3);
        assert!((hdf5.ops - 14.0).abs() < 1e-12);
    }

    #[test]
    fn render_includes_attribution_table_and_tree() {
        let lines = [
            gen_record(1, 100e6, 60.0),
            layer_record(1, "hdf5", 2.0, 1e6, 10.0),
            layer_record(1, "lustre.data", 6.0, 1e6, 0.0),
            r#"{"t_us":9000,"name":"campaign.done","fields":{"kind":"TunIO","app":"hacc"}}"#
                .to_string(),
        ];
        let text = report(&lines.join("\n")).unwrap();
        assert!(text.contains("layer attribution (self time)"), "{text}");
        // Table row: hdf5 carries 25% of the 8 s attributed.
        assert!(text.contains("hdf5"), "{text}");
        assert!(text.contains("25.0%"), "{text}");
        assert!(text.contains("total 8.00 s attributed"), "{text}");
        // Tree: the run total folds hdf5 + lustre.data, and hdf5's
        // subtree includes the lustre time below it.
        assert!(
            text.contains("run                    total    8.000 s"),
            "{text}"
        );
        assert!(text.contains("self    2.000 s"), "{text}");
    }

    #[test]
    fn traces_without_layer_events_render_without_attribution() {
        let text = report(&sample_trace()).unwrap();
        assert!(!text.contains("layer attribution"));
    }

    fn chaos_trace() -> String {
        let lines = [
            r#"{"t_us":1000,"name":"ga.generation","dur_us":1200,"fields":{"iteration":1,"best_perf":100e6,"generation_best_perf":100e6,"cost_s":60.0,"cumulative_cost_s":60.0,"subset_size":12,"faults":3,"retries":2,"failures":0,"quarantined":0}}"#.to_string(),
            r#"{"t_us":2000,"name":"ga.generation","dur_us":1100,"fields":{"iteration":2,"best_perf":400e6,"generation_best_perf":400e6,"cost_s":60.0,"cumulative_cost_s":120.0,"subset_size":12,"faults":5,"retries":1,"failures":1,"quarantined":1}}"#.to_string(),
            r#"{"t_us":2600,"name":"campaign.done","fields":{"kind":"TunIO","app":"hacc","best_perf":400e6,"default_perf":100e6,"stopped_early":false,"stopper_name":"budget","evaluations":30,"cache_hits":70,"faults_injected":8,"retries":3,"failed_evaluations":1,"quarantined_keys":1,"penalties_served":2}}"#.to_string(),
        ];
        lines.join("\n")
    }

    #[test]
    fn resilience_counters_are_parsed_and_rendered() {
        let sums = summarize(&parse_jsonl(&chaos_trace()).unwrap());
        assert_eq!(sums.len(), 1);
        let s = &sums[0];
        assert!(s.had_faults());
        assert_eq!(s.faults_injected, Some(8));
        assert_eq!(s.retries, Some(3));
        assert_eq!(s.failed_evaluations, Some(1));
        assert_eq!(s.quarantined_keys, Some(1));
        assert_eq!(s.penalties_served, Some(2));
        assert_eq!(s.generations[0].faults, 3);
        assert_eq!(s.generations[1].quarantined, 1);

        let text = report(&chaos_trace()).unwrap();
        assert!(
            text.contains("resilience        : 8 faults, 3 retries, 1 failed evals, 1 quarantined, 2 penalties"),
            "{text}"
        );
        assert!(text.contains("gen | best MB/s"), "{text}");
        assert!(text.contains("| faults | retries"), "{text}");
        assert!(text.contains("[1 quarantined]"), "{text}");
    }

    #[test]
    fn fault_free_traces_render_without_resilience_columns() {
        let text = report(&sample_trace()).unwrap();
        assert!(!text.contains("resilience"), "{text}");
        assert!(!text.contains("faults"), "{text}");
        assert!(text.contains(
            "\n gen | best MB/s | gen-best MB/s | cost s | cum min |   RoTI | subset | wall\n"
        ));
        assert!(text.contains(
            "-----+-----------+---------------+--------+---------+--------+--------+------\n"
        ));
    }

    fn racing_trace() -> String {
        let lines = [
            gen_record(1, 100e6, 60.0),
            r#"{"t_us":1100,"name":"strategy.observe","fields":{"strategy":"random","seq":0,"perf":100e6,"cost_s":60.0,"samples":2}}"#.to_string(),
            r#"{"t_us":1200,"name":"eval.repeat","fields":{"key_fp":123,"rep":2,"samples":3,"incumbent":100e6}}"#.to_string(),
            r#"{"t_us":1300,"name":"strategy.observe","fields":{"strategy":"random","seq":1,"perf":150e6,"cost_s":60.0,"samples":3}}"#.to_string(),
            r#"{"t_us":1400,"name":"eval.discard","fields":{"key":"[0, 1]","mean":40e6,"half_width":5e6,"incumbent":150e6,"samples":2}}"#.to_string(),
            r#"{"t_us":1500,"name":"strategy.observe","fields":{"strategy":"random","seq":2,"perf":40e6,"cost_s":60.0,"samples":2}}"#.to_string(),
            r#"{"t_us":2600,"name":"campaign.done","fields":{"kind":"TunIO","app":"hacc","best_perf":150e6,"default_perf":100e6}}"#.to_string(),
        ];
        lines.join("\n")
    }

    #[test]
    fn racing_events_are_summarized_and_rendered() {
        let sums = summarize(&parse_jsonl(&racing_trace()).unwrap());
        assert_eq!(sums.len(), 1);
        let s = &sums[0];
        assert!(s.had_racing());
        assert_eq!(s.racing_samples, vec![2, 3, 2]);
        assert_eq!(s.racing_topups, 1);
        assert_eq!(s.racing_discards.len(), 1);
        let d = &s.racing_discards[0];
        assert!((d.mean - 40e6).abs() < 1.0);
        assert!((d.half_width - 5e6).abs() < 1.0);
        assert_eq!(d.samples, 2);

        let text = report(&racing_trace()).unwrap();
        assert!(
            text.contains(
                "racing            : 3 settled (7 samples, avg 2.3, max 3), 1 top-ups, 1 discarded early"
            ),
            "{text}"
        );
        assert!(text.contains("early discards (clear losers):"), "{text}");
        assert!(
            text.contains("40.0 |      5.0 |          150.0 |       2"),
            "{text}"
        );
    }

    #[test]
    fn racing_free_traces_render_without_a_racing_section() {
        let sums = summarize(&parse_jsonl(&sample_trace()).unwrap());
        assert!(!sums[0].had_racing());
        let text = report(&sample_trace()).unwrap();
        assert!(!text.contains("racing"), "{text}");
        assert!(!text.contains("discard"), "{text}");
    }

    #[test]
    fn interference_layer_adds_a_tree_row_only_when_present() {
        let quiet = [
            gen_record(1, 100e6, 60.0),
            layer_record(1, "hdf5", 2.0, 1e6, 10.0),
            r#"{"t_us":9000,"name":"campaign.done","fields":{"kind":"TunIO","app":"hacc"}}"#
                .to_string(),
        ]
        .join("\n");
        let text = report(&quiet).unwrap();
        assert!(!text.contains("interference"), "{text}");

        let noisy = [
            gen_record(1, 100e6, 60.0),
            layer_record(1, "hdf5", 2.0, 1e6, 10.0),
            layer_record(1, "interference", 1.5, 0.0, 0.0),
            r#"{"t_us":9000,"name":"campaign.done","fields":{"kind":"TunIO","app":"hacc"}}"#
                .to_string(),
        ]
        .join("\n");
        let text = report(&noisy).unwrap();
        assert!(text.contains("  interference"), "{text}");
        // Interference folds into the io subtree and the run total.
        assert!(
            text.contains("run                    total    3.500 s"),
            "{text}"
        );
    }

    fn inference_trace() -> String {
        let lines = [
            r#"{"t_us":100,"name":"tunio.infer.app","dur_us":850,"fields":{"app":"vpic_dump","confidence":0.9,"sites":1}}"#.to_string(),
            r#"{"t_us":200,"name":"campaign.warm_start","fields":{"app":"vpic_dump","confidence":0.9,"seeds":2}}"#.to_string(),
            gen_record(1, 100e6, 60.0),
            r#"{"t_us":2600,"name":"campaign.done","fields":{"kind":"TunIO","app":"vpic","best_perf":100e6,"default_perf":50e6}}"#.to_string(),
        ];
        lines.join("\n")
    }

    #[test]
    fn inference_spans_and_warm_start_are_summarized() {
        let sums = summarize(&parse_jsonl(&inference_trace()).unwrap());
        assert_eq!(sums.len(), 1);
        let s = &sums[0];
        assert_eq!(s.inferences.len(), 1);
        assert_eq!(s.inferences[0].app, "vpic_dump");
        assert_eq!(s.inferences[0].sites, 1);
        assert_eq!(s.inferences[0].wall_us, 850);
        assert!((s.inferences[0].confidence - 0.9).abs() < 1e-12);
        let ws = s.warm_start.as_ref().unwrap();
        assert_eq!(ws.app, "vpic_dump");
        assert_eq!(ws.seeds, 2);

        let text = report(&inference_trace()).unwrap();
        assert!(
            text.contains("inference         : vpic_dump — 1 sites, confidence 0.90, 850 µs"),
            "{text}"
        );
        assert!(
            text.contains("warm start        : seeded from vpic_dump (2 seeds, confidence 0.90)"),
            "{text}"
        );
    }

    #[test]
    fn inference_only_traces_still_summarize() {
        let line = r#"{"t_us":100,"name":"tunio.infer.app","dur_us":850,"fields":{"app":"ior_read","confidence":0.8,"sites":1}}"#;
        let sums = summarize(&parse_jsonl(line).unwrap());
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].inferences[0].app, "ior_read");
        let text = report(line).unwrap();
        assert!(text.contains("ior_read"), "{text}");
    }

    #[test]
    fn cold_start_traces_render_without_inference_lines() {
        let text = report(&sample_trace()).unwrap();
        assert!(!text.contains("inference "), "{text}");
        assert!(!text.contains("warm start"), "{text}");
    }

    #[test]
    fn bad_lines_are_reported_with_line_numbers() {
        let err = parse_jsonl("{\"t_us\":1,\"name\":\"x\",\"fields\":{}}\nnot json").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn lenient_parse_keeps_the_intact_prefix_of_a_truncated_trace() {
        // A trace killed mid-write: two good lines, then a torn tail.
        let text = format!(
            "{}\n{}\n{}",
            gen_record(1, 100e6, 60.0),
            gen_record(2, 150e6, 120.0),
            r#"{"t_us":3000,"name":"ga.gener"#
        );
        let (records, errors) = parse_jsonl_lenient(&text);
        assert_eq!(records.len(), 2);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("line 3"), "{}", errors[0]);
        // The parsed prefix still summarizes.
        let sums = summarize(&records);
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].generations.len(), 2);
    }

    #[test]
    fn lenient_parse_of_empty_input_is_empty_not_an_error() {
        let (records, errors) = parse_jsonl_lenient("");
        assert!(records.is_empty());
        assert!(errors.is_empty());
        let (records, errors) = parse_jsonl_lenient("\n\n  \n");
        assert!(records.is_empty());
        assert!(errors.is_empty());
    }

    #[test]
    fn lenient_parse_of_garbage_reports_every_line() {
        let (records, errors) = parse_jsonl_lenient("not json\nalso not");
        assert!(records.is_empty());
        assert_eq!(errors.len(), 2);
    }
}
