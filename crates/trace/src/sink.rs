//! Pluggable trace sinks.

use crate::{FieldValue, Record};
use parking_lot::Mutex;
use serde_json::Value;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Receives every emitted record. Implementations must be cheap enough
/// to call from the tuning hot path (the JSON-lines sink buffers; the
/// engine emits at most one span per unique configuration).
pub trait Sink: Send + Sync {
    /// Deliver one record.
    fn emit(&self, record: &Record);
    /// Flush buffered output (called by [`crate::clear_sink`]).
    fn flush(&self) {}
}

/// Discards everything. Installing it is equivalent to (but slightly
/// more expensive than) having no sink at all; it exists so overhead
/// can be measured with the full emission path active.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&self, _record: &Record) {}
}

/// Buffers records in memory, for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<Record>>,
}

impl MemorySink {
    /// Drain and return everything captured so far, in emission order.
    pub fn take(&self) -> Vec<Record> {
        std::mem::take(&mut self.records.lock())
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

impl Sink for MemorySink {
    fn emit(&self, record: &Record) {
        self.records.lock().push(record.clone());
    }
}

fn field_to_json(v: &FieldValue) -> Value {
    match v {
        FieldValue::Str(s) => Value::String(s.clone()),
        FieldValue::I64(i) => Value::Int(*i),
        FieldValue::U64(u) => Value::UInt(*u),
        FieldValue::F64(f) => Value::Float(*f),
        FieldValue::Bool(b) => Value::Bool(*b),
    }
}

/// Render one record as a single-line JSON object:
/// `{"t_us":…,"name":…,("dur_us":…,)?("trace_id":…,)?("span_id":…,)?`
/// `("parent_id":…,)? "fields":{…}}`. The causal-id keys are omitted
/// when absent, so traces written before spans carried causality still
/// parse (and vice versa: [`record_from_json`] treats missing ids as
/// `None`).
pub fn record_to_json(record: &Record) -> String {
    let mut obj = vec![
        ("t_us".to_string(), Value::UInt(record.t_us)),
        ("name".to_string(), Value::String(record.name.clone())),
    ];
    if let Some(d) = record.dur_us {
        obj.push(("dur_us".to_string(), Value::UInt(d)));
    }
    if let Some(t) = record.trace_id {
        obj.push(("trace_id".to_string(), Value::UInt(t)));
    }
    if let Some(s) = record.span_id {
        obj.push(("span_id".to_string(), Value::UInt(s)));
    }
    if let Some(p) = record.parent_id {
        obj.push(("parent_id".to_string(), Value::UInt(p)));
    }
    let fields: Vec<(String, Value)> = record
        .fields
        .iter()
        .map(|(k, v)| (k.clone(), field_to_json(v)))
        .collect();
    obj.push(("fields".to_string(), Value::Object(fields)));
    serde_json::to_string(&Value::Object(obj)).expect("record serializes")
}

/// Parse one JSON line back into a [`Record`] (the inverse of
/// [`record_to_json`]; floats that happen to be integral round-trip as
/// integer field values).
pub fn record_from_json(line: &str) -> Result<Record, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("{e:?}"))?;
    let t_us = v
        .get("t_us")
        .and_then(|t| t.as_u64())
        .ok_or("missing t_us")?;
    let name = v
        .get("name")
        .and_then(|n| n.as_str())
        .ok_or("missing name")?
        .to_string();
    let dur_us = v.get("dur_us").and_then(|d| d.as_u64());
    let trace_id = v.get("trace_id").and_then(|t| t.as_u64());
    let span_id = v.get("span_id").and_then(|s| s.as_u64());
    let parent_id = v.get("parent_id").and_then(|p| p.as_u64());
    let mut fields = Vec::new();
    if let Some(Value::Object(pairs)) = v.get("fields") {
        for (k, fv) in pairs {
            let fv = match fv {
                Value::String(s) => FieldValue::Str(s.clone()),
                Value::Bool(b) => FieldValue::Bool(*b),
                // Canonicalize non-negative integers to U64 so counter
                // and iteration fields round-trip regardless of which
                // integer variant the parser picked.
                Value::Int(i) if *i >= 0 => FieldValue::U64(*i as u64),
                Value::Int(i) => FieldValue::I64(*i),
                Value::UInt(u) => FieldValue::U64(*u),
                Value::Float(f) => FieldValue::F64(*f),
                other => return Err(format!("field {k}: unsupported value {other:?}")),
            };
            fields.push((k.clone(), fv));
        }
    }
    Ok(Record {
        t_us,
        name,
        dur_us,
        trace_id,
        span_id,
        parent_id,
        fields,
    })
}

/// Writes one JSON object per line to a file, buffered.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncate) the trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, record: &Record) {
        let line = record_to_json(record);
        let mut w = self.writer.lock();
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            t_us: 42,
            name: "eval.simulate".into(),
            dur_us: Some(17),
            trace_id: Some(7),
            span_id: Some(9),
            parent_id: Some(8),
            fields: vec![
                ("shard".to_string(), FieldValue::U64(3)),
                ("perf".to_string(), FieldValue::F64(1.5e9)),
                (
                    "label".to_string(),
                    FieldValue::Str("a \"quoted\" name".into()),
                ),
                ("hit".to_string(), FieldValue::Bool(false)),
                ("delta".to_string(), FieldValue::I64(-4)),
            ],
        }
    }

    #[test]
    fn json_line_round_trips() {
        let r = sample();
        let line = record_to_json(&r);
        assert!(!line.contains('\n'));
        let back = record_from_json(&line).unwrap();
        assert_eq!(back.t_us, r.t_us);
        assert_eq!(back.name, r.name);
        assert_eq!(back.dur_us, r.dur_us);
        assert_eq!(back.trace_id, r.trace_id);
        assert_eq!(back.span_id, r.span_id);
        assert_eq!(back.parent_id, r.parent_id);
        assert_eq!(back.fields.len(), r.fields.len());
        assert_eq!(back.fields[0], r.fields[0]);
        assert_eq!(back.fields[3], r.fields[3]);
        assert_eq!(back.fields[4], r.fields[4]);
        match (&back.fields[1].1, &r.fields[1].1) {
            (FieldValue::F64(a), FieldValue::F64(b)) => assert_eq!(a, b),
            // 1.5e9 may parse back as an integral number; both are fine
            // for consumers, which read numbers via as_f64 semantics.
            (FieldValue::U64(a), FieldValue::F64(b)) => assert_eq!(*a as f64, *b),
            other => panic!("unexpected {other:?}"),
        }
        match (&back.fields[2].1, &r.fields[2].1) {
            (FieldValue::Str(a), FieldValue::Str(b)) => assert_eq!(a, b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lines_without_causal_ids_still_parse() {
        let line = r#"{"t_us":1,"name":"legacy.event","fields":{"k":2}}"#;
        let r = record_from_json(line).unwrap();
        assert_eq!(r.trace_id, None);
        assert_eq!(r.span_id, None);
        assert_eq!(r.parent_id, None);
        assert_eq!(r.name, "legacy.event");
    }

    #[test]
    fn events_have_no_dur_us_key() {
        let mut r = sample();
        r.dur_us = None;
        let line = record_to_json(&r);
        assert!(!line.contains("dur_us"));
        assert_eq!(record_from_json(&line).unwrap().dur_us, None);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let path = std::env::temp_dir().join("tunio_trace_sink_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&sample());
        let mut second = sample();
        second.name = "second".into();
        sink.emit(&second);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(record_from_json(lines[0]).unwrap().name, "eval.simulate");
        assert_eq!(record_from_json(lines[1]).unwrap().name, "second");
    }
}
