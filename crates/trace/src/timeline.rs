//! Critical-path timeline: fold a trace's span DAG into exclusive
//! wall-clock segments whose sum equals the trace's wall time exactly.
//!
//! The profiler (PR 4) established a *sums-exactly* discipline for
//! simulated time: every simulated second is attributed to exactly one
//! layer. This module applies the same discipline to *real* time. A
//! campaign's wall clock is partitioned into the segments of
//! [`Segment::ALL`]:
//!
//! * covered segments come from categorized spans (`serve.queue_wait`,
//!   `strategy.propose`, `eval.simulate`, `surrogate.fit`, `wal.append`)
//!   via a sweep over the trace window — an instant where two categories
//!   overlap (worker threads simulate while the scheduler proposes) is
//!   charged to the higher-priority one, so covered segments stay
//!   mutually exclusive;
//! * the uncovered residual splits into `trace_overhead` (measured
//!   inside the emission path, clamped to the residual) and
//!   `scheduler_stall` (everything else: queue management, breeding,
//!   cache lookups, genuine stalls).
//!
//! By construction `sum(segments) == wall_us`, as a `u64` identity, not
//! within a tolerance.
//!
//! The same [`compute`] function serves two feeders:
//!
//! * a **live store**, populated by the tracer's emission path, that
//!   [`snapshot`] reads while a campaign is still running (the serve
//!   daemon's `GET /campaigns/{id}/timeline`), and
//! * **offline records** parsed back from a JSONL trace file
//!   ([`from_records`], behind `tunio-report --critical-path`).
//!
//! Once the root span has closed both feeders see identical span rows
//! and the identical frozen overhead (the root span carries it as a
//! field), so the two reconstructions are equal — a property the bench
//! suite asserts.

use crate::{FieldValue, Record};
use parking_lot::Mutex;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Exclusive wall-clock segment kinds, in render order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Submission accepted but no worker had picked the campaign up yet
    /// (`serve.queue_wait` spans).
    QueueWait,
    /// The search strategy generating proposals (`strategy.propose`).
    Propose,
    /// Inside the I/O simulator (`eval.simulate`).
    Simulation,
    /// Surrogate model refits (`surrogate.fit`, BO strategy).
    Surrogate,
    /// Checkpoint WAL append + flush (`wal.append`).
    Wal,
    /// The tracing subsystem's own emission cost, measured in the emit
    /// path and clamped to the uncovered residual.
    TraceOverhead,
    /// Everything else: scheduler queue management, breeding, cache
    /// lookups, result assembly, genuine stalls.
    SchedulerStall,
}

impl Segment {
    /// Every segment, in canonical render order.
    pub const ALL: [Segment; 7] = [
        Segment::QueueWait,
        Segment::Propose,
        Segment::Simulation,
        Segment::Surrogate,
        Segment::Wal,
        Segment::TraceOverhead,
        Segment::SchedulerStall,
    ];

    /// Stable label, used in reports, JSON and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Segment::QueueWait => "queue_wait",
            Segment::Propose => "propose",
            Segment::Simulation => "simulation",
            Segment::Surrogate => "surrogate",
            Segment::Wal => "wal",
            Segment::TraceOverhead => "trace_overhead",
            Segment::SchedulerStall => "scheduler_stall",
        }
    }

    /// When categorized spans overlap in wall time, the instant goes to
    /// the highest-priority category (larger wins). Simulation dominates:
    /// a worker simulating means the machine is doing useful work even
    /// if the coordinator happens to be proposing at the same instant.
    fn priority(self) -> u8 {
        match self {
            Segment::Simulation => 5,
            Segment::Wal => 4,
            Segment::Surrogate => 3,
            Segment::Propose => 2,
            Segment::QueueWait => 1,
            // Residual segments never enter the sweep.
            Segment::TraceOverhead | Segment::SchedulerStall => 0,
        }
    }
}

/// Map a span name to its covered segment, if it has one. Container
/// spans (`campaign`, `ga.generation`, `strategy.campaign`, ...) are
/// deliberately unmapped: they bound the window, they are not segments.
fn categorize(name: &str) -> Option<Segment> {
    match name {
        "serve.queue_wait" => Some(Segment::QueueWait),
        "strategy.propose" => Some(Segment::Propose),
        "eval.simulate" => Some(Segment::Simulation),
        "surrogate.fit" => Some(Segment::Surrogate),
        "wal.append" => Some(Segment::Wal),
        _ => None,
    }
}

/// The slice of a span record the timeline needs.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    /// The span's id.
    pub span_id: u64,
    /// Parent span id (`None` for the trace root).
    pub parent_id: Option<u64>,
    /// Span name.
    pub name: String,
    /// Start, microseconds on the tracer clock.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

impl SpanRow {
    fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

/// One step along the critical path, root first.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Span name.
    pub name: String,
    /// Span id.
    pub span_id: u64,
    /// Start, microseconds on the tracer clock.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Exclusive time: duration minus the union of the span's children's
    /// intervals (clipped to the span).
    pub self_us: u64,
}

/// A reconstructed per-trace timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// The trace this timeline describes.
    pub trace_id: u64,
    /// Window start, microseconds on the tracer clock.
    pub start_us: u64,
    /// Window length; `sum(segments) == wall_us` exactly.
    pub wall_us: u64,
    /// Whether the root span has closed (false for live snapshots of a
    /// still-running campaign).
    pub complete: bool,
    /// Exclusive segments in [`Segment::ALL`] order, microseconds.
    pub segments: Vec<(Segment, u64)>,
    /// Critical path, root first: at each level, the child whose end
    /// released its parent (latest end wins, earlier start then lower
    /// span id break ties).
    pub critical_path: Vec<PathStep>,
}

impl Timeline {
    /// Microseconds attributed to `seg`.
    pub fn segment_us(&self, seg: Segment) -> u64 {
        self.segments
            .iter()
            .find(|(s, _)| *s == seg)
            .map_or(0, |(_, us)| *us)
    }

    /// Render as a single JSON object (the serve timeline endpoint body
    /// and the CI timeline artifact).
    pub fn to_json(&self) -> String {
        let segments: Vec<Value> = self
            .segments
            .iter()
            .map(|(seg, us)| {
                let share = if self.wall_us > 0 {
                    *us as f64 / self.wall_us as f64
                } else {
                    0.0
                };
                Value::Object(vec![
                    ("segment".to_string(), Value::String(seg.name().to_string())),
                    ("us".to_string(), Value::UInt(*us)),
                    ("share".to_string(), Value::Float(share)),
                ])
            })
            .collect();
        let path: Vec<Value> = self
            .critical_path
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(s.name.clone())),
                    ("span_id".to_string(), Value::UInt(s.span_id)),
                    ("start_us".to_string(), Value::UInt(s.start_us)),
                    ("dur_us".to_string(), Value::UInt(s.dur_us)),
                    ("self_us".to_string(), Value::UInt(s.self_us)),
                ])
            })
            .collect();
        let obj = Value::Object(vec![
            (
                "trace_id".to_string(),
                Value::String(format!("{:016x}", self.trace_id)),
            ),
            ("start_us".to_string(), Value::UInt(self.start_us)),
            ("wall_us".to_string(), Value::UInt(self.wall_us)),
            ("complete".to_string(), Value::Bool(self.complete)),
            ("segments".to_string(), Value::Array(segments)),
            ("critical_path".to_string(), Value::Array(path)),
        ]);
        serde_json::to_string(&obj).expect("timeline serializes")
    }

    /// Render as plain text: the critical path chain and the per-segment
    /// breakdown table (`tunio-report --critical-path`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== trace {:016x} ({}{}) ==\n",
            self.trace_id,
            fmt_us(self.wall_us),
            if self.complete { "" } else { ", still running" },
        ));
        if !self.critical_path.is_empty() {
            out.push_str("critical path:\n");
            for (depth, step) in self.critical_path.iter().enumerate() {
                out.push_str(&format!(
                    "{:indent$}{} — total {}, self {}\n",
                    "",
                    step.name,
                    fmt_us(step.dur_us),
                    fmt_us(step.self_us),
                    indent = depth * 2 + 2,
                ));
            }
        }
        out.push_str(
            "segment           time       share\n\
             ----------------+----------+------\n",
        );
        for (seg, us) in &self.segments {
            let share = if self.wall_us > 0 {
                100.0 * *us as f64 / self.wall_us as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<16} | {:>8} | {:>4.1}%\n",
                seg.name(),
                fmt_us(*us),
                share
            ));
        }
        out.push_str(&format!(
            "total            | {:>8} | sums exactly\n",
            fmt_us(self.wall_us)
        ));
        out
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 2_000_000 {
        format!("{:.2} s", us as f64 / 1e6)
    } else if us >= 2_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

/// Partition `[start_us, end_us)` over the categorized spans and extract
/// the critical path. This is the single reconstruction function behind
/// both the live store ([`snapshot`]) and offline parsing
/// ([`from_records`]); feeding it identical inputs is what makes the two
/// views identical.
pub fn compute(
    trace_id: u64,
    spans: &[SpanRow],
    start_us: u64,
    end_us: u64,
    overhead_us: u64,
    complete: bool,
) -> Timeline {
    let wall_us = end_us.saturating_sub(start_us);

    // Sweep the categorized spans: +1/-1 events per category boundary,
    // each elementary interval charged to the highest-priority active
    // category. Clipping to the window keeps covered ≤ wall.
    let mut events: Vec<(u64, Segment, i32)> = Vec::new();
    for s in spans {
        let Some(seg) = categorize(&s.name) else {
            continue;
        };
        let a = s.start_us.max(start_us);
        let b = s.end_us().min(end_us);
        if b > a {
            events.push((a, seg, 1));
            events.push((b, seg, -1));
        }
    }
    events.sort_by_key(|&(t, seg, delta)| (t, seg.priority(), delta));
    let mut active: HashMap<Segment, i32> = HashMap::new();
    let mut covered: HashMap<Segment, u64> = HashMap::new();
    let mut prev: Option<u64> = None;
    for (t, seg, delta) in events {
        if let Some(p) = prev {
            if t > p {
                if let Some(top) = active
                    .iter()
                    .filter(|(_, n)| **n > 0)
                    .map(|(s, _)| *s)
                    .max_by_key(|s| s.priority())
                {
                    *covered.entry(top).or_insert(0) += t - p;
                }
            }
        }
        prev = Some(t);
        *active.entry(seg).or_insert(0) += delta;
    }

    let covered_total: u64 = covered.values().sum();
    let residual = wall_us.saturating_sub(covered_total);
    let overhead = overhead_us.min(residual);
    let stall = residual - overhead;

    let segments: Vec<(Segment, u64)> = Segment::ALL
        .iter()
        .map(|&seg| {
            let us = match seg {
                Segment::TraceOverhead => overhead,
                Segment::SchedulerStall => stall,
                other => covered.get(&other).copied().unwrap_or(0),
            };
            (seg, us)
        })
        .collect();

    Timeline {
        trace_id,
        start_us,
        wall_us,
        complete,
        segments,
        critical_path: critical_path(spans, start_us, end_us),
    }
}

/// Walk the span DAG from the window down: at each level pick the child
/// whose interval ends last (it is what released the parent), breaking
/// ties toward the earlier start then the lower span id so the path is
/// deterministic. Spans whose parent is unknown (root, or parent still
/// open in a live view) hang off the window itself.
fn critical_path(spans: &[SpanRow], start_us: u64, end_us: u64) -> Vec<PathStep> {
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    // children[parent] — parent 0 is the synthetic window node (real span
    // ids start at 1, so 0 is free).
    let mut children: HashMap<u64, Vec<&SpanRow>> = HashMap::new();
    for s in spans {
        let parent = match s.parent_id {
            Some(p) if ids.contains(&p) && p != s.span_id => p,
            _ => 0,
        };
        children.entry(parent).or_default().push(s);
    }

    let mut path = Vec::new();
    let mut node = 0u64;
    // Depth cap guards against corrupt parent links forming a cycle.
    for _ in 0..64 {
        let Some(kids) = children.get(&node) else {
            break;
        };
        let Some(pick) = kids
            .iter()
            .filter(|s| s.end_us() > start_us && s.start_us < end_us)
            .max_by(|a, b| {
                a.end_us()
                    .cmp(&b.end_us())
                    .then(b.start_us.cmp(&a.start_us))
                    .then(b.span_id.cmp(&a.span_id))
            })
        else {
            break;
        };
        let own: Vec<(u64, u64)> = children
            .get(&pick.span_id)
            .map(|kids| {
                kids.iter()
                    .map(|c| (c.start_us.max(pick.start_us), c.end_us().min(pick.end_us())))
                    .filter(|(a, b)| b > a)
                    .collect()
            })
            .unwrap_or_default();
        let child_union = interval_union(own);
        path.push(PathStep {
            name: pick.name.clone(),
            span_id: pick.span_id,
            start_us: pick.start_us,
            dur_us: pick.dur_us,
            self_us: pick.dur_us.saturating_sub(child_union),
        });
        node = pick.span_id;
    }
    path
}

/// Total length of the union of half-open intervals.
fn interval_union(mut iv: Vec<(u64, u64)>) -> u64 {
    iv.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in iv {
        match cur {
            Some((ca, cb)) if a <= cb => cur = Some((ca, cb.max(b))),
            Some((ca, cb)) => {
                total += cb - ca;
                cur = Some((a, b));
            }
            None => cur = Some((a, b)),
        }
    }
    if let Some((ca, cb)) = cur {
        total += cb - ca;
    }
    total
}

// ---------------------------------------------------------------------
// Live store: span rows accumulated from the emission path, queryable by
// trace id while the trace is still open.
// ---------------------------------------------------------------------

/// Traces kept live at once; least-recently-touched is evicted beyond
/// this (one campaign is one trace, so 64 covers a busy daemon).
const MAX_TRACES: usize = 64;
/// Span rows kept per trace; beyond this, rows are counted but dropped.
const MAX_SPANS_PER_TRACE: usize = 65_536;

#[derive(Debug, Default)]
struct LiveTrace {
    started_us: u64,
    spans: Vec<SpanRow>,
    overhead_ns: u64,
    /// Overhead frozen from the root span's `trace_overhead_us` field at
    /// the moment it closed, so live snapshots of a *finished* trace use
    /// the same number an offline parse of the file will see.
    frozen_overhead_us: Option<u64>,
    dropped: u64,
    touched: u64,
}

#[derive(Debug, Default)]
struct Store {
    traces: HashMap<u64, LiveTrace>,
    clock: u64,
}

impl Store {
    fn touch(&mut self, trace_id: u64, started_us: u64) -> &mut LiveTrace {
        self.clock += 1;
        let clock = self.clock;
        if !self.traces.contains_key(&trace_id) && self.traces.len() >= MAX_TRACES {
            if let Some(&oldest) = self
                .traces
                .iter()
                .min_by_key(|(_, t)| t.touched)
                .map(|(id, _)| id)
            {
                self.traces.remove(&oldest);
            }
        }
        let t = self.traces.entry(trace_id).or_insert_with(|| LiveTrace {
            started_us,
            ..LiveTrace::default()
        });
        t.touched = clock;
        t
    }
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

/// Register a trace before its first span: fixes the live window's start
/// (the serve daemon calls this at submission so queue wait is visible
/// in live snapshots before any span has closed).
pub fn register(trace_id: u64, started_us: u64) {
    let mut s = store().lock();
    let t = s.touch(trace_id, started_us);
    // A fresh entry keeps the caller's start; an existing entry only
    // moves earlier, never later.
    t.started_us = t.started_us.min(started_us);
}

/// Record a closed span into the live store (called from the tracer's
/// emission path; `root_overhead_us` is the root span's frozen overhead
/// field, present only when `parent_id` is `None`).
pub(crate) fn ingest(
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    name: &str,
    start_us: u64,
    dur_us: u64,
) {
    let mut s = store().lock();
    let t = s.touch(trace_id, start_us);
    if t.spans.is_empty() {
        t.started_us = t.started_us.min(start_us);
    }
    if t.spans.len() >= MAX_SPANS_PER_TRACE {
        t.dropped += 1;
        return;
    }
    t.spans.push(SpanRow {
        span_id,
        parent_id,
        name: name.to_string(),
        start_us,
        dur_us,
    });
}

/// Freeze the root's overhead field into the store (see
/// [`LiveTrace::frozen_overhead_us`]).
pub(crate) fn freeze_overhead(trace_id: u64, overhead_us: u64) {
    let mut s = store().lock();
    let t = s.touch(trace_id, 0);
    t.frozen_overhead_us = Some(overhead_us);
}

/// Accumulate tracing-overhead nanoseconds against a trace.
pub(crate) fn add_overhead_ns(trace_id: u64, ns: u64) {
    let mut s = store().lock();
    if let Some(t) = s.traces.get_mut(&trace_id) {
        t.overhead_ns += ns;
    }
}

/// The trace's accumulated tracing overhead, microseconds.
pub fn overhead_us(trace_id: u64) -> u64 {
    let s = store().lock();
    s.traces.get(&trace_id).map_or(0, |t| t.overhead_ns / 1_000)
}

/// Reconstruct the timeline for a live trace. If the root span has
/// closed, the window is the root's interval and the overhead is the
/// value frozen at root close (identical to the offline reconstruction);
/// otherwise the window runs from the trace's registered start to
/// `now_us` and the overhead is the running accumulator.
pub fn snapshot(trace_id: u64, now_us: u64) -> Option<Timeline> {
    let (spans, started_us, overhead_ns, frozen) = {
        let mut s = store().lock();
        s.clock += 1;
        let clock = s.clock;
        let t = s.traces.get_mut(&trace_id)?;
        t.touched = clock;
        (
            t.spans.clone(),
            t.started_us,
            t.overhead_ns,
            t.frozen_overhead_us,
        )
    };
    Some(build(
        trace_id,
        spans,
        started_us,
        now_us,
        overhead_ns / 1_000,
        frozen,
    ))
}

/// Drop a trace from the live store (the serve daemon calls this after
/// caching a finished campaign's timeline).
pub fn forget(trace_id: u64) {
    store().lock().traces.remove(&trace_id);
}

fn build(
    trace_id: u64,
    spans: Vec<SpanRow>,
    started_us: u64,
    now_us: u64,
    running_overhead_us: u64,
    frozen_overhead_us: Option<u64>,
) -> Timeline {
    let root = spans
        .iter()
        .filter(|s| s.parent_id.is_none())
        .max_by_key(|s| s.dur_us)
        .cloned();
    match root {
        Some(r) => {
            let overhead = frozen_overhead_us.unwrap_or(running_overhead_us);
            compute(trace_id, &spans, r.start_us, r.end_us(), overhead, true)
        }
        None => compute(
            trace_id,
            &spans,
            started_us,
            now_us.max(started_us),
            running_overhead_us,
            false,
        ),
    }
}

/// Reconstruct timelines from parsed JSONL records: spans are grouped by
/// trace id, each trace windowed by its root span (or its span extent
/// when no root closed — a truncated trace). Timelines come back in
/// first-appearance order.
pub fn from_records(records: &[Record]) -> Vec<Timeline> {
    let mut order: Vec<u64> = Vec::new();
    let mut by_trace: HashMap<u64, Vec<SpanRow>> = HashMap::new();
    let mut root_overhead: HashMap<u64, u64> = HashMap::new();
    for r in records {
        let (Some(tid), Some(sid), Some(dur)) = (r.trace_id, r.span_id, r.dur_us) else {
            continue;
        };
        if !by_trace.contains_key(&tid) {
            order.push(tid);
        }
        if r.parent_id.is_none() {
            if let Some(us) = r
                .fields
                .iter()
                .find(|(k, _)| k == "trace_overhead_us")
                .and_then(|(_, v)| match v {
                    FieldValue::U64(u) => Some(*u),
                    FieldValue::I64(i) => u64::try_from(*i).ok(),
                    _ => None,
                })
            {
                root_overhead.insert(tid, us);
            }
        }
        by_trace.entry(tid).or_default().push(SpanRow {
            span_id: sid,
            parent_id: r.parent_id,
            name: r.name.clone(),
            start_us: r.t_us,
            dur_us: dur,
        });
    }
    order
        .into_iter()
        .map(|tid| {
            let spans = by_trace.remove(&tid).unwrap_or_default();
            let start = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
            let end = spans.iter().map(|s| s.end_us()).max().unwrap_or(start);
            let overhead = root_overhead.get(&tid).copied();
            build(tid, spans, start, end, overhead.unwrap_or(0), overhead)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(span_id: u64, parent: Option<u64>, name: &str, start: u64, dur: u64) -> SpanRow {
        SpanRow {
            span_id,
            parent_id: parent,
            name: name.to_string(),
            start_us: start,
            dur_us: dur,
        }
    }

    #[test]
    fn segments_sum_exactly_to_wall() {
        let spans = vec![
            row(1, None, "campaign", 0, 1000),
            row(2, Some(1), "strategy.propose", 0, 100),
            row(3, Some(1), "eval.simulate", 50, 400), // overlaps propose
            row(4, Some(1), "eval.simulate", 300, 300),
            row(5, Some(1), "wal.append", 700, 50),
        ];
        let t = compute(7, &spans, 0, 1000, 30, true);
        let sum: u64 = t.segments.iter().map(|(_, us)| us).sum();
        assert_eq!(sum, t.wall_us);
        assert_eq!(t.wall_us, 1000);
        // Simulation wins the overlap: [50,600) simulated = 550.
        assert_eq!(t.segment_us(Segment::Simulation), 550);
        // Propose keeps only its non-overlapped [0,50) = 50.
        assert_eq!(t.segment_us(Segment::Propose), 50);
        assert_eq!(t.segment_us(Segment::Wal), 50);
        assert_eq!(t.segment_us(Segment::TraceOverhead), 30);
        assert_eq!(
            t.segment_us(Segment::SchedulerStall),
            1000 - 550 - 50 - 50 - 30
        );
    }

    #[test]
    fn overhead_is_clamped_to_residual() {
        let spans = vec![
            row(1, None, "campaign", 0, 100),
            row(2, Some(1), "eval.simulate", 0, 90),
        ];
        let t = compute(1, &spans, 0, 100, 10_000, true);
        assert_eq!(t.segment_us(Segment::TraceOverhead), 10);
        assert_eq!(t.segment_us(Segment::SchedulerStall), 0);
        let sum: u64 = t.segments.iter().map(|(_, us)| us).sum();
        assert_eq!(sum, 100);
    }

    #[test]
    fn critical_path_follows_latest_ending_child() {
        let spans = vec![
            row(1, None, "campaign", 0, 1000),
            row(2, Some(1), "ga.generation", 0, 300),
            row(3, Some(1), "ga.generation", 300, 650), // ends last
            row(4, Some(3), "eval.simulate", 400, 500),
            row(5, Some(3), "eval.simulate", 350, 100),
        ];
        let t = compute(1, &spans, 0, 1000, 0, true);
        let names: Vec<&str> = t.critical_path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["campaign", "ga.generation", "eval.simulate"]);
        assert_eq!(t.critical_path[2].span_id, 4);
        // campaign self time = 1000 − union of children [0,300)∪[300,950).
        assert_eq!(t.critical_path[0].self_us, 50);
        // generation #2 self = 650 − union([400,900)∪[350,450)) = 650 − 550.
        assert_eq!(t.critical_path[1].self_us, 100);
    }

    #[test]
    fn spans_with_unknown_parents_hang_off_the_window() {
        // A live view mid-campaign: the root has not closed, so child
        // spans reference a parent id the store has never seen.
        let spans = vec![
            row(7, Some(99), "eval.simulate", 100, 200),
            row(8, Some(99), "eval.simulate", 350, 100),
        ];
        let t = compute(1, &spans, 0, 500, 0, false);
        assert_eq!(t.segment_us(Segment::Simulation), 300);
        let sum: u64 = t.segments.iter().map(|(_, us)| us).sum();
        assert_eq!(sum, 500);
        assert_eq!(t.critical_path.len(), 1);
        assert_eq!(t.critical_path[0].span_id, 8);
    }

    #[test]
    fn empty_trace_is_all_stall() {
        let t = compute(1, &[], 100, 600, 0, false);
        assert_eq!(t.wall_us, 500);
        assert_eq!(t.segment_us(Segment::SchedulerStall), 500);
        assert!(t.critical_path.is_empty());
    }

    #[test]
    fn spans_are_clipped_to_the_window() {
        let spans = vec![row(1, None, "eval.simulate", 0, 1000)];
        let t = compute(1, &spans, 200, 700, 0, true);
        assert_eq!(t.segment_us(Segment::Simulation), 500);
        let sum: u64 = t.segments.iter().map(|(_, us)| us).sum();
        assert_eq!(sum, 500);
    }

    #[test]
    fn json_rendering_carries_segments_and_path() {
        let spans = vec![
            row(1, None, "campaign", 0, 100),
            row(2, Some(1), "eval.simulate", 10, 50),
        ];
        let t = compute(0xabcd, &spans, 0, 100, 5, true);
        let json = t.to_json();
        assert!(json.contains("\"trace_id\":\"000000000000abcd\""), "{json}");
        assert!(
            json.contains("\"segment\":\"simulation\",\"us\":50"),
            "{json}"
        );
        assert!(json.contains("\"critical_path\""), "{json}");
        assert!(json.contains("\"complete\":true"), "{json}");
    }

    #[test]
    fn live_store_roundtrip_and_forget() {
        let tid = 0x51_0000 + line!() as u64; // unlikely to collide
        register(tid, 1_000);
        ingest(tid, 900, Some(901), "eval.simulate", 1_100, 200);
        add_overhead_ns(tid, 5_000);
        let t = snapshot(tid, 2_000).expect("live trace");
        assert!(!t.complete);
        assert_eq!(t.wall_us, 1_000);
        assert_eq!(t.segment_us(Segment::Simulation), 200);
        assert_eq!(t.segment_us(Segment::TraceOverhead), 5);
        // Root closes: window snaps to the root interval, overhead
        // freezes at the root's recorded value.
        ingest(tid, 901, None, "campaign", 1_050, 800);
        freeze_overhead(tid, 6);
        let t = snapshot(tid, 9_999).expect("closed trace");
        assert!(t.complete);
        assert_eq!(t.start_us, 1_050);
        assert_eq!(t.wall_us, 800);
        assert_eq!(t.segment_us(Segment::TraceOverhead), 6);
        forget(tid);
        assert!(snapshot(tid, 9_999).is_none());
    }

    #[test]
    fn from_records_matches_live_reconstruction() {
        use crate::Record;
        let mk = |name: &str, sid: u64, parent: Option<u64>, t: u64, dur: u64| Record {
            t_us: t,
            name: name.to_string(),
            dur_us: Some(dur),
            trace_id: Some(42),
            span_id: Some(sid),
            parent_id: parent,
            fields: if parent.is_none() {
                vec![("trace_overhead_us".to_string(), FieldValue::U64(3))]
            } else {
                vec![]
            },
        };
        let records = vec![
            mk("eval.simulate", 2, Some(1), 10, 50),
            mk("campaign", 1, None, 0, 100),
        ];
        let offline = from_records(&records);
        assert_eq!(offline.len(), 1);
        let t = &offline[0];
        assert!(t.complete);
        assert_eq!(t.wall_us, 100);
        assert_eq!(t.segment_us(Segment::TraceOverhead), 3);
        assert_eq!(t.segment_us(Segment::Simulation), 50);
        let sum: u64 = t.segments.iter().map(|(_, us)| us).sum();
        assert_eq!(sum, t.wall_us);
    }
}
