//! Counter/gauge/histogram handles behind a thread-safe registry.
//!
//! Handles are cheap `Arc`-clones of atomics; recording never takes the
//! registry lock (that is only held while looking a metric up by name).
//! Unlike events, metrics stay live even without a sink — they replace
//! the ad-hoc `AtomicU64` counters subsystems used to keep by hand.

use crate::FieldValue;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value-wins gauge (stores an `f64`).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `v` to the gauge (load/store; last writer wins on races,
    /// which is fine for single-writer gauges).
    pub fn add(&self, v: f64) {
        self.set(self.get() + v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Aggregated histogram state: count, sum and extrema.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramData {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl HistogramData {
    fn empty() -> Self {
        HistogramData {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Streaming histogram (count/sum/min/max; no buckets — enough for the
/// campaign reports, cheap enough for hot paths).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<HistogramData>>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: f64) {
        let mut d = self.0.lock();
        if d.count == 0 {
            d.min = v;
            d.max = v;
        } else {
            d.min = d.min.min(v);
            d.max = d.max.max(v);
        }
        d.count += 1;
        d.sum += v;
    }

    /// Snapshot the aggregated state.
    pub fn get(&self) -> HistogramData {
        *self.0.lock()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Registry key: a metric name plus its (possibly empty) label set. Two
/// handles with the same name but different labels are distinct series.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MetricKey {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

/// Snapshot of one metric's value at flush time.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Label pairs identifying this series (empty for unlabeled metrics).
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: MetricValue,
}

/// The value inside a [`MetricSnapshot`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram aggregate.
    Histogram(HistogramData),
}

impl MetricSnapshot {
    /// Render as record fields for [`crate::flush_metrics`]. Labels become
    /// `label.<key>` string fields.
    pub fn into_fields(self) -> Vec<(String, FieldValue)> {
        let mut fields = vec![("metric".to_string(), FieldValue::Str(self.name))];
        for (k, v) in self.labels {
            fields.push((format!("label.{k}"), FieldValue::Str(v)));
        }
        match self.value {
            MetricValue::Counter(v) => {
                fields.push(("kind".into(), FieldValue::Str("counter".into())));
                fields.push(("value".into(), FieldValue::U64(v)));
            }
            MetricValue::Gauge(v) => {
                fields.push(("kind".into(), FieldValue::Str("gauge".into())));
                fields.push(("value".into(), FieldValue::F64(v)));
            }
            MetricValue::Histogram(h) => {
                fields.push(("kind".into(), FieldValue::Str("histogram".into())));
                fields.push(("count".into(), FieldValue::U64(h.count)));
                fields.push(("sum".into(), FieldValue::F64(h.sum)));
                fields.push(("min".into(), FieldValue::F64(h.min)));
                fields.push(("max".into(), FieldValue::F64(h.max)));
            }
        }
        fields
    }
}

/// Thread-safe (name, labels) → metric registry.
pub(crate) struct Registry {
    metrics: Mutex<HashMap<MetricKey, Metric>>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            metrics: Mutex::new(HashMap::new()),
        }
    }

    fn key(name: &'static str, labels: &[(&'static str, &str)]) -> MetricKey {
        MetricKey {
            name,
            labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect(),
        }
    }

    pub(crate) fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        let mut m = self.metrics.lock();
        match m
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    pub(crate) fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        let mut m = self.metrics.lock();
        match m
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    pub(crate) fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Histogram {
        let mut m = self.metrics.lock();
        match m.entry(Self::key(name, labels)).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(Mutex::new(HistogramData::empty()))))
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    pub(crate) fn snapshot(&self) -> Vec<MetricSnapshot> {
        let m = self.metrics.lock();
        let mut out: Vec<MetricSnapshot> = m
            .iter()
            .map(|(key, metric)| MetricSnapshot {
                name: key.name.to_string(),
                labels: key
                    .labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.get()),
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        out
    }

    pub(crate) fn reset(&self) {
        let m = self.metrics.lock();
        for metric in m.values() {
            match metric {
                Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.0.store(0.0f64.to_bits(), Ordering::Relaxed),
                Metric::Histogram(h) => *h.0.lock() = HistogramData::empty(),
            }
        }
    }
}
