//! `tunio-report` — render a JSON-lines campaign trace as a summary.
//!
//! ```text
//! tunio-report <trace.jsonl> [--json]
//! ```
//!
//! With `--json` the parsed per-campaign summaries are printed as JSON
//! (one object per campaign) instead of the plain-text report.

use std::process::ExitCode;
use tunio_trace::report::{parse_jsonl, render, summarize};

fn usage() -> ExitCode {
    eprintln!("usage: tunio-report <trace.jsonl> [--json]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut as_json = false;
    for a in &args {
        match a.as_str() {
            "--json" => as_json = true,
            "-h" | "--help" => return usage(),
            other if path.is_none() => path = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tunio-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let records = match parse_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tunio-report: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summaries = summarize(&records);
    if summaries.is_empty() {
        println!("trace contains no campaign records");
        return ExitCode::SUCCESS;
    }
    if as_json {
        for s in &summaries {
            println!("{}", summary_json(s));
        }
    } else {
        for (i, s) in summaries.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", render(s));
        }
    }
    ExitCode::SUCCESS
}

fn summary_json(s: &tunio_trace::report::CampaignSummary) -> String {
    use serde_json::Value;
    let mut obj = vec![];
    if let Some(l) = &s.label {
        obj.push(("label".to_string(), Value::String(l.clone())));
    }
    if let Some(a) = &s.app {
        obj.push(("app".to_string(), Value::String(a.clone())));
    }
    obj.push((
        "generations".to_string(),
        Value::UInt(s.generations.len() as u64),
    ));
    if let Some(b) = s.best_perf {
        obj.push(("best_perf".to_string(), Value::Float(b)));
    }
    if let Some(d) = s.default_perf {
        obj.push(("default_perf".to_string(), Value::Float(d)));
    }
    if let Some(r) = s.cache_hit_rate() {
        obj.push(("cache_hit_rate".to_string(), Value::Float(r)));
    }
    if let Some(r) = s.final_roti() {
        obj.push(("final_roti".to_string(), Value::Float(r)));
    }
    obj.push(("stop_reason".to_string(), Value::String(s.stop_reason())));
    serde_json::to_string(&Value::Object(obj)).expect("summary serializes")
}
