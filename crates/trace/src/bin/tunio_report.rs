//! `tunio-report` — render a JSON-lines campaign trace as a summary.
//!
//! ```text
//! tunio-report <trace.jsonl> [--json] [--critical-path]
//! ```
//!
//! With `--json` the parsed per-campaign summaries are printed as JSON
//! (one object per campaign) instead of the plain-text report. With
//! `--critical-path` the trace's span DAG is folded into per-trace
//! exclusive wall-clock segments and a critical path; add `--json` for
//! one timeline object per line (the format CI uploads as an artifact).
//!
//! Parsing is lenient: a trace truncated mid-line (the emitting process
//! died before the final flush) reports whatever parsed and exits 0;
//! only totally unreadable input (no line parsed at all) exits non-zero.

use std::process::ExitCode;
use tunio_trace::report::{parse_jsonl_lenient, render, summarize};
use tunio_trace::timeline;

fn usage() -> ExitCode {
    eprintln!("usage: tunio-report <trace.jsonl> [--json] [--critical-path]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut as_json = false;
    let mut critical_path = false;
    for a in &args {
        match a.as_str() {
            "--json" => as_json = true,
            "--critical-path" => critical_path = true,
            "-h" | "--help" => return usage(),
            other if path.is_none() => path = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tunio-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (records, errors) = parse_jsonl_lenient(&text);
    if !errors.is_empty() {
        eprintln!(
            "tunio-report: {path}: skipped {} unparseable line(s) (first: {})",
            errors.len(),
            errors[0]
        );
    }
    if records.is_empty() && !errors.is_empty() {
        eprintln!("tunio-report: {path}: no line parsed — not a trace file?");
        return ExitCode::FAILURE;
    }

    if critical_path {
        let timelines = timeline::from_records(&records);
        if timelines.is_empty() {
            println!("trace contains no spans with causal ids");
            return ExitCode::SUCCESS;
        }
        for (i, t) in timelines.iter().enumerate() {
            if as_json {
                println!("{}", t.to_json());
            } else {
                if i > 0 {
                    println!();
                }
                print!("{}", t.render_text());
            }
        }
        return ExitCode::SUCCESS;
    }

    let summaries = summarize(&records);
    if summaries.is_empty() {
        println!("trace contains no campaign records");
        return ExitCode::SUCCESS;
    }
    if as_json {
        for s in &summaries {
            println!("{}", summary_json(s));
        }
    } else {
        for (i, s) in summaries.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", render(s));
        }
    }
    ExitCode::SUCCESS
}

fn summary_json(s: &tunio_trace::report::CampaignSummary) -> String {
    use serde_json::Value;
    let mut obj = vec![];
    if let Some(l) = &s.label {
        obj.push(("label".to_string(), Value::String(l.clone())));
    }
    if let Some(a) = &s.app {
        obj.push(("app".to_string(), Value::String(a.clone())));
    }
    obj.push((
        "generations".to_string(),
        Value::UInt(s.generations.len() as u64),
    ));
    if let Some(b) = s.best_perf {
        obj.push(("best_perf".to_string(), Value::Float(b)));
    }
    if let Some(d) = s.default_perf {
        obj.push(("default_perf".to_string(), Value::Float(d)));
    }
    if let Some(r) = s.cache_hit_rate() {
        obj.push(("cache_hit_rate".to_string(), Value::Float(r)));
    }
    if let Some(r) = s.final_roti() {
        obj.push(("final_roti".to_string(), Value::Float(r)));
    }
    obj.push(("stop_reason".to_string(), Value::String(s.stop_reason())));
    serde_json::to_string(&Value::Object(obj)).expect("summary serializes")
}
