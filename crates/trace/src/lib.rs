//! # tunio-trace — structured tracing and metrics for tuning campaigns
//!
//! The tuning pipeline makes per-iteration decisions (subset selection,
//! early stopping, RoTI accounting) that are invisible outside ad-hoc
//! prints. This crate makes them observable: every layer of the pipeline
//! emits *records* (events and spans with typed key/value fields) into a
//! process-global tracer, and keeps *metrics* (counters, gauges,
//! histograms) in a thread-safe registry.
//!
//! Records flow to a pluggable [`Sink`]:
//!
//! * no sink installed (the default) — emission is a single relaxed
//!   atomic load; the instrumented pipeline runs at full speed,
//! * [`JsonlSink`] — one JSON object per line, replayable into a
//!   human-readable campaign summary by the `tunio-report` binary
//!   (see [`report`]),
//! * [`MemorySink`] — buffers records in memory for tests.
//!
//! Metrics are always live (they are plain atomics, as cheap as the
//! counters the evaluation engine already kept); [`flush_metrics`] emits
//! a snapshot of every registered metric into the active sink.
//!
//! ## Granularity rule
//!
//! Events are for *per-generation* (or rarer) occurrences; anything that
//! fires per simulator step or per replay-buffer sample must use a
//! metric instead, so a JSON-lines trace of a full campaign stays small
//! enough to commit as a CI artifact.
//!
//! ## Example
//!
//! ```
//! use tunio_trace as trace;
//!
//! let sink = trace::install_memory_sink();
//! {
//!     let _span = trace::span("demo.work", vec![("iteration", 1u32.into())]);
//!     trace::event("demo.found", vec![("perf", 1.5e9.into())]);
//! }
//! trace::counter("demo.hits").inc(3);
//! trace::flush_metrics();
//! let records = sink.take();
//! assert_eq!(records[0].name, "demo.found"); // events precede span end
//! assert_eq!(records[1].name, "demo.work");
//! assert!(records[1].dur_us.is_some());
//! trace::clear_sink();
//! ```

#![warn(missing_docs)]

pub mod expose;
pub mod metrics;
pub mod report;
pub mod sink;

pub use expose::{render_global, render_prometheus, MetricsServer};
pub use metrics::{Counter, Gauge, Histogram, MetricSnapshot};
pub use sink::{JsonlSink, MemorySink, Sink};

use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A typed field value attached to a record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// UTF-8 text.
    Str(String),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v as i64)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// Field list attached to a record: insertion-ordered key/value pairs.
pub type Fields = Vec<(&'static str, FieldValue)>;

/// One emitted record: an instantaneous event, or a closed span when
/// `dur_us` is set.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Microseconds since the tracer's epoch (first use in the process).
    pub t_us: u64,
    /// Record name, e.g. `"ga.generation"`.
    pub name: String,
    /// Span duration in microseconds; `None` for instantaneous events.
    pub dur_us: Option<u64>,
    /// Typed fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    sink: RwLock<Option<Arc<dyn Sink>>>,
    metrics: metrics::Registry,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        sink: RwLock::new(None),
        metrics: metrics::Registry::new(),
    })
}

/// Whether a sink is installed. Callers building expensive field sets
/// should check this first; the emission functions also check it.
#[inline]
pub fn enabled() -> bool {
    tracer().enabled.load(Ordering::Relaxed)
}

/// Install a sink; subsequent events and spans flow into it.
pub fn set_sink(sink: Arc<dyn Sink>) {
    let t = tracer();
    *t.sink.write() = Some(sink);
    t.enabled.store(true, Ordering::Relaxed);
}

/// Remove the active sink (flushing it) and disable emission.
pub fn clear_sink() {
    let t = tracer();
    let old = t.sink.write().take();
    t.enabled.store(false, Ordering::Relaxed);
    if let Some(s) = old {
        s.flush();
    }
}

/// Install a fresh [`MemorySink`] and return a handle for reading it.
pub fn install_memory_sink() -> Arc<MemorySink> {
    let sink = Arc::new(MemorySink::default());
    set_sink(sink.clone());
    sink
}

/// Install a [`JsonlSink`] writing to `path`.
pub fn install_jsonl_sink(path: &std::path::Path) -> std::io::Result<()> {
    let sink = Arc::new(JsonlSink::create(path)?);
    set_sink(sink);
    Ok(())
}

/// Flush the active sink (no-op when none is installed).
pub fn flush() {
    if let Some(s) = tracer().sink.read().as_ref() {
        s.flush();
    }
}

fn emit(record: Record) {
    if let Some(s) = tracer().sink.read().as_ref() {
        s.emit(&record);
    }
}

fn now_us() -> u64 {
    tracer().epoch.elapsed().as_micros() as u64
}

/// Emit an instantaneous event. Cheap when no sink is installed: one
/// atomic load, and the `fields` vec is dropped unused (pass simple
/// scalar fields in hot paths, or guard with [`enabled`]).
pub fn event(name: &'static str, fields: Fields) {
    if !enabled() {
        return;
    }
    emit(Record {
        t_us: now_us(),
        name: name.to_string(),
        dur_us: None,
        fields: fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    });
}

/// Start a span: a record emitted on guard drop, carrying its duration.
/// When no sink is installed the guard is inert.
pub fn span(name: &'static str, fields: Fields) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    SpanGuard {
        inner: Some(SpanInner {
            name,
            fields,
            start_us: now_us(),
            start: Instant::now(),
        }),
    }
}

struct SpanInner {
    name: &'static str,
    fields: Fields,
    start_us: u64,
    start: Instant,
}

/// RAII guard for an open span; emits the span record when dropped.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Attach another field to the span before it closes (e.g. an
    /// outcome computed inside the span).
    pub fn add_field(&mut self, key: &'static str, value: FieldValue) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            emit(Record {
                t_us: inner.start_us,
                name: inner.name.to_string(),
                dur_us: Some(inner.start.elapsed().as_micros() as u64),
                fields: inner
                    .fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            });
        }
    }
}

/// Look up (or create) a counter in the global metric registry.
pub fn counter(name: &'static str) -> Counter {
    tracer().metrics.counter(name, &[])
}

/// Look up (or create) a gauge in the global metric registry.
pub fn gauge(name: &'static str) -> Gauge {
    tracer().metrics.gauge(name, &[])
}

/// Look up (or create) a histogram in the global metric registry.
pub fn histogram(name: &'static str) -> Histogram {
    tracer().metrics.histogram(name, &[])
}

/// Look up (or create) a counter with labels: same name, different label
/// values are distinct series (e.g. per-layer counters).
pub fn labeled_counter(name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    tracer().metrics.counter(name, labels)
}

/// Look up (or create) a gauge with labels.
pub fn labeled_gauge(name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
    tracer().metrics.gauge(name, labels)
}

/// Look up (or create) a histogram with labels.
pub fn labeled_histogram(name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
    tracer().metrics.histogram(name, labels)
}

/// Snapshot every registered metric (sorted by name, then labels).
pub fn metrics_snapshot() -> Vec<MetricSnapshot> {
    tracer().metrics.snapshot()
}

/// Emit one `"metric"` record per registered metric into the active
/// sink, so traces carry final counter/gauge/histogram values.
pub fn flush_metrics() {
    if !enabled() {
        return;
    }
    for m in metrics_snapshot() {
        emit(Record {
            t_us: now_us(),
            name: "metric".to_string(),
            dur_us: None,
            fields: m.into_fields(),
        });
    }
}

/// Reset every registered metric to zero/empty. Metrics are
/// process-global; campaigns that want per-run numbers call this first
/// (tests do too).
pub fn reset_metrics() {
    tracer().metrics.reset()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global, so sink-swapping tests share one
    // lock to avoid interleaving.
    pub(crate) fn sink_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_spans_are_inert() {
        let _l = sink_test_lock();
        clear_sink();
        assert!(!enabled());
        event("x", vec![("a", 1u32.into())]);
        let mut g = span("y", vec![]);
        g.add_field("late", true.into());
        drop(g);
        // Installing a sink afterwards must not surface earlier records.
        let sink = install_memory_sink();
        assert!(sink.take().is_empty());
        clear_sink();
    }

    #[test]
    fn memory_sink_preserves_emission_order_and_fields() {
        let _l = sink_test_lock();
        let sink = install_memory_sink();
        event("first", vec![("i", 1u32.into())]);
        {
            let mut s = span("work", vec![("seed", 7u64.into())]);
            event("inside", vec![]);
            s.add_field("verdict", FieldValue::Str("ok".into()));
        }
        event("last", vec![("f", 2.5f64.into())]);
        clear_sink();

        let records = sink.take();
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        // Span closes after its interior events: ordering is emission
        // (i.e. completion) order.
        assert_eq!(names, ["first", "inside", "work", "last"]);
        let work = &records[2];
        assert!(work.dur_us.is_some());
        assert_eq!(work.fields[0], ("seed".to_string(), FieldValue::U64(7)));
        assert_eq!(
            work.fields[1],
            ("verdict".to_string(), FieldValue::Str("ok".into()))
        );
        // Timestamps are monotone non-decreasing in emission order,
        // except span records which carry their *start* time.
        assert!(records[0].t_us <= records[1].t_us);
        assert!(records[2].t_us <= records[1].t_us);
    }

    #[test]
    fn metrics_register_accumulate_and_reset() {
        let _l = sink_test_lock();
        reset_metrics();
        counter("t.hits").inc(2);
        counter("t.hits").inc(3);
        gauge("t.level").set(4.5);
        histogram("t.cost").record(1.0);
        histogram("t.cost").record(3.0);

        let snap = metrics_snapshot();
        let find = |n: &str| snap.iter().find(|m| m.name == n).unwrap().clone();
        match find("t.hits") {
            MetricSnapshot {
                value: metrics::MetricValue::Counter(v),
                ..
            } => assert_eq!(v, 5),
            other => panic!("unexpected {other:?}"),
        }
        match find("t.level") {
            MetricSnapshot {
                value: metrics::MetricValue::Gauge(v),
                ..
            } => assert_eq!(v, 4.5),
            other => panic!("unexpected {other:?}"),
        }
        match find("t.cost") {
            MetricSnapshot {
                value: metrics::MetricValue::Histogram(h),
                ..
            } => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 4.0);
                assert_eq!(h.min, 1.0);
                assert_eq!(h.max, 3.0);
            }
            other => panic!("unexpected {other:?}"),
        }

        reset_metrics();
        let snap = metrics_snapshot();
        for m in snap {
            match m.value {
                metrics::MetricValue::Counter(v) => assert_eq!(v, 0),
                metrics::MetricValue::Gauge(v) => assert_eq!(v, 0.0),
                metrics::MetricValue::Histogram(h) => assert_eq!(h.count, 0),
            }
        }
    }

    #[test]
    fn flush_metrics_emits_metric_records() {
        let _l = sink_test_lock();
        reset_metrics();
        let sink = install_memory_sink();
        counter("t.flush.n").inc(9);
        flush_metrics();
        clear_sink();
        let records = sink.take();
        let rec = records
            .iter()
            .find(|r| {
                r.name == "metric"
                    && r.fields
                        .iter()
                        .any(|(k, v)| k == "metric" && *v == FieldValue::Str("t.flush.n".into()))
            })
            .expect("flushed metric record");
        assert!(rec
            .fields
            .iter()
            .any(|(k, v)| k == "value" && *v == FieldValue::U64(9)));
    }
}
