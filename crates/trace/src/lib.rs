//! # tunio-trace — structured tracing and metrics for tuning campaigns
//!
//! The tuning pipeline makes per-iteration decisions (subset selection,
//! early stopping, RoTI accounting) that are invisible outside ad-hoc
//! prints. This crate makes them observable: every layer of the pipeline
//! emits *records* (events and spans with typed key/value fields) into a
//! process-global tracer, and keeps *metrics* (counters, gauges,
//! histograms) in a thread-safe registry.
//!
//! Records flow to a pluggable [`Sink`]:
//!
//! * no sink installed (the default) — emission is a single relaxed
//!   atomic load; the instrumented pipeline runs at full speed,
//! * [`JsonlSink`] — one JSON object per line, replayable into a
//!   human-readable campaign summary by the `tunio-report` binary
//!   (see [`report`]),
//! * [`MemorySink`] — buffers records in memory for tests.
//!
//! Metrics are always live (they are plain atomics, as cheap as the
//! counters the evaluation engine already kept); [`flush_metrics`] emits
//! a snapshot of every registered metric into the active sink.
//!
//! ## Granularity rule
//!
//! Events are for *per-generation* (or rarer) occurrences; anything that
//! fires per simulator step or per replay-buffer sample must use a
//! metric instead, so a JSON-lines trace of a full campaign stays small
//! enough to commit as a CI artifact.
//!
//! ## Causality
//!
//! Spans are *causal*: each carries a `trace_id`/`span_id` pair and the
//! id of its parent. Parentage is implicit — [`span`] reads the calling
//! thread's innermost open span — and crosses threads explicitly via
//! [`SpanContext`] handles: capture [`current`] where work is proposed,
//! install it with [`with_context`] where the work runs. A span opened
//! with no surrounding context is a *trace root* and mints the trace id.
//! The [`timeline`] module folds a trace's span DAG into exclusive
//! wall-clock segments and a critical path.
//!
//! ## Example
//!
//! ```
//! use tunio_trace as trace;
//!
//! let sink = trace::install_memory_sink();
//! {
//!     let _span = trace::span("demo.work", vec![("iteration", 1u32.into())]);
//!     trace::event("demo.found", vec![("perf", 1.5e9.into())]);
//! }
//! trace::counter("demo.hits").inc(3);
//! trace::flush_metrics();
//! let records = sink.take();
//! assert_eq!(records[0].name, "demo.found"); // events precede span end
//! assert_eq!(records[1].name, "demo.work");
//! assert!(records[1].dur_us.is_some());
//! trace::clear_sink();
//! ```

#![warn(missing_docs)]

pub mod expose;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod timeline;

pub use expose::{render_global, render_prometheus, MetricsServer};
pub use metrics::{Counter, Gauge, Histogram, MetricSnapshot};
pub use sink::{JsonlSink, MemorySink, Sink};
pub use timeline::Timeline;

use parking_lot::RwLock;
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A typed field value attached to a record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// UTF-8 text.
    Str(String),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v as i64)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// Field list attached to a record: insertion-ordered key/value pairs.
pub type Fields = Vec<(&'static str, FieldValue)>;

/// One emitted record: an instantaneous event, or a closed span when
/// `dur_us` is set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Record {
    /// Microseconds since the tracer's epoch (first use in the process).
    pub t_us: u64,
    /// Record name, e.g. `"ga.generation"`.
    pub name: String,
    /// Span duration in microseconds; `None` for instantaneous events.
    pub dur_us: Option<u64>,
    /// Trace the record belongs to; `None` for records emitted outside
    /// any span context (e.g. `"metric"` snapshots).
    pub trace_id: Option<u64>,
    /// The span's own id (span records only).
    pub span_id: Option<u64>,
    /// Parent span id; `None` marks a trace root (or, for events, an
    /// event outside any span).
    pub parent_id: Option<u64>,
    /// Typed fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

/// Causal identity of an open span: the trace (campaign) it belongs to
/// and its own process-unique span id. `Copy`, so it can be stored in a
/// job queue entry and carried across threads; install it on the worker
/// with [`with_context`] to make that worker's spans children of the
/// originating span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// Trace the span belongs to.
    pub trace_id: u64,
    /// The span's own id.
    pub span_id: u64,
}

/// Span ids are allocated from one process-global counter so they are
/// unique across threads and traces (0 is reserved / never allocated).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh process-unique span id, for spans emitted explicitly
/// via [`emit_span_at`] (spans whose open and close happen on different
/// threads and therefore cannot use the [`span`] guard).
pub fn alloc_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The calling thread's innermost open span.
    static CURRENT: Cell<Option<SpanContext>> = const { Cell::new(None) };
}

/// The current thread's innermost open span context, if any. Capture
/// this where work is *proposed* and hand it to the thread that runs it.
pub fn current() -> Option<SpanContext> {
    CURRENT.with(|c| c.get())
}

/// Install `ctx` as the calling thread's current span context for the
/// guard's lifetime (restores the previous context on drop). `None`
/// clears the context. This is how scheduler worker threads join the
/// proposing span's causal chain before evaluating a job.
pub fn with_context(ctx: Option<SpanContext>) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard {
        prev,
        _not_send: PhantomData,
    }
}

/// RAII guard from [`with_context`]; restores the previous context on
/// drop. `!Send`: it manipulates thread-local state and must be dropped
/// on the thread that created it.
pub struct ContextGuard {
    prev: Option<SpanContext>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT.with(|c| c.set(prev));
    }
}

struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    sink: RwLock<Option<Arc<dyn Sink>>>,
    metrics: metrics::Registry,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        sink: RwLock::new(None),
        metrics: metrics::Registry::new(),
    })
}

/// Whether a sink is installed. Callers building expensive field sets
/// should check this first; the emission functions also check it.
#[inline]
pub fn enabled() -> bool {
    tracer().enabled.load(Ordering::Relaxed)
}

/// Install a sink; subsequent events and spans flow into it.
pub fn set_sink(sink: Arc<dyn Sink>) {
    let t = tracer();
    *t.sink.write() = Some(sink);
    t.enabled.store(true, Ordering::Relaxed);
}

/// Remove the active sink (flushing it) and disable emission.
pub fn clear_sink() {
    let t = tracer();
    let old = t.sink.write().take();
    t.enabled.store(false, Ordering::Relaxed);
    if let Some(s) = old {
        s.flush();
    }
}

/// Install a fresh [`MemorySink`] and return a handle for reading it.
pub fn install_memory_sink() -> Arc<MemorySink> {
    let sink = Arc::new(MemorySink::default());
    set_sink(sink.clone());
    sink
}

/// Install a [`JsonlSink`] writing to `path`.
pub fn install_jsonl_sink(path: &std::path::Path) -> std::io::Result<()> {
    let sink = Arc::new(JsonlSink::create(path)?);
    set_sink(sink);
    Ok(())
}

/// Flush the active sink (no-op when none is installed).
pub fn flush() {
    if let Some(s) = tracer().sink.read().as_ref() {
        s.flush();
    }
}

/// Deliver a record to the sink and, for spans with causal ids, to the
/// live timeline store. The wall time this path itself consumes is
/// accumulated per trace so the timeline can attribute tracing overhead
/// as its own segment instead of hiding it inside a stall.
fn emit(record: Record) {
    let t0 = Instant::now();
    if let (Some(tid), Some(sid), Some(dur)) = (record.trace_id, record.span_id, record.dur_us) {
        timeline::ingest(tid, sid, record.parent_id, &record.name, record.t_us, dur);
    }
    if let Some(s) = tracer().sink.read().as_ref() {
        s.emit(&record);
    }
    if let Some(tid) = record.trace_id {
        timeline::add_overhead_ns(tid, t0.elapsed().as_nanos() as u64);
    }
}

/// Microseconds since the tracer's epoch (first use in the process) —
/// the clock every record timestamp is expressed in. Public so explicit
/// span emission ([`emit_span_at`]) can timestamp with the same clock.
pub fn now_us() -> u64 {
    tracer().epoch.elapsed().as_micros() as u64
}

/// Emit an instantaneous event. Cheap when no sink is installed: one
/// atomic load, and the `fields` vec is dropped unused (pass simple
/// scalar fields in hot paths, or guard with [`enabled`]).
///
/// Events attach to the calling thread's current span: they carry its
/// trace id and record the enclosing span as their parent.
pub fn event(name: &'static str, fields: Fields) {
    if !enabled() {
        return;
    }
    let ctx = current();
    emit(Record {
        t_us: now_us(),
        name: name.to_string(),
        dur_us: None,
        trace_id: ctx.map(|c| c.trace_id),
        span_id: None,
        parent_id: ctx.map(|c| c.span_id),
        fields: fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    });
}

/// Start a span: a record emitted on guard drop, carrying its duration.
/// When no sink is installed the guard is inert.
///
/// The span parents itself under the calling thread's current span and
/// becomes the current span until the guard drops. With no surrounding
/// context it is a *trace root* and mints a fresh trace id (equal to its
/// own span id); use [`span_root`] to mint a root with a chosen trace id
/// (the serve daemon derives one from the campaign id).
pub fn span(name: &'static str, fields: Fields) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            inner: None,
            _not_send: PhantomData,
        };
    }
    let parent = current();
    span_with_parent(name, fields, parent, parent.map(|p| p.trace_id))
}

/// Start a *root* span for trace `trace_id`: no parent, regardless of
/// the calling thread's current context. The guard installs itself as
/// the current span, so everything beneath it joins the trace.
pub fn span_root(name: &'static str, trace_id: u64, fields: Fields) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            inner: None,
            _not_send: PhantomData,
        };
    }
    span_with_parent(name, fields, None, Some(trace_id))
}

fn span_with_parent(
    name: &'static str,
    fields: Fields,
    parent: Option<SpanContext>,
    trace_id: Option<u64>,
) -> SpanGuard {
    let span_id = alloc_span_id();
    let ctx = SpanContext {
        trace_id: trace_id.unwrap_or(span_id),
        span_id,
    };
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    SpanGuard {
        inner: Some(SpanInner {
            name,
            fields,
            start_us: now_us(),
            start: Instant::now(),
            ctx,
            parent: parent.map(|p| p.span_id),
            prev,
        }),
        _not_send: PhantomData,
    }
}

struct SpanInner {
    name: &'static str,
    fields: Fields,
    start_us: u64,
    start: Instant,
    ctx: SpanContext,
    parent: Option<u64>,
    prev: Option<SpanContext>,
}

/// RAII guard for an open span; emits the span record when dropped.
/// `!Send`: the guard is the thread's current-span marker and must close
/// on the thread that opened it (spans that genuinely cross threads use
/// [`emit_span_at`] instead).
pub struct SpanGuard {
    inner: Option<SpanInner>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Attach another field to the span before it closes (e.g. an
    /// outcome computed inside the span).
    pub fn add_field(&mut self, key: &'static str, value: FieldValue) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value));
        }
    }

    /// The span's causal identity (`None` for inert guards), for handing
    /// to other threads via [`with_context`].
    pub fn context(&self) -> Option<SpanContext> {
        self.inner.as_ref().map(|i| i.ctx)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let prev = inner.prev;
            CURRENT.with(|c| c.set(prev));
            let mut fields: Vec<(String, FieldValue)> = inner
                .fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            if inner.parent.is_none() {
                // Root spans carry the trace's accumulated tracing
                // overhead so an offline reconstruction from the JSONL
                // file sees the same number as the live store; freezing
                // it in the store keeps live snapshots taken *after* the
                // root closed equal to that offline reconstruction.
                let overhead = timeline::overhead_us(inner.ctx.trace_id);
                timeline::freeze_overhead(inner.ctx.trace_id, overhead);
                fields.push(("trace_overhead_us".to_string(), FieldValue::U64(overhead)));
            }
            emit(Record {
                t_us: inner.start_us,
                name: inner.name.to_string(),
                dur_us: Some(inner.start.elapsed().as_micros() as u64),
                trace_id: Some(inner.ctx.trace_id),
                span_id: Some(inner.ctx.span_id),
                parent_id: inner.parent,
                fields,
            });
        }
    }
}

/// Emit a span record directly, for spans whose open and close happen on
/// different threads (e.g. the serve daemon's per-campaign root span,
/// opened on the HTTP thread at submission and closed on the worker that
/// finishes the campaign). The caller allocates ids with
/// [`alloc_span_id`] and timestamps with [`now_us`]; `parent_id: None`
/// marks a trace root and attaches the trace-overhead field exactly as
/// [`SpanGuard`] does.
#[allow(clippy::too_many_arguments)]
pub fn emit_span_at(
    name: &str,
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    start_us: u64,
    end_us: u64,
    fields: Fields,
) {
    if !enabled() {
        return;
    }
    let mut fields: Vec<(String, FieldValue)> = fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    if parent_id.is_none() {
        let overhead = timeline::overhead_us(trace_id);
        timeline::freeze_overhead(trace_id, overhead);
        fields.push(("trace_overhead_us".to_string(), FieldValue::U64(overhead)));
    }
    emit(Record {
        t_us: start_us,
        name: name.to_string(),
        dur_us: Some(end_us.saturating_sub(start_us)),
        trace_id: Some(trace_id),
        span_id: Some(span_id),
        parent_id,
        fields,
    });
}

/// Look up (or create) a counter in the global metric registry.
pub fn counter(name: &'static str) -> Counter {
    tracer().metrics.counter(name, &[])
}

/// Look up (or create) a gauge in the global metric registry.
pub fn gauge(name: &'static str) -> Gauge {
    tracer().metrics.gauge(name, &[])
}

/// Look up (or create) a histogram in the global metric registry.
pub fn histogram(name: &'static str) -> Histogram {
    tracer().metrics.histogram(name, &[])
}

/// Look up (or create) a counter with labels: same name, different label
/// values are distinct series (e.g. per-layer counters).
pub fn labeled_counter(name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    tracer().metrics.counter(name, labels)
}

/// Look up (or create) a gauge with labels.
pub fn labeled_gauge(name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
    tracer().metrics.gauge(name, labels)
}

/// Look up (or create) a histogram with labels.
pub fn labeled_histogram(name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
    tracer().metrics.histogram(name, labels)
}

/// Snapshot every registered metric (sorted by name, then labels).
pub fn metrics_snapshot() -> Vec<MetricSnapshot> {
    tracer().metrics.snapshot()
}

/// Emit one `"metric"` record per registered metric into the active
/// sink, so traces carry final counter/gauge/histogram values.
pub fn flush_metrics() {
    if !enabled() {
        return;
    }
    for m in metrics_snapshot() {
        emit(Record {
            t_us: now_us(),
            name: "metric".to_string(),
            fields: m.into_fields(),
            ..Record::default()
        });
    }
}

/// Reset every registered metric to zero/empty. Metrics are
/// process-global; campaigns that want per-run numbers call this first
/// (tests do too).
pub fn reset_metrics() {
    tracer().metrics.reset()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global, so sink-swapping tests share one
    // lock to avoid interleaving.
    pub(crate) fn sink_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_spans_are_inert() {
        let _l = sink_test_lock();
        clear_sink();
        assert!(!enabled());
        event("x", vec![("a", 1u32.into())]);
        let mut g = span("y", vec![]);
        g.add_field("late", true.into());
        drop(g);
        // Installing a sink afterwards must not surface earlier records.
        let sink = install_memory_sink();
        assert!(sink.take().is_empty());
        clear_sink();
    }

    #[test]
    fn memory_sink_preserves_emission_order_and_fields() {
        let _l = sink_test_lock();
        let sink = install_memory_sink();
        event("first", vec![("i", 1u32.into())]);
        {
            let mut s = span("work", vec![("seed", 7u64.into())]);
            event("inside", vec![]);
            s.add_field("verdict", FieldValue::Str("ok".into()));
        }
        event("last", vec![("f", 2.5f64.into())]);
        clear_sink();

        let records = sink.take();
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        // Span closes after its interior events: ordering is emission
        // (i.e. completion) order.
        assert_eq!(names, ["first", "inside", "work", "last"]);
        let work = &records[2];
        assert!(work.dur_us.is_some());
        assert_eq!(work.fields[0], ("seed".to_string(), FieldValue::U64(7)));
        assert_eq!(
            work.fields[1],
            ("verdict".to_string(), FieldValue::Str("ok".into()))
        );
        // Timestamps are monotone non-decreasing in emission order,
        // except span records which carry their *start* time.
        assert!(records[0].t_us <= records[1].t_us);
        assert!(records[2].t_us <= records[1].t_us);
    }

    #[test]
    fn spans_mint_and_propagate_causal_ids() {
        let _l = sink_test_lock();
        let sink = install_memory_sink();
        let root = span("t.root", vec![]);
        let root_ctx = root.context().expect("live root");
        // A context-free span is a trace root: it mints the trace id.
        assert_eq!(root_ctx.trace_id, root_ctx.span_id);
        assert_eq!(current(), Some(root_ctx));
        {
            let child = span("t.child", vec![]);
            let child_ctx = child.context().expect("live child");
            assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
            assert_ne!(child_ctx.span_id, root_ctx.span_id);
            event("t.evt", vec![]);
        }
        assert_eq!(current(), Some(root_ctx));
        drop(root);
        assert_eq!(current(), None);
        clear_sink();

        let records = sink.take();
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["t.evt", "t.child", "t.root"]);
        let (evt, child, rootr) = (&records[0], &records[1], &records[2]);
        // The event attaches under the child span.
        assert_eq!(evt.trace_id, Some(root_ctx.trace_id));
        assert_eq!(evt.parent_id, child.span_id);
        assert_eq!(evt.span_id, None);
        // The child parents under the root; the root has no parent and
        // carries the frozen overhead field.
        assert_eq!(child.parent_id, Some(root_ctx.span_id));
        assert_eq!(rootr.parent_id, None);
        assert_eq!(rootr.span_id, Some(root_ctx.span_id));
        assert!(rootr.fields.iter().any(|(k, _)| k == "trace_overhead_us"));
        timeline::forget(root_ctx.trace_id);
    }

    #[test]
    fn context_handles_cross_threads() {
        let _l = sink_test_lock();
        let sink = install_memory_sink();
        let root = span("x.root", vec![]);
        let ctx = root.context();
        let handle = std::thread::spawn(move || {
            assert_eq!(current(), None, "fresh thread starts context-free");
            let _g = with_context(ctx);
            assert_eq!(current(), ctx);
            let _s = span("x.work", vec![]);
        });
        handle.join().unwrap();
        let trace_id = ctx.unwrap().trace_id;
        drop(root);
        clear_sink();

        let records = sink.take();
        let work = records.iter().find(|r| r.name == "x.work").unwrap();
        assert_eq!(work.trace_id, Some(trace_id));
        assert_eq!(work.parent_id, Some(ctx.unwrap().span_id));
        timeline::forget(trace_id);
    }

    #[test]
    fn span_root_uses_the_given_trace_id() {
        let _l = sink_test_lock();
        let sink = install_memory_sink();
        let root = span_root("r.root", 0xfeed, vec![]);
        assert_eq!(root.context().unwrap().trace_id, 0xfeed);
        {
            let _child = span("r.child", vec![]);
        }
        drop(root);
        clear_sink();
        let records = sink.take();
        assert!(records.iter().all(|r| r.trace_id == Some(0xfeed)));
        timeline::forget(0xfeed);
    }

    #[test]
    fn emit_span_at_records_cross_thread_roots() {
        let _l = sink_test_lock();
        let sink = install_memory_sink();
        let trace_id = 0xbead;
        let root_id = alloc_span_id();
        timeline::register(trace_id, 100);
        emit_span_at(
            "s.queue_wait",
            trace_id,
            alloc_span_id(),
            Some(root_id),
            100,
            250,
            vec![],
        );
        emit_span_at("s.root", trace_id, root_id, None, 100, 1_100, vec![]);
        clear_sink();
        let records = sink.take();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].dur_us, Some(150));
        assert_eq!(records[1].parent_id, None);
        assert!(records[1]
            .fields
            .iter()
            .any(|(k, _)| k == "trace_overhead_us"));
        let t = timeline::snapshot(trace_id, 9_999).expect("stored trace");
        assert!(t.complete);
        assert_eq!(t.wall_us, 1_000);
        timeline::forget(trace_id);
    }

    #[test]
    fn metrics_register_accumulate_and_reset() {
        let _l = sink_test_lock();
        reset_metrics();
        counter("t.hits").inc(2);
        counter("t.hits").inc(3);
        gauge("t.level").set(4.5);
        histogram("t.cost").record(1.0);
        histogram("t.cost").record(3.0);

        let snap = metrics_snapshot();
        let find = |n: &str| snap.iter().find(|m| m.name == n).unwrap().clone();
        match find("t.hits") {
            MetricSnapshot {
                value: metrics::MetricValue::Counter(v),
                ..
            } => assert_eq!(v, 5),
            other => panic!("unexpected {other:?}"),
        }
        match find("t.level") {
            MetricSnapshot {
                value: metrics::MetricValue::Gauge(v),
                ..
            } => assert_eq!(v, 4.5),
            other => panic!("unexpected {other:?}"),
        }
        match find("t.cost") {
            MetricSnapshot {
                value: metrics::MetricValue::Histogram(h),
                ..
            } => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 4.0);
                assert_eq!(h.min, 1.0);
                assert_eq!(h.max, 3.0);
            }
            other => panic!("unexpected {other:?}"),
        }

        reset_metrics();
        let snap = metrics_snapshot();
        for m in snap {
            match m.value {
                metrics::MetricValue::Counter(v) => assert_eq!(v, 0),
                metrics::MetricValue::Gauge(v) => assert_eq!(v, 0.0),
                metrics::MetricValue::Histogram(h) => assert_eq!(h.count, 0),
            }
        }
    }

    #[test]
    fn flush_metrics_emits_metric_records() {
        let _l = sink_test_lock();
        reset_metrics();
        let sink = install_memory_sink();
        counter("t.flush.n").inc(9);
        flush_metrics();
        clear_sink();
        let records = sink.take();
        let rec = records
            .iter()
            .find(|r| {
                r.name == "metric"
                    && r.fields
                        .iter()
                        .any(|(k, v)| k == "metric" && *v == FieldValue::Str("t.flush.n".into()))
            })
            .expect("flushed metric record");
        assert!(rec
            .fields
            .iter()
            .any(|(k, v)| k == "value" && *v == FieldValue::U64(9)));
    }
}
