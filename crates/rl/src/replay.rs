//! Experience-replay buffer.

use rand::Rng;

/// One stored transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State before the action.
    pub state: Vec<f64>,
    /// Action taken.
    pub action: usize,
    /// Reward received (possibly delayed).
    pub reward: f64,
    /// State after the action.
    pub next_state: Vec<f64>,
    /// Whether the episode ended at this transition.
    pub done: bool,
}

/// Fixed-capacity ring buffer of transitions with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    items: Vec<Transition>,
    capacity: usize,
    next: usize,
}

impl ReplayBuffer {
    /// Create a buffer holding up to `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        ReplayBuffer {
            items: Vec::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            next: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Store a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.next] = t;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Sample `n` transitions uniformly with replacement (empty when the
    /// buffer is empty).
    pub fn sample<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<&Transition> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|_| &self.items[rng.gen_range(0..self.items.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(r: f64) -> Transition {
        Transition {
            state: vec![r],
            action: 0,
            reward: r,
            next_state: vec![r + 1.0],
            done: false,
        }
    }

    #[test]
    fn push_and_len() {
        let mut b = ReplayBuffer::new(3);
        assert!(b.is_empty());
        b.push(t(1.0));
        b.push(t(2.0));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn eviction_wraps_ring() {
        let mut b = ReplayBuffer::new(2);
        b.push(t(1.0));
        b.push(t(2.0));
        b.push(t(3.0)); // evicts 1.0
        assert_eq!(b.len(), 2);
        let rewards: Vec<f64> = b.items.iter().map(|x| x.reward).collect();
        assert!(rewards.contains(&3.0));
        assert!(!rewards.contains(&1.0));
    }

    #[test]
    fn sampling_respects_count() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..5 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(b.sample(3, &mut rng).len(), 3);
        assert_eq!(b.sample(0, &mut rng).len(), 0);
        let empty = ReplayBuffer::new(4);
        assert!(empty.sample(3, &mut rng).is_empty());
    }
}
