//! # tunio-rl — reinforcement-learning toolkit
//!
//! The paper builds its two agents (Smart Configuration Generation and
//! Early Stopping) from Keras networks driven through OpenAI-Gym-style
//! environments. This crate supplies the equivalents:
//!
//! * [`env::Env`] — a gym-like environment trait (`reset`/`step`).
//! * [`qlearn::QAgent`] — an NN-based Q-learning agent with ε-greedy
//!   exploration and an experience-replay buffer.
//! * [`bandit::ContextObserver`] — the NN contextual-bandit *state
//!   observer* that turns raw tuner inputs into a learned state
//!   observation (§III-C).
//! * [`delayed::DelayedReward`] — the 5-iteration reward delay both agents
//!   use "to avoid bias introduced by short-term gains".
//! * [`logcurve`] — the synthetic log-curve tuning emulator used to train
//!   the Early Stopping agent offline (§III-D), including the randomized
//!   downward shifts that model briefly picking a wrong parameter.

#![warn(missing_docs)]

pub mod bandit;
pub mod delayed;
pub mod env;
pub mod logcurve;
pub mod qlearn;
pub mod replay;

pub use bandit::ContextObserver;
pub use delayed::DelayedReward;
pub use env::Env;
pub use logcurve::{LogCurve, LogCurveEnv};
pub use qlearn::QAgent;
pub use replay::ReplayBuffer;
