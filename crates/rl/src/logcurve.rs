//! Synthetic log-curve tuning emulator (offline Early-Stopping training).
//!
//! §III-D: "To train the agent offline, tuning is emulated using generated
//! log curves, as tuning performance follows a log curve … The log curves
//! generated for training include noise in the form of randomized shifts
//! down the curve to account for tuning cases where the wrong parameter is
//! chosen briefly before adjusting. … Each simulated application has a log
//! curve with different characteristics such as initial value, growth
//! rate, etc."

use crate::env::{Env, StepResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A parametric tuning curve: best-so-far perf over iterations.
#[derive(Debug, Clone)]
pub struct LogCurve {
    /// Perf before tuning.
    pub start: f64,
    /// Total achievable gain.
    pub gain: f64,
    /// Growth rate (larger = saturates earlier).
    pub rate: f64,
    /// Iterations the campaign would run.
    pub max_iters: u32,
    /// Iterations at which a transient downward shift occurs (wrong
    /// parameter chosen briefly) and its depth.
    pub dips: Vec<(u32, f64)>,
    /// Iterations of flat search before gains begin (a GA needs several
    /// generations to assemble its first useful configuration).
    pub delay: u32,
}

impl LogCurve {
    /// Sample a curve with randomized characteristics.
    pub fn sample<R: Rng>(max_iters: u32, rng: &mut R) -> LogCurve {
        let n_dips = rng.gen_range(0..4);
        let dips = (0..n_dips)
            .map(|_| {
                (
                    rng.gen_range(1..max_iters.max(2)),
                    rng.gen_range(0.05..0.35),
                )
            })
            .collect();
        LogCurve {
            start: rng.gen_range(0.2..1.0),
            gain: rng.gen_range(0.5..4.0),
            rate: rng.gen_range(0.15..1.2),
            max_iters,
            dips,
            delay: rng.gen_range(0..(max_iters / 3).max(1)),
        }
    }

    /// Best-so-far perf at iteration `t` (monotone log growth with
    /// transient dips applied to the *instantaneous* value).
    pub fn perf(&self, t: u32) -> f64 {
        let tt = (t.min(self.max_iters).saturating_sub(self.delay)) as f64;
        let t_max = (self.max_iters.saturating_sub(self.delay)).max(1) as f64;
        let base =
            self.start + self.gain * ((1.0 + self.rate * tt).ln() / (1.0 + self.rate * t_max).ln());
        let dip: f64 = self
            .dips
            .iter()
            .filter(|(at, _)| *at == t)
            .map(|(_, d)| d)
            .sum();
        (base - dip * self.gain).max(self.start * 0.5)
    }

    /// Iteration after which marginal gain per iteration stays below
    /// `cost` — the ideal stopping point.
    pub fn ideal_stop(&self, cost: f64) -> u32 {
        for t in 1..=self.max_iters {
            let marginal = self.perf(t) - self.perf(t - 1);
            if marginal < cost * self.gain {
                return t;
            }
        }
        self.max_iters
    }
}

/// Environment wrapping sampled log curves.
///
/// Actions: 0 = continue tuning, 1 = stop. Continuing yields the
/// normalized marginal perf gain minus a per-iteration cost; stopping ends
/// the episode. An agent maximizing return therefore learns to stop when
/// returns diminish — the RoTI-balancing objective.
#[derive(Debug, Clone)]
pub struct LogCurveEnv {
    /// Per-iteration tuning cost, as a fraction of total gain.
    pub step_cost: f64,
    max_iters: u32,
    rng: StdRng,
    curve: LogCurve,
    t: u32,
}

impl LogCurveEnv {
    /// Create with the given episode length and per-iteration cost.
    pub fn new(max_iters: u32, step_cost: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let curve = LogCurve::sample(max_iters, &mut rng);
        LogCurveEnv {
            step_cost,
            max_iters,
            rng,
            curve,
            t: 0,
        }
    }

    /// The state exposed to the agent: §III-D "the inputs are perf gained
    /// in the respective iteration and the number of iterations" (plus a
    /// short trend window). Everything is normalized by the gain observed
    /// *so far* — the only normalizer also available to the online agent,
    /// which cannot know a curve's final gain in advance.
    fn state(&self) -> Vec<f64> {
        let t = self.t;
        let start = self.curve.perf(0);
        let gained = (self.curve.perf(t) - start).max(start * 0.05).max(1e-9);
        let recent = if t >= 1 {
            (self.curve.perf(t) - self.curve.perf(t - 1)) / gained
        } else {
            0.0
        };
        let window = if t >= 5 {
            (self.curve.perf(t) - self.curve.perf(t - 5)) / gained
        } else {
            (self.curve.perf(t) - start) / gained
        };
        let relative_gain = (self.curve.perf(t) - start) / start.max(1e-9);
        vec![
            t as f64 / self.max_iters as f64,
            recent,
            window,
            relative_gain.min(8.0) / 8.0,
        ]
    }

    /// The curve currently being emulated (for tests/analysis).
    pub fn current_curve(&self) -> &LogCurve {
        &self.curve
    }
}

impl Env for LogCurveEnv {
    fn state_dim(&self) -> usize {
        4
    }

    fn n_actions(&self) -> usize {
        2
    }

    fn reset(&mut self) -> Vec<f64> {
        self.curve = LogCurve::sample(self.max_iters, &mut self.rng);
        self.t = 0;
        self.state()
    }

    fn step(&mut self, action: usize) -> StepResult {
        assert!(action < 2, "actions are continue(0) / stop(1)");
        if action == 1 || self.t >= self.max_iters {
            return StepResult {
                state: self.state(),
                reward: 0.0,
                done: true,
            };
        }
        let before = self.curve.perf(self.t);
        self.t += 1;
        let after = self.curve.perf(self.t);
        let marginal = (after - before) / self.curve.gain.max(1e-9);
        StepResult {
            state: self.state(),
            reward: marginal - self.step_cost,
            done: self.t >= self.max_iters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qlearn::{QAgent, QConfig};

    #[test]
    fn curves_are_log_shaped() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = LogCurve {
            start: 0.5,
            gain: 2.0,
            rate: 0.5,
            max_iters: 50,
            dips: vec![],
            delay: 0,
        };
        let _ = &mut rng;
        // Monotone without dips, with decaying marginal gains.
        let early_gain = c.perf(5) - c.perf(0);
        let late_gain = c.perf(50) - c.perf(45);
        assert!(early_gain > 3.0 * late_gain);
        assert!(c.perf(50) <= c.start + c.gain + 1e-9);
    }

    #[test]
    fn dips_are_transient() {
        let c = LogCurve {
            start: 0.5,
            gain: 2.0,
            rate: 0.5,
            max_iters: 50,
            dips: vec![(10, 0.3)],
            delay: 0,
        };
        assert!(c.perf(10) < c.perf(9), "dip pulls perf down");
        assert!(c.perf(11) > c.perf(10), "recovery after dip");
    }

    #[test]
    fn ideal_stop_is_before_budget_for_saturating_curves() {
        let c = LogCurve {
            start: 0.5,
            gain: 2.0,
            rate: 1.0,
            max_iters: 50,
            dips: vec![],
            delay: 0,
        };
        let stop = c.ideal_stop(0.01);
        assert!(stop > 5 && stop < 50, "ideal stop {stop}");
    }

    #[test]
    fn env_episode_runs_and_ends() {
        let mut env = LogCurveEnv::new(20, 0.01, 3);
        let s = env.reset();
        assert_eq!(s.len(), 4);
        let mut steps = 0;
        loop {
            let r = env.step(0);
            steps += 1;
            if r.done {
                break;
            }
        }
        assert_eq!(steps, 20);
        // Stop action terminates immediately after reset.
        env.reset();
        assert!(env.step(1).done);
    }

    #[test]
    fn trained_agent_stops_later_than_never_and_earlier_than_budget() {
        // Smoke-train a Q-agent on the emulator and check it learns a
        // non-degenerate stopping policy on fresh curves.
        let mut env = LogCurveEnv::new(30, 0.015, 11);
        let mut agent = QAgent::new(4, 2, QConfig::default(), 3);
        agent.train(&mut env, 700, 31);

        let mut eval_env = LogCurveEnv::new(30, 0.015, 999);
        let mut stops = Vec::new();
        for _ in 0..20 {
            let mut state = eval_env.reset();
            let mut t = 0;
            loop {
                let a = agent.best_action(&state);
                if a == 1 || t >= 30 {
                    break;
                }
                let r = eval_env.step(a);
                state = r.state;
                t += 1;
                if r.done {
                    break;
                }
            }
            stops.push(t);
        }
        let mean_stop = stops.iter().sum::<usize>() as f64 / stops.len() as f64;
        assert!(
            mean_stop > 2.0 && mean_stop < 30.0,
            "degenerate stopping policy: mean stop {mean_stop}"
        );
    }
}
