//! Gym-like environment trait.

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Next state observation.
    pub state: Vec<f64>,
    /// Reward for the transition.
    pub reward: f64,
    /// Whether the episode ended.
    pub done: bool,
}

/// A reinforcement-learning environment with a discrete action space.
pub trait Env {
    /// Dimension of state observations.
    fn state_dim(&self) -> usize;
    /// Number of discrete actions.
    fn n_actions(&self) -> usize;
    /// Start a new episode; returns the initial state.
    fn reset(&mut self) -> Vec<f64>;
    /// Apply `action`; returns the transition result.
    ///
    /// # Panics
    /// Implementations may panic if `action >= n_actions()` or if called
    /// after the episode is done without an intervening `reset`.
    fn step(&mut self, action: usize) -> StepResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-step corridor: action 1 finishes with reward 1.
    struct Corridor {
        pos: usize,
    }

    impl Env for Corridor {
        fn state_dim(&self) -> usize {
            1
        }
        fn n_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f64> {
            self.pos = 0;
            vec![0.0]
        }
        fn step(&mut self, action: usize) -> StepResult {
            assert!(action < 2);
            if action == 1 {
                StepResult {
                    state: vec![1.0],
                    reward: 1.0,
                    done: true,
                }
            } else {
                self.pos += 1;
                StepResult {
                    state: vec![self.pos as f64],
                    reward: -0.1,
                    done: self.pos >= 5,
                }
            }
        }
    }

    #[test]
    fn trait_object_usability() {
        let mut env: Box<dyn Env> = Box::new(Corridor { pos: 0 });
        let s0 = env.reset();
        assert_eq!(s0, vec![0.0]);
        let r = env.step(1);
        assert!(r.done);
        assert_eq!(r.reward, 1.0);
    }
}
