//! NN-based Q-learning agent with ε-greedy exploration and replay.

use crate::env::Env;
use crate::replay::{ReplayBuffer, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tunio_nn::{Activation, Network, Optimizer};
use tunio_trace as trace;

/// Hyperparameters for [`QAgent`].
#[derive(Debug, Clone, Copy)]
pub struct QConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// Initial exploration rate.
    pub epsilon_start: f64,
    /// Final exploration rate.
    pub epsilon_end: f64,
    /// Multiplicative ε decay per episode.
    pub epsilon_decay: f64,
    /// Learning rate of the Q-network.
    pub lr: f64,
    /// Hidden layer width.
    pub hidden: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Minibatch size per learning step.
    pub batch: usize,
    /// Use Double Q-learning (two networks, action selection and value
    /// estimation decoupled) to damp the max-operator's overestimation
    /// bias — useful when rewards are noisy, as tuning objectives are.
    pub double_q: bool,
}

impl Default for QConfig {
    fn default() -> Self {
        QConfig {
            gamma: 0.95,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay: 0.97,
            lr: 0.01,
            hidden: 24,
            replay_capacity: 4096,
            batch: 16,
            double_q: false,
        }
    }
}

/// A Q-learning agent whose action-value function is a dense network
/// (the "NN-based Q-Learning function" of §III-C).
#[derive(Debug, Clone)]
pub struct QAgent {
    net: Network,
    /// Second estimator for Double Q-learning (mirrors `net`'s shape).
    net_b: Option<Network>,
    n_actions: usize,
    cfg: QConfig,
    /// Current exploration rate.
    pub epsilon: f64,
    replay: ReplayBuffer,
    rng: StdRng,
}

impl QAgent {
    /// Create an agent for `state_dim`-dimensional states and `n_actions`
    /// discrete actions.
    pub fn new(state_dim: usize, n_actions: usize, cfg: QConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(
            &[state_dim, cfg.hidden, n_actions],
            &[Activation::Tanh, Activation::Linear],
            Optimizer::Adam { lr: cfg.lr },
            &mut rng,
        );
        let net_b = cfg.double_q.then(|| {
            Network::new(
                &[state_dim, cfg.hidden, n_actions],
                &[Activation::Tanh, Activation::Linear],
                Optimizer::Adam { lr: cfg.lr },
                &mut rng,
            )
        });
        QAgent {
            net,
            net_b,
            n_actions,
            cfg,
            epsilon: cfg.epsilon_start,
            replay: ReplayBuffer::new(cfg.replay_capacity),
            rng,
        }
    }

    /// Q-values for a state (mean of both estimators under Double Q).
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        match &self.net_b {
            None => self.net.forward(state),
            Some(b) => {
                let qa = self.net.forward(state);
                let qb = b.forward(state);
                qa.iter().zip(&qb).map(|(x, y)| 0.5 * (x + y)).collect()
            }
        }
    }

    /// Export the Q-network weights as JSON (for persisting pre-trained
    /// agents across processes).
    pub fn export_json(&self) -> String {
        serde_json::to_string(&(&self.net, &self.net_b)).expect("networks serialize")
    }

    /// Restore Q-network weights exported with [`Self::export_json`].
    /// Exploration state and replay contents are not persisted.
    pub fn import_json(&mut self, json: &str) -> Result<(), String> {
        let (net, net_b): (Network, Option<Network>) =
            serde_json::from_str(json).map_err(|e| e.to_string())?;
        if net.input_dim() != self.net.input_dim() || net.output_dim() != self.net.output_dim() {
            return Err("network shape mismatch".into());
        }
        self.net = net;
        self.net_b = net_b;
        Ok(())
    }

    /// Greedy action (argmax Q).
    pub fn best_action(&self, state: &[f64]) -> usize {
        let q = self.q_values(state);
        q.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// ε-greedy action selection.
    pub fn act(&mut self, state: &[f64]) -> usize {
        if self.rng.gen_bool(self.epsilon.clamp(0.0, 1.0)) {
            self.rng.gen_range(0..self.n_actions)
        } else {
            self.best_action(state)
        }
    }

    /// Record a transition and learn from a replay minibatch.
    ///
    /// This is the per-step hot path (offline pre-training calls it on
    /// the order of 10⁵ times), so it only touches atomic metrics —
    /// never per-step trace events.
    pub fn observe(&mut self, t: Transition) {
        trace::counter("tunio.rl.observations").inc(1);
        trace::histogram("tunio.rl.reward").record(t.reward);
        self.replay.push(t);
        self.learn_batch();
    }

    /// One TD(0) learning sweep over a sampled minibatch.
    fn learn_batch(&mut self) {
        if self.replay.is_empty() {
            return;
        }
        let batch: Vec<Transition> = {
            let sampled = self.replay.sample(self.cfg.batch, &mut self.rng);
            sampled.into_iter().cloned().collect()
        };
        for t in batch {
            match &mut self.net_b {
                None => {
                    let mut target_q = self.net.forward(&t.state);
                    let future = if t.done || t.next_state.is_empty() {
                        0.0
                    } else {
                        self.net
                            .forward(&t.next_state)
                            .into_iter()
                            .fold(f64::NEG_INFINITY, f64::max)
                    };
                    target_q[t.action] = t.reward + self.cfg.gamma * future;
                    self.net.train_step(&t.state, &target_q);
                }
                Some(net_b) => {
                    // Double Q: randomly pick which network to update; the
                    // *other* network evaluates the argmax action.
                    let update_a = self.rng.gen_bool(0.5);
                    let (upd, eval): (&mut Network, &Network) = if update_a {
                        (&mut self.net, net_b)
                    } else {
                        (net_b, &self.net)
                    };
                    let mut target_q = upd.forward(&t.state);
                    let future = if t.done || t.next_state.is_empty() {
                        0.0
                    } else {
                        let q_upd = upd.forward(&t.next_state);
                        let argmax = q_upd
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        eval.forward(&t.next_state)[argmax]
                    };
                    target_q[t.action] = t.reward + self.cfg.gamma * future;
                    upd.train_step(&t.state, &target_q);
                }
            }
        }
    }

    /// Decay ε at episode end.
    pub fn end_episode(&mut self) {
        self.epsilon = (self.epsilon * self.cfg.epsilon_decay).max(self.cfg.epsilon_end);
    }

    /// Train on `env` for `episodes` episodes of at most `max_steps`;
    /// returns the per-episode total rewards.
    pub fn train(&mut self, env: &mut dyn Env, episodes: usize, max_steps: usize) -> Vec<f64> {
        let mut returns = Vec::with_capacity(episodes);
        for _ in 0..episodes {
            let mut state = env.reset();
            let mut total = 0.0;
            for _ in 0..max_steps {
                let action = self.act(&state);
                let step = env.step(action);
                total += step.reward;
                self.observe(Transition {
                    state: state.clone(),
                    action,
                    reward: step.reward,
                    next_state: step.state.clone(),
                    done: step.done,
                });
                state = step.state;
                if step.done {
                    break;
                }
            }
            self.end_episode();
            returns.push(total);
        }
        // One event per train() call, not per step: a pre-training round
        // of 40 episodes × 50 steps collapses into a single record.
        if trace::enabled() {
            let mean = if returns.is_empty() {
                0.0
            } else {
                returns.iter().sum::<f64>() / returns.len() as f64
            };
            trace::event(
                "rl.train.round",
                vec![
                    ("episodes", episodes.into()),
                    ("mean_return", mean.into()),
                    ("epsilon", self.epsilon.into()),
                ],
            );
        }
        returns
    }

    /// Greedy rollout (no exploration, no learning); returns total reward.
    pub fn evaluate(&self, env: &mut dyn Env, max_steps: usize) -> f64 {
        let mut state = env.reset();
        let mut total = 0.0;
        for _ in 0..max_steps {
            let action = self.best_action(&state);
            let step = env.step(action);
            total += step.reward;
            state = step.state;
            if step.done {
                break;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::StepResult;

    /// Two-armed bandit: action 1 pays 1.0, action 0 pays 0.1.
    struct Bandit;

    impl Env for Bandit {
        fn state_dim(&self) -> usize {
            1
        }
        fn n_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f64> {
            vec![0.0]
        }
        fn step(&mut self, action: usize) -> StepResult {
            StepResult {
                state: vec![0.0],
                reward: if action == 1 { 1.0 } else { 0.1 },
                done: true,
            }
        }
    }

    /// Chain of length 3 where only repeatedly choosing action 0 reaches a
    /// terminal payoff — requires credit assignment through γ.
    struct Chain {
        pos: usize,
    }

    impl Env for Chain {
        fn state_dim(&self) -> usize {
            1
        }
        fn n_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f64> {
            self.pos = 0;
            vec![0.0]
        }
        fn step(&mut self, action: usize) -> StepResult {
            if action == 1 {
                // bail out early with a small payoff
                return StepResult {
                    state: vec![self.pos as f64 / 3.0],
                    reward: 0.2,
                    done: true,
                };
            }
            self.pos += 1;
            if self.pos >= 3 {
                StepResult {
                    state: vec![1.0],
                    reward: 2.0,
                    done: true,
                }
            } else {
                StepResult {
                    state: vec![self.pos as f64 / 3.0],
                    reward: 0.0,
                    done: false,
                }
            }
        }
    }

    #[test]
    fn learns_bandit_optimum() {
        let mut agent = QAgent::new(1, 2, QConfig::default(), 42);
        agent.train(&mut Bandit, 150, 1);
        assert_eq!(agent.best_action(&[0.0]), 1);
    }

    #[test]
    fn learns_delayed_credit_in_chain() {
        let cfg = QConfig {
            epsilon_decay: 0.99,
            ..QConfig::default()
        };
        let mut agent = QAgent::new(1, 2, cfg, 7);
        agent.train(&mut Chain { pos: 0 }, 400, 10);
        let reward = agent.evaluate(&mut Chain { pos: 0 }, 10);
        assert!(reward > 1.5, "greedy return {reward}");
    }

    #[test]
    fn epsilon_decays_to_floor() {
        let mut agent = QAgent::new(1, 2, QConfig::default(), 0);
        for _ in 0..1000 {
            agent.end_episode();
        }
        assert!((agent.epsilon - 0.05).abs() < 1e-9);
    }

    #[test]
    fn q_values_have_action_arity() {
        let agent = QAgent::new(3, 4, QConfig::default(), 1);
        assert_eq!(agent.q_values(&[0.0, 0.0, 0.0]).len(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut agent = QAgent::new(1, 2, QConfig::default(), 99);
            agent.train(&mut Bandit, 30, 1);
            agent.q_values(&[0.0])
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod double_q_tests {
    use super::*;
    use crate::env::StepResult;
    use crate::logcurve::LogCurveEnv;

    /// Noisy two-armed bandit: arm 1's mean is higher but variance large.
    struct NoisyBandit {
        rng: StdRng,
    }

    impl Env for NoisyBandit {
        fn state_dim(&self) -> usize {
            1
        }
        fn n_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f64> {
            vec![0.0]
        }
        fn step(&mut self, action: usize) -> StepResult {
            let noise: f64 = self.rng.gen_range(-0.5..0.5);
            let reward = if action == 1 {
                0.6 + noise
            } else {
                0.4 + noise
            };
            StepResult {
                state: vec![0.0],
                reward,
                done: true,
            }
        }
    }

    #[test]
    fn double_q_learns_the_noisy_bandit() {
        let cfg = QConfig {
            double_q: true,
            ..QConfig::default()
        };
        let mut agent = QAgent::new(1, 2, cfg, 11);
        let mut env = NoisyBandit {
            rng: StdRng::seed_from_u64(1),
        };
        agent.train(&mut env, 400, 1);
        assert_eq!(agent.best_action(&[0.0]), 1);
    }

    #[test]
    fn double_q_trains_on_log_curves() {
        let cfg = QConfig {
            double_q: true,
            ..QConfig::default()
        };
        let mut agent = QAgent::new(4, 2, cfg, 3);
        let mut env = LogCurveEnv::new(20, 0.02, 5);
        let returns = agent.train(&mut env, 100, 21);
        assert_eq!(returns.len(), 100);
        assert!(returns.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn weights_round_trip_through_json() {
        let a = QAgent::new(3, 2, QConfig::default(), 7);
        // Train a little so weights are non-trivial.
        let mut env = NoisyBandit {
            rng: StdRng::seed_from_u64(2),
        };
        let mut trainer = QAgent::new(1, 2, QConfig::default(), 8);
        trainer.train(&mut env, 20, 1);

        let json = a.export_json();
        let before = a.q_values(&[0.1, 0.2, 0.3]);
        let mut b = QAgent::new(3, 2, QConfig::default(), 999);
        assert_ne!(b.q_values(&[0.1, 0.2, 0.3]), before);
        b.import_json(&json).unwrap();
        assert_eq!(b.q_values(&[0.1, 0.2, 0.3]), before);
    }

    #[test]
    fn import_rejects_shape_mismatch() {
        let a = QAgent::new(3, 2, QConfig::default(), 1);
        let mut b = QAgent::new(4, 2, QConfig::default(), 2);
        assert!(b.import_json(&a.export_json()).is_err());
        assert!(b.import_json("not json").is_err());
    }
}
