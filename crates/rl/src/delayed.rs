//! Delayed reward assignment.
//!
//! Both TunIO agents use "a 5-iteration delay on the reward function to
//! avoid bias introduced by short-term gains" (§III-C, §III-D): the reward
//! credited to an action is the one observed `delay` steps later, so
//! transient dips and spikes do not immediately punish or reward a choice.

use crate::replay::Transition;
use std::collections::VecDeque;

/// Buffers transitions and releases them once their delayed reward is
/// known.
#[derive(Debug, Clone)]
pub struct DelayedReward {
    delay: usize,
    pending: VecDeque<Transition>,
    rewards: VecDeque<f64>,
}

impl DelayedReward {
    /// Create with the paper's default delay of 5 when `delay == 5`.
    pub fn new(delay: usize) -> Self {
        DelayedReward {
            delay,
            pending: VecDeque::new(),
            rewards: VecDeque::new(),
        }
    }

    /// Record a transition whose immediate reward is `t.reward`; returns
    /// any transition whose delayed reward has now matured (its reward is
    /// replaced with the reward observed `delay` steps after it).
    pub fn push(&mut self, t: Transition) -> Option<Transition> {
        self.rewards.push_back(t.reward);
        self.pending.push_back(t);
        if self.pending.len() > self.delay {
            let mut matured = self.pending.pop_front().expect("non-empty");
            // Reward observed `delay` steps later — the newest reward.
            matured.reward = *self.rewards.back().expect("non-empty");
            self.rewards.pop_front();
            Some(matured)
        } else {
            None
        }
    }

    /// Flush remaining transitions at episode end, crediting each with the
    /// final observed reward.
    pub fn flush(&mut self) -> Vec<Transition> {
        let final_reward = self.rewards.back().copied().unwrap_or(0.0);
        let mut out: Vec<Transition> = self.pending.drain(..).collect();
        for t in &mut out {
            t.reward = final_reward;
            t.done = true;
        }
        self.rewards.clear();
        out
    }

    /// Number of transitions still awaiting maturity.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(reward: f64) -> Transition {
        Transition {
            state: vec![reward],
            action: 0,
            reward,
            next_state: vec![],
            done: false,
        }
    }

    #[test]
    fn delays_by_k_steps() {
        let mut d = DelayedReward::new(2);
        assert!(d.push(t(1.0)).is_none());
        assert!(d.push(t(2.0)).is_none());
        // Third push matures the first transition with the newest reward.
        let matured = d.push(t(3.0)).unwrap();
        assert_eq!(matured.state, vec![1.0]);
        assert_eq!(matured.reward, 3.0);
        assert_eq!(d.pending_len(), 2);
    }

    #[test]
    fn flush_credits_final_reward() {
        let mut d = DelayedReward::new(5);
        d.push(t(1.0));
        d.push(t(2.0));
        d.push(t(9.0));
        let flushed = d.flush();
        assert_eq!(flushed.len(), 3);
        assert!(flushed.iter().all(|x| x.reward == 9.0 && x.done));
        assert_eq!(d.pending_len(), 0);
    }

    #[test]
    fn zero_delay_matures_next_push() {
        let mut d = DelayedReward::new(0);
        let m = d.push(t(4.0)).unwrap();
        assert_eq!(m.reward, 4.0);
    }
}
