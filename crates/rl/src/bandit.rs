//! NN contextual-bandit state observer.
//!
//! §III-C: "The agent uses a State Observer, created using a Neural
//! Network-based context bandit. The observer uses the inputs provided to
//! the RL agent to produce a state observation which represents a
//! relationship between the application and the tuning environment."
//!
//! Implementation: a small regression network is trained online to predict
//! the (normalized) perf from the raw context; its hidden-layer activations
//! are the learned state observation handed to the Subset Picker.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tunio_nn::{Activation, Network, Optimizer};

/// Contextual state observer.
#[derive(Debug, Clone)]
pub struct ContextObserver {
    /// Embedding network: context → hidden → predicted perf.
    embed: Network,
    /// Readout head dimension (the observation size).
    obs_dim: usize,
}

impl ContextObserver {
    /// Build an observer for `context_dim` inputs producing `obs_dim`
    /// observations.
    pub fn new(context_dim: usize, obs_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // context → observation (tanh) — trained through a linear head.
        let embed = Network::new(
            &[context_dim, obs_dim],
            &[Activation::Tanh],
            Optimizer::Adam { lr: 0.02 },
            &mut rng,
        );
        ContextObserver { embed, obs_dim }
    }

    /// Dimension of produced observations.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Produce the state observation for a context.
    pub fn observe(&self, context: &[f64]) -> Vec<f64> {
        self.embed.forward(context)
    }

    /// Online update: teach the observer that `context` was followed by
    /// normalized performance `norm_perf` (broadcast across observation
    /// dimensions, which shapes the embedding to be perf-sensitive).
    pub fn learn(&mut self, context: &[f64], norm_perf: f64) -> f64 {
        let target = vec![norm_perf.clamp(-1.0, 1.0); self.obs_dim];
        self.embed.train_step(context, &target)
    }

    /// Export the embedding weights as JSON.
    pub fn export_json(&self) -> String {
        serde_json::to_string(&self.embed).expect("network serializes")
    }

    /// Restore weights exported with [`Self::export_json`].
    pub fn import_json(&mut self, json: &str) -> Result<(), String> {
        let net: tunio_nn::Network = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if net.output_dim() != self.obs_dim {
            return Err("observer shape mismatch".into());
        }
        self.embed = net;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_dimension() {
        let obs = ContextObserver::new(4, 6, 0);
        assert_eq!(obs.obs_dim(), 6);
        assert_eq!(obs.observe(&[0.0; 4]).len(), 6);
    }

    #[test]
    fn observations_bounded_by_tanh() {
        let obs = ContextObserver::new(3, 5, 1);
        for v in obs.observe(&[100.0, -50.0, 3.0]) {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn learning_separates_good_and_bad_contexts() {
        let mut obs = ContextObserver::new(2, 4, 2);
        // Context [1,0] is good (perf 0.9); [0,1] is bad (perf 0.1).
        for _ in 0..400 {
            obs.learn(&[1.0, 0.0], 0.9);
            obs.learn(&[0.0, 1.0], 0.1);
        }
        let good: f64 = obs.observe(&[1.0, 0.0]).iter().sum();
        let bad: f64 = obs.observe(&[0.0, 1.0]).iter().sum();
        assert!(good > bad, "good {good} should exceed bad {bad}");
    }

    #[test]
    fn learn_returns_decreasing_loss() {
        let mut obs = ContextObserver::new(2, 3, 3);
        let first = obs.learn(&[0.5, 0.5], 0.7);
        let mut last = first;
        for _ in 0..200 {
            last = obs.learn(&[0.5, 0.5], 0.7);
        }
        assert!(last < first, "loss should shrink: {last} vs {first}");
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn observer_weights_round_trip() {
        let mut a = ContextObserver::new(3, 4, 1);
        for _ in 0..50 {
            a.learn(&[0.2, 0.4, 0.6], 0.8);
        }
        let obs = a.observe(&[0.2, 0.4, 0.6]);
        let mut b = ContextObserver::new(3, 4, 99);
        assert_ne!(b.observe(&[0.2, 0.4, 0.6]), obs);
        b.import_json(&a.export_json()).unwrap();
        // JSON float round-trips can differ in the last ULP.
        for (x, y) in b.observe(&[0.2, 0.4, 0.6]).iter().zip(&obs) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
        // Shape mismatch rejected.
        let mut c = ContextObserver::new(3, 5, 0);
        assert!(c.import_json(&a.export_json()).is_err());
    }
}
