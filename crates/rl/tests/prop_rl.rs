//! Property-based tests: replay buffer, delayed reward and log-curve
//! invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tunio_rl::logcurve::LogCurve;
use tunio_rl::replay::{ReplayBuffer, Transition};
use tunio_rl::DelayedReward;

fn transition(reward: f64) -> Transition {
    Transition {
        state: vec![reward],
        action: 0,
        reward,
        next_state: vec![],
        done: false,
    }
}

proptest! {
    #[test]
    fn replay_never_exceeds_capacity(
        capacity in 1usize..64,
        pushes in proptest::collection::vec(any::<f64>(), 0..200),
    ) {
        let mut buf = ReplayBuffer::new(capacity);
        for (i, r) in pushes.iter().enumerate() {
            buf.push(transition(*r));
            prop_assert!(buf.len() <= capacity);
            prop_assert_eq!(buf.len(), (i + 1).min(capacity));
        }
    }

    #[test]
    fn replay_sampling_returns_requested_count(
        capacity in 1usize..32,
        n_push in 1usize..64,
        n_sample in 0usize..64,
        seed in any::<u64>(),
    ) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..n_push {
            buf.push(transition(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = buf.sample(n_sample, &mut rng);
        prop_assert_eq!(sample.len(), n_sample.min(if buf.is_empty() { 0 } else { n_sample }));
    }

    #[test]
    fn delayed_reward_conserves_transitions(
        delay in 0usize..10,
        rewards in proptest::collection::vec(-1.0f64..1.0, 0..50),
    ) {
        let mut d = DelayedReward::new(delay);
        let mut released = 0;
        for r in &rewards {
            if d.push(transition(*r)).is_some() {
                released += 1;
            }
        }
        let flushed = d.flush();
        prop_assert_eq!(released + flushed.len(), rewards.len());
        prop_assert_eq!(d.pending_len(), 0);
    }

    #[test]
    fn matured_rewards_are_future_rewards(
        rewards in proptest::collection::vec(-10.0f64..10.0, 6..40),
    ) {
        let delay = 5;
        let mut d = DelayedReward::new(delay);
        for (i, r) in rewards.iter().enumerate() {
            if let Some(m) = d.push(transition(*r)) {
                // The matured transition was pushed `delay` steps ago and
                // carries the newest reward.
                let original_index = i - delay;
                prop_assert_eq!(m.state[0], rewards[original_index]);
                prop_assert_eq!(m.reward, rewards[i]);
            }
        }
    }

    #[test]
    fn log_curves_are_monotone_without_dips(
        start in 0.1f64..2.0,
        gain in 0.1f64..5.0,
        rate in 0.05f64..2.0,
        delay in 0u32..15,
    ) {
        let c = LogCurve { start, gain, rate, max_iters: 50, dips: vec![], delay };
        for t in 1..=50u32 {
            prop_assert!(
                c.perf(t) >= c.perf(t - 1) - 1e-12,
                "curve decreased at t={t}"
            );
        }
        // Bounded by start + gain.
        prop_assert!(c.perf(50) <= start + gain + 1e-9);
        // Flat during the delay window.
        if delay > 1 {
            prop_assert!((c.perf(delay - 1) - c.perf(0)).abs() < 1e-12);
        }
    }

    #[test]
    fn ideal_stop_is_within_budget(
        start in 0.1f64..2.0,
        gain in 0.1f64..5.0,
        rate in 0.05f64..2.0,
        cost in 0.001f64..0.2,
    ) {
        let c = LogCurve { start, gain, rate, max_iters: 40, dips: vec![], delay: 0 };
        let stop = c.ideal_stop(cost);
        prop_assert!((1..=40).contains(&stop));
    }
}
