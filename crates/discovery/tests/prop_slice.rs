//! Property tests for the dataflow slicer: whatever discovery drops, the
//! kernel's I/O behavior must be untouched. The invariant checked here is
//! that the *static I/O call trace* — every I/O call in statement order
//! with its argument variables — of the reconstructed kernel equals the
//! original program's.

use proptest::prelude::*;
use tunio_cminus::parser::parse;
use tunio_discovery::slicing::{io_call_trace, mark_program_dataflow};
use tunio_discovery::{mark_program, reconstruct};

/// A small shared variable pool so generated programs form def-use
/// chains (and occasionally shadow each other) instead of being
/// independent statements.
fn var() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b"), Just("buf"), Just("count"), Just("x"),]
}

fn simple_stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        (var(), var()).prop_map(|(v, u)| format!("int {v} = seed({u});")),
        (var(), var()).prop_map(|(v, u)| format!("{v} = mix({u});")),
        var().prop_map(|v| format!("{v} = {v} + 1;")),
        var().prop_map(|v| format!("H5Dwrite(dset, {v});")),
        (var(), var()).prop_map(|(v, u)| format!("fwrite({v}, 1, {u}, fp);")),
        var().prop_map(|v| format!("printf(\"%d\", {v});")),
        var().prop_map(|v| format!("crunch({v});")),
        Just("int rc = H5Fclose(fh);".to_string()),
    ]
}

/// A statement, possibly a control structure with a nested body.
fn stmt(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        return simple_stmt().boxed();
    }
    let body = proptest::collection::vec(stmt(depth - 1), 1..4)
        .prop_map(|stmts| stmts.join("\n"))
        .boxed();
    prop_oneof![
        simple_stmt(),
        (var(), body.clone()).prop_map(|(v, body)| format!("if ({v} > 0) {{\n{body}\n}}")),
        (var(), body.clone())
            .prop_map(|(v, body)| format!("for (int i = 0; i < {v}; i++) {{\n{body}\n}}")),
        (var(), body).prop_map(|(v, body)| format!("while (check({v})) {{\n{body}\n}}")),
    ]
    .boxed()
}

fn program_source() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt(2), 1..8)
        .prop_map(|stmts| format!("void generated(int n) {{\n{}\n}}", stmts.join("\n")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The dataflow slice may drop dead stores and shadowed same-name
    /// stores, but never an I/O call or any argument it passes.
    #[test]
    fn dataflow_kernel_preserves_io_call_trace(src in program_source()) {
        let prog = parse(&src)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{src}")))?;
        let marking = mark_program_dataflow(&prog);
        let kernel = reconstruct(&prog, &marking);
        prop_assert_eq!(io_call_trace(&prog), io_call_trace(&kernel), "{}", src);
    }

    /// The legacy syntactic pass upholds the same invariant (it only
    /// over-keeps, never under-keeps I/O).
    #[test]
    fn syntactic_kernel_preserves_io_call_trace(src in program_source()) {
        let prog = parse(&src)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{src}")))?;
        let marking = mark_program(&prog);
        let kernel = reconstruct(&prog, &marking);
        prop_assert_eq!(io_call_trace(&prog), io_call_trace(&kernel), "{}", src);
    }

    /// Both passes agree exactly on what the I/O seeds are — they differ
    /// only in which *supporting* statements they keep.
    #[test]
    fn both_passes_find_the_same_seeds(src in program_source()) {
        let prog = parse(&src)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{src}")))?;
        let old = mark_program(&prog);
        let new = mark_program_dataflow(&prog);
        prop_assert_eq!(old.io_seeds, new.io_seeds, "{}", src);
        // And the slicer's kept set always covers the seeds.
        prop_assert!(new.io_seeds.iter().all(|s| new.kept.contains(s)));
    }
}
