//! Golden-output regression test for static workload inference.
//!
//! Runs `tunio_discovery::infer_program` over every built-in sample and
//! renders each inferred workload — the symbolic prediction, the default
//! parameter bindings, the lowered spec and the distilled feature vector
//! — into one deterministic text snapshot under `tests/golden/`. Any
//! change to the abstract interpreter, the lowering or the binding
//! heuristic shows up as a reviewable diff here.
//!
//! When a change intentionally moves the output, re-bless with:
//!
//! ```text
//! TUNIO_BLESS=1 cargo test -p tunio-discovery --test golden_infer
//! ```
//!
//! and commit the updated snapshot together with the change.

use std::fmt::Write as _;
use std::path::PathBuf;
use tunio_cminus::parser::parse;
use tunio_cminus::samples;
use tunio_discovery::{infer_program, InferredWorkload};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("TUNIO_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             TUNIO_BLESS=1 cargo test -p tunio-discovery --test golden_infer",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden inference output {name} diverged; if the change is intentional, re-bless \
         with TUNIO_BLESS=1 cargo test -p tunio-discovery --test golden_infer"
    );
}

fn render_inference(out: &mut String, iw: &InferredWorkload) {
    let p = &iw.prediction;
    writeln!(
        out,
        "entry {}({})  confidence {:.2}",
        p.entry,
        p.params.join(", "),
        p.confidence
    )
    .unwrap();
    writeln!(out, "  loop iterations : {}", p.loop_iterations.render()).unwrap();
    writeln!(
        out,
        "  meta            : setup={} loop={}",
        p.meta_setup.render(),
        p.meta_loop.render()
    )
    .unwrap();
    writeln!(
        out,
        "  logging         : setup={} loop={}",
        p.logging_setup.render(),
        p.logging_loop.render()
    )
    .unwrap();
    for (i, site) in p.sites.iter().enumerate() {
        writeln!(
            out,
            "  site[{i}] {} -> {}  {:?} pattern={}{}  bytes/op={} ops={}  conf {:.2}  volume {} B",
            site.call,
            if site.target.is_empty() {
                "<anon>"
            } else {
                &site.target
            },
            site.dir,
            site.pattern.label(),
            if site.collective { " collective" } else { "" },
            site.bytes_per_op.render(),
            site.ops.render(),
            site.confidence,
            site.volume_bytes(&iw.bindings),
        )
        .unwrap();
    }
    let binds: Vec<String> = iw
        .bindings
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    writeln!(out, "  bindings        : {}", binds.join(" ")).unwrap();
    let s = &iw.spec;
    writeln!(
        out,
        "  spec            : iters={} setup_meta={} logging={}x{}B",
        s.loop_iterations, s.setup_meta_ops, s.logging_ops_per_iteration, s.logging_bytes_per_op
    )
    .unwrap();
    for (i, io) in s.iteration_io.iter().enumerate() {
        writeln!(
            out,
            "  io[{i}]           : {} {:?} {:?} {} B/iter x {} ops, meta {}{}",
            io.dataset,
            io.kind,
            io.pattern,
            io.per_proc_bytes,
            io.ops_per_proc,
            io.meta_ops,
            if io.collective_capable {
                ", collective-capable"
            } else {
                ""
            },
        )
        .unwrap();
    }
    let f = &iw.features;
    writeln!(
        out,
        "  features        : total={} B read={:.3} req={:.1} coll={:.3} rand={:.3} \
         strided={:.3} meta={:.3} conf={:.2}",
        f.total_bytes,
        f.read_fraction,
        f.mean_request_bytes,
        f.collective_fraction,
        f.random_fraction,
        f.strided_fraction,
        f.metadata_ratio,
        f.confidence
    )
    .unwrap();
}

/// Full inference dump over every sample, byte-compared to the snapshot.
#[test]
fn sample_inference_matches_golden() {
    let mut out = String::new();
    for (name, src) in samples::all_samples() {
        let program = parse(src).expect("samples parse");
        writeln!(out, "== {name} ==").unwrap();
        for iw in infer_program(&program, &std::collections::BTreeMap::new()) {
            render_inference(&mut out, &iw);
        }
    }
    check_golden("sample_inference.txt", &out);
}
