//! Concrete (dynamic) replay of a C-minus program's I/O.
//!
//! A small tree-walking interpreter that executes an entry function under
//! concrete integer parameter bindings and records every I/O operation:
//! per-site operation counts, bytes moved, request sizes and file
//! offsets. This is the *ground truth* the static workload model
//! ([`tunio_analysis::iomodel`]) is scored against in [`crate::accuracy`].
//!
//! The interpreter deliberately models externs with the **same
//! convention** the abstract interpreter uses (`alloc*` returns a fresh
//! buffer of `arg0` elements, `rand*` returns an unpredictable value —
//! here a deterministic splitmix64 stream — any other unknown extern
//! returns `0` and passes its first pointer argument through), so any
//! disagreement between the two paths is the analysis being *imprecise*,
//! never the two sides speaking different languages.

use std::collections::BTreeMap;

use tunio_analysis::interp::{elem_size_of_type, handle_api, is_alloc_fn, is_rand_fn};
use tunio_analysis::iomodel::{api_of, Direction, IoApi};
use tunio_cminus::ast::{Block, Expr, Function, Program, Stmt, StmtId, StmtKind};

/// Statement-execution budget; replays beyond it are truncated.
const MAX_STEPS: u64 = 10_000_000;

/// Call-depth budget for defined-function recursion.
const MAX_DEPTH: usize = 64;

/// Observed behaviour of one I/O call site during a replay.
#[derive(Debug, Clone)]
pub struct SiteObs {
    /// The call statement.
    pub stmt: StmtId,
    /// Callee name.
    pub call: String,
    /// Data direction.
    pub dir: Direction,
    /// Operations executed.
    pub ops: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Request size of each operation, in order.
    pub req_sizes: Vec<u64>,
    /// File offset of each operation, in order.
    pub offsets: Vec<i64>,
    /// Whether the call is collective-capable.
    pub collective: bool,
    /// Whether any operation followed an explicit seek.
    pub seeked: bool,
}

impl SiteObs {
    /// Classify the observed offset sequence: `"collective"`,
    /// `"sequential"`, `"strided"` or `"random"` — the same vocabulary
    /// [`tunio_analysis::iomodel::PredPattern::label`] uses.
    pub fn observed_pattern(&self) -> &'static str {
        if self.collective {
            return "collective";
        }
        if self.offsets.len() < 2 {
            return "sequential";
        }
        let deltas: Vec<i64> = self.offsets.windows(2).map(|w| w[1] - w[0]).collect();
        let first = deltas[0];
        if deltas.iter().any(|d| *d != first) {
            return "random";
        }
        let req = self.req_sizes.first().copied().unwrap_or(0) as i64;
        if first == req || !self.seeked {
            "sequential"
        } else {
            "strided"
        }
    }

    /// The constant stride in bytes, when the pattern is strided.
    pub fn observed_stride(&self) -> Option<u64> {
        if self.observed_pattern() == "strided" {
            Some((self.offsets[1] - self.offsets[0]).unsigned_abs())
        } else {
            None
        }
    }
}

/// Everything observed while replaying one entry function.
#[derive(Debug, Clone)]
pub struct DynTrace {
    /// Entry function replayed.
    pub entry: String,
    /// Concrete parameter bindings used.
    pub bindings: BTreeMap<String, i64>,
    /// Per-site observations, keyed by call statement.
    pub sites: BTreeMap<StmtId, SiteObs>,
    /// Total data bytes moved (reads + writes).
    pub total_bytes: u64,
    /// Metadata operations executed.
    pub meta_ops: u64,
    /// Logging operations executed.
    pub logging_ops: u64,
    /// Statements executed.
    pub steps: u64,
    /// Whether the step budget truncated the replay.
    pub truncated: bool,
}

#[derive(Debug, Clone, Default)]
struct CVal {
    num: i64,
    buf: Option<usize>,
    handle: Option<usize>,
}

impl CVal {
    fn num(n: i64) -> CVal {
        CVal {
            num: n,
            ..CVal::default()
        }
    }
}

struct BufferRt {
    bytes: u64,
}

struct HandleRt {
    cursor: i64,
    seeked: bool,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(CVal),
}

struct Exec<'p> {
    prog: &'p Program,
    buffers: Vec<BufferRt>,
    handles: Vec<HandleRt>,
    trace: DynTrace,
    rng: u64,
    /// Statement whose expression is currently being evaluated — the
    /// site id data operations are attributed to.
    current_stmt: StmtId,
}

/// Deterministic splitmix64 step (the interpreter's `rand*`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<'p> Exec<'p> {
    fn function(&self, name: &str) -> Option<&'p Function> {
        self.prog.functions.iter().find(|f| f.name == name)
    }

    fn step(&mut self) -> bool {
        self.trace.steps += 1;
        if self.trace.steps > MAX_STEPS {
            self.trace.truncated = true;
            return false;
        }
        true
    }

    fn eval(&mut self, expr: &Expr, env: &mut BTreeMap<String, CVal>, depth: usize) -> CVal {
        match expr {
            Expr::Int(n) => CVal::num(*n),
            Expr::Float(text) => CVal::num(text.parse::<f64>().unwrap_or(0.0) as i64),
            Expr::Str(_) | Expr::Char(_) => CVal::num(0),
            Expr::Ident(name) => env.get(name).cloned().unwrap_or_default(),
            Expr::Call { name, args } => self.call(name, args, env, depth),
            Expr::Binary { op, lhs, rhs } => {
                if op == "&&" {
                    let l = self.eval(lhs, env, depth);
                    if l.num == 0 {
                        return CVal::num(0);
                    }
                    let r = self.eval(rhs, env, depth);
                    return CVal::num((r.num != 0) as i64);
                }
                if op == "||" {
                    let l = self.eval(lhs, env, depth);
                    if l.num != 0 {
                        return CVal::num(1);
                    }
                    let r = self.eval(rhs, env, depth);
                    return CVal::num((r.num != 0) as i64);
                }
                let l = self.eval(lhs, env, depth);
                let r = self.eval(rhs, env, depth);
                let n = match op.as_str() {
                    "+" => l.num.wrapping_add(r.num),
                    "-" => l.num.wrapping_sub(r.num),
                    "*" => l.num.wrapping_mul(r.num),
                    "/" => {
                        if r.num == 0 {
                            0
                        } else {
                            l.num.wrapping_div(r.num)
                        }
                    }
                    "%" => {
                        if r.num == 0 {
                            0
                        } else {
                            l.num.wrapping_rem(r.num)
                        }
                    }
                    "<" => (l.num < r.num) as i64,
                    "<=" => (l.num <= r.num) as i64,
                    ">" => (l.num > r.num) as i64,
                    ">=" => (l.num >= r.num) as i64,
                    "==" => (l.num == r.num) as i64,
                    "!=" => (l.num != r.num) as i64,
                    _ => 0,
                };
                CVal {
                    num: n,
                    // Pointer arithmetic keeps the buffer identity.
                    buf: l.buf.or(r.buf),
                    handle: l.handle.or(r.handle),
                }
            }
            Expr::Unary { op, operand } => match op.as_str() {
                "-" => {
                    let v = self.eval(operand, env, depth);
                    CVal::num(v.num.wrapping_neg())
                }
                "!" => {
                    let v = self.eval(operand, env, depth);
                    CVal::num((v.num == 0) as i64)
                }
                "*" | "&" => self.eval(operand, env, depth),
                "++" | "--" => {
                    let delta = if op == "++" { 1 } else { -1 };
                    if let Expr::Ident(n) = operand.as_ref() {
                        let mut v = env.get(n).cloned().unwrap_or_default();
                        v.num = v.num.wrapping_add(delta);
                        env.insert(n.clone(), v.clone());
                        v
                    } else {
                        self.eval(operand, env, depth)
                    }
                }
                _ => CVal::num(0),
            },
            Expr::Postfix { op, operand } => {
                let delta = if op == "++" { 1 } else { -1 };
                if let Expr::Ident(n) = operand.as_ref() {
                    let old = env.get(n).cloned().unwrap_or_default();
                    let mut newv = old.clone();
                    newv.num = newv.num.wrapping_add(delta);
                    env.insert(n.clone(), newv);
                    old
                } else {
                    self.eval(operand, env, depth)
                }
            }
            Expr::Index { base, .. } => {
                let b = self.eval(base, env, depth);
                CVal {
                    num: 0,
                    buf: b.buf,
                    handle: None,
                }
            }
            Expr::Member { .. } => CVal::num(0),
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        env: &mut BTreeMap<String, CVal>,
        depth: usize,
    ) -> CVal {
        // Evaluate arguments left-to-right (seeks and nested I/O run as
        // side effects here — before the surrounding call acts).
        let vals: Vec<CVal> = args.iter().map(|a| self.eval(a, env, depth)).collect();

        if let Some(api) = api_of(name) {
            return self.io_call(name, api, args, &vals);
        }
        if is_alloc_fn(name) {
            // Element size is refined by the declaring statement's type
            // (see `transfer`); default to 8 (double) like the analysis.
            let elems = vals.first().map(|v| v.num.max(0)).unwrap_or(0);
            self.buffers.push(BufferRt {
                bytes: elems as u64 * 8,
            });
            return CVal {
                num: 0,
                buf: Some(self.buffers.len() - 1),
                handle: None,
            };
        }
        if is_rand_fn(name) {
            return CVal::num((splitmix64(&mut self.rng) >> 33) as i64);
        }
        if let Some(f) = self.function(name) {
            if depth >= MAX_DEPTH {
                return CVal::num(0);
            }
            let mut frame: BTreeMap<String, CVal> = BTreeMap::new();
            for (i, (_, pname)) in f.params.iter().enumerate() {
                frame.insert(pname.clone(), vals.get(i).cloned().unwrap_or_default());
            }
            return match self.run_block(&f.body, &mut frame, depth + 1) {
                Flow::Return(v) => v,
                _ => CVal::num(0),
            };
        }
        // Unknown extern: 0, passing through the first pointer argument.
        CVal {
            num: 0,
            buf: vals.iter().find_map(|v| v.buf),
            handle: vals.iter().find_map(|v| v.handle),
        }
    }

    fn io_call(&mut self, name: &str, api: IoApi, args: &[Expr], vals: &[CVal]) -> CVal {
        match api {
            IoApi::Seek => {
                if let (Some(h), Some(off)) = (vals.first().and_then(|v| v.handle), vals.get(1)) {
                    let hr = &mut self.handles[h];
                    hr.cursor = off.num;
                    hr.seeked = true;
                }
                self.trace.meta_ops += 1;
                CVal::num(0)
            }
            IoApi::Meta => {
                self.trace.meta_ops += 1;
                if handle_api(name) {
                    self.handles.push(HandleRt {
                        cursor: 0,
                        seeked: false,
                    });
                    return CVal {
                        num: 0,
                        buf: None,
                        handle: Some(self.handles.len() - 1),
                    };
                }
                CVal::num(0)
            }
            IoApi::Logging => {
                self.trace.logging_ops += 1;
                CVal::num(0)
            }
            IoApi::DataWrite { collective } | IoApi::DataRead { collective } => {
                let dir = match api {
                    IoApi::DataWrite { .. } => Direction::Write,
                    _ => Direction::Read,
                };
                // Byte/handle conventions identical to the static model.
                let (bytes, handle) = match name {
                    "fwrite" | "fread" => (
                        (vals.get(1).map(|v| v.num).unwrap_or(0)
                            * vals.get(2).map(|v| v.num).unwrap_or(0))
                        .max(0) as u64,
                        vals.get(3).and_then(|v| v.handle),
                    ),
                    "write" | "read" | "pwrite" | "pread" => (
                        vals.get(2).map(|v| v.num.max(0)).unwrap_or(0) as u64,
                        vals.first().and_then(|v| v.handle),
                    ),
                    "H5Dwrite" | "H5Dread" => (
                        vals.get(1)
                            .and_then(|v| v.buf)
                            .map(|b| self.buffers[b].bytes)
                            .unwrap_or(0),
                        vals.first().and_then(|v| v.handle),
                    ),
                    _ => (
                        vals.last().map(|v| v.num.max(0)).unwrap_or(0) as u64,
                        vals.first().and_then(|v| v.handle),
                    ),
                };
                let (offset, seeked) = match handle {
                    Some(h) => {
                        let hr = &mut self.handles[h];
                        let at = hr.cursor;
                        hr.cursor += bytes as i64;
                        (at, hr.seeked)
                    }
                    None => (0, false),
                };
                let stmt_id = self.current_stmt;
                let call_expr_name = name.to_string();
                let obs = self.trace.sites.entry(stmt_id).or_insert_with(|| SiteObs {
                    stmt: stmt_id,
                    call: call_expr_name,
                    dir,
                    ops: 0,
                    bytes: 0,
                    req_sizes: Vec::new(),
                    offsets: Vec::new(),
                    collective,
                    seeked: false,
                });
                obs.ops += 1;
                obs.bytes += bytes;
                obs.req_sizes.push(bytes);
                obs.offsets.push(offset);
                obs.seeked |= seeked;
                self.trace.total_bytes += bytes;
                let _ = args;
                CVal::num(bytes as i64)
            }
        }
    }

    fn run_block(&mut self, block: &Block, env: &mut BTreeMap<String, CVal>, depth: usize) -> Flow {
        for stmt in &block.stmts {
            match self.run_stmt(stmt, env, depth) {
                Flow::Normal => {}
                other => return other,
            }
        }
        Flow::Normal
    }

    fn run_stmt(&mut self, stmt: &Stmt, env: &mut BTreeMap<String, CVal>, depth: usize) -> Flow {
        if !self.step() {
            return Flow::Return(CVal::num(0));
        }
        self.current_stmt = stmt.id;
        match &stmt.kind {
            StmtKind::Decl { ty, name, init, .. } => {
                let before = self.buffers.len();
                let v = match init {
                    Some(e) => self.eval(e, env, depth),
                    None => CVal::num(0),
                };
                // Fresh allocation in this initializer: element size comes
                // from the declared pointer type (matching the analysis).
                if let Some(b) = v.buf {
                    if b >= before {
                        let elem = elem_size_of_type(ty);
                        let elems = self.buffers[b].bytes / 8;
                        self.buffers[b].bytes = elems * elem;
                    }
                }
                env.insert(name.clone(), v);
                Flow::Normal
            }
            StmtKind::Assign { lhs, op, rhs } => {
                self.current_stmt = stmt.id;
                let rv = self.eval(rhs, env, depth);
                if let Expr::Ident(name) = lhs {
                    let cur = env.get(name).cloned().unwrap_or_default();
                    let new = match op.as_str() {
                        "=" => rv,
                        "+=" => CVal {
                            num: cur.num.wrapping_add(rv.num),
                            buf: cur.buf,
                            handle: cur.handle,
                        },
                        "-=" => CVal {
                            num: cur.num.wrapping_sub(rv.num),
                            buf: cur.buf,
                            handle: cur.handle,
                        },
                        "*=" => CVal::num(cur.num.wrapping_mul(rv.num)),
                        "/=" => CVal::num(if rv.num == 0 {
                            0
                        } else {
                            cur.num.wrapping_div(rv.num)
                        }),
                        _ => rv,
                    };
                    env.insert(name.clone(), new);
                }
                Flow::Normal
            }
            StmtKind::Expr(e) => {
                self.current_stmt = stmt.id;
                self.eval(e, env, depth);
                Flow::Normal
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                let c = self.eval(cond, env, depth);
                if c.num != 0 {
                    self.run_block(then_block, env, depth)
                } else if let Some(e) = else_block {
                    self.run_block(e, env, depth)
                } else {
                    Flow::Normal
                }
            }
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => {
                match self.run_stmt(init, env, depth) {
                    Flow::Normal => {}
                    other => return other,
                }
                loop {
                    if let Some(c) = cond {
                        self.current_stmt = stmt.id;
                        if self.eval(c, env, depth).num == 0 {
                            break;
                        }
                    }
                    match self.run_block(body, env, depth) {
                        Flow::Break => break,
                        Flow::Return(v) => return Flow::Return(v),
                        Flow::Normal | Flow::Continue => {}
                    }
                    match self.run_stmt(update, env, depth) {
                        Flow::Normal => {}
                        other => return other,
                    }
                    if self.trace.truncated {
                        break;
                    }
                }
                Flow::Normal
            }
            StmtKind::While { cond, body } => {
                loop {
                    self.current_stmt = stmt.id;
                    if self.eval(cond, env, depth).num == 0 {
                        break;
                    }
                    match self.run_block(body, env, depth) {
                        Flow::Break => break,
                        Flow::Return(v) => return Flow::Return(v),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if self.trace.truncated {
                        break;
                    }
                }
                Flow::Normal
            }
            StmtKind::DoWhile { body, cond } => {
                loop {
                    match self.run_block(body, env, depth) {
                        Flow::Break => break,
                        Flow::Return(v) => return Flow::Return(v),
                        Flow::Normal | Flow::Continue => {}
                    }
                    self.current_stmt = stmt.id;
                    if self.eval(cond, env, depth).num == 0 || self.trace.truncated {
                        break;
                    }
                }
                Flow::Normal
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env, depth),
                    None => CVal::num(0),
                };
                Flow::Return(v)
            }
            StmtKind::Break => Flow::Break,
            StmtKind::Continue => Flow::Continue,
            StmtKind::Empty => Flow::Normal,
        }
    }
}

impl<'p> Exec<'p> {
    fn new(prog: &'p Program, entry: &str, bindings: &BTreeMap<String, i64>) -> Exec<'p> {
        Exec {
            prog,
            buffers: Vec::new(),
            handles: Vec::new(),
            trace: DynTrace {
                entry: entry.to_string(),
                bindings: bindings.clone(),
                sites: BTreeMap::new(),
                total_bytes: 0,
                meta_ops: 0,
                logging_ops: 0,
                steps: 0,
                truncated: false,
            },
            rng: 0x7475_6e69_6f5f_696f, // fixed seed: deterministic replays
            current_stmt: StmtId(0),
        }
    }
}

/// Replay `entry` under concrete `bindings` and return the observed I/O.
///
/// Returns `None` when the program has no function named `entry`.
pub fn replay(prog: &Program, entry: &str, bindings: &BTreeMap<String, i64>) -> Option<DynTrace> {
    let f = prog.functions.iter().find(|f| f.name == entry)?;
    let mut exec = Exec::new(prog, entry, bindings);
    let mut env: BTreeMap<String, CVal> = BTreeMap::new();
    for (_, pname) in &f.params {
        env.insert(
            pname.clone(),
            CVal::num(bindings.get(pname).copied().unwrap_or(0)),
        );
    }
    exec.run_block(&f.body, &mut env, 0);
    Some(exec.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::parser::parse;
    use tunio_cminus::samples;

    fn bindings(pairs: &[(&str, i64)]) -> BTreeMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn trace_of(src: &str, entry: &str, binds: &[(&str, i64)]) -> DynTrace {
        let prog = parse(src).unwrap();
        replay(&prog, entry, &bindings(binds)).expect("entry exists")
    }

    #[test]
    fn vpic_replay_counts_steps_and_bytes() {
        let t = trace_of(
            samples::VPIC_IO,
            "vpic_dump",
            &[("num_steps", 5), ("particles", 1000)],
        );
        assert_eq!(t.sites.len(), 1);
        let obs = t.sites.values().next().unwrap();
        assert_eq!(obs.ops, 5);
        assert_eq!(obs.bytes, 5 * 8 * 1000);
        assert_eq!(obs.observed_pattern(), "collective");
        assert_eq!(t.total_bytes, 40_000);
        // printf fires on steps 0 (every diag_interval=10 → once in 5).
        assert_eq!(t.logging_ops, 1);
    }

    #[test]
    fn flash_replay_honours_plot_guard() {
        let t = trace_of(
            samples::FLASH_IO,
            "flash_io",
            &[("nsteps", 10), ("blocks", 64)],
        );
        let mut ops: Vec<u64> = t.sites.values().map(|s| s.ops).collect();
        ops.sort_unstable();
        assert_eq!(ops, vec![3, 10]); // plots on n = 0,4,8; ckpt every step
        assert_eq!(t.total_bytes, (10 + 3) * 64 * 8);
    }

    #[test]
    fn bdcats_replay_runs_all_rounds() {
        // evaluate_clusters is an unknown extern → 0, so quality > 95
        // never fires and the loop runs max_rounds times.
        let t = trace_of(
            samples::BDCATS_IO,
            "bdcats_cluster",
            &[("max_rounds", 6), ("np", 100)],
        );
        let read = t.sites.values().find(|s| s.dir == Direction::Read).unwrap();
        let write = t
            .sites
            .values()
            .find(|s| s.dir == Direction::Write)
            .unwrap();
        assert_eq!(read.ops, 6);
        assert_eq!(read.bytes, 6 * 8 * 100);
        // dbscan passthrough repoints labels at the slab buffer.
        assert_eq!(write.ops, 1);
        assert_eq!(write.bytes, 8 * 100);
    }

    #[test]
    fn nyx_replay_is_sequential() {
        let t = trace_of(
            samples::NYX_LOG_IO,
            "nyx_log",
            &[("steps", 8), ("nvals", 4096)],
        );
        let obs = t.sites.values().next().unwrap();
        assert_eq!(obs.ops, 8);
        assert_eq!(obs.observed_pattern(), "sequential");
        assert_eq!(t.total_bytes, 8 * 8 * 4096);
    }

    #[test]
    fn ior_replay_is_random() {
        let t = trace_of(
            samples::IOR_RANDOM_IO,
            "ior_probe",
            &[("nprobes", 16), ("region", 1 << 30)],
        );
        let obs = t.sites.values().next().unwrap();
        assert_eq!(obs.ops, 16);
        assert_eq!(obs.observed_pattern(), "random");
        assert_eq!(obs.req_sizes[0], 262_144);
    }

    #[test]
    fn gyro_replay_is_strided() {
        let t = trace_of(samples::GYRO_STRIDED_IO, "gyro_restart", &[("nframes", 7)]);
        let obs = t.sites.values().next().unwrap();
        assert_eq!(obs.ops, 7);
        assert_eq!(obs.observed_pattern(), "strided");
        assert_eq!(obs.observed_stride(), Some(4_194_304));
        assert_eq!(obs.bytes, 7 * 1_048_576);
    }

    #[test]
    fn replay_is_deterministic() {
        let prog = parse(samples::IOR_RANDOM_IO).unwrap();
        let b = bindings(&[("nprobes", 8), ("region", 4096)]);
        let t1 = replay(&prog, "ior_probe", &b).unwrap();
        let t2 = replay(&prog, "ior_probe", &b).unwrap();
        let o1 = t1.sites.values().next().unwrap();
        let o2 = t2.sites.values().next().unwrap();
        assert_eq!(o1.offsets, o2.offsets);
    }

    #[test]
    fn missing_entry_is_none() {
        let prog = parse(samples::VPIC_IO).unwrap();
        assert!(replay(&prog, "nope", &BTreeMap::new()).is_none());
    }

    #[test]
    fn runaway_loop_truncates() {
        let t = trace_of("void f() { while (1) { spin(); } }", "f", &[]);
        assert!(t.truncated);
    }
}
