//! `tunio-infer` — static I/O workload inference for C-minus sources.
//!
//! ```text
//! tunio-infer [--sample NAME|all] [FILE...] [--bind NAME=VALUE]... [--json]
//! ```
//!
//! For every entry function of every input, prints the statically
//! predicted I/O model (per-site pattern, request size, op count and
//! symbolic volume), the lowered workload spec and feature vector, and —
//! when the program can be replayed — the accuracy of the static
//! prediction against a concrete dynamic trace under the same bindings.
//!
//! `--bind` overrides the default parameter bindings (which size
//! loop-like parameters small and data-like parameters large); unknown
//! names are ignored per entry. `--json` emits a machine-readable report.

use std::collections::BTreeMap;
use std::process::ExitCode;
use tunio_analysis::predict_program;
use tunio_cminus::parser::parse;
use tunio_cminus::samples;
use tunio_discovery::infer::{default_bindings, lower_prediction};
use tunio_discovery::score_inference;

const USAGE: &str =
    "usage: tunio-infer [--sample NAME|all] [FILE...] [--bind NAME=VALUE]... [--json]";

struct Args {
    inputs: Vec<(String, String)>,
    binds: BTreeMap<String, i64>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        inputs: Vec::new(),
        binds: BTreeMap::new(),
        json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => args.json = true,
            "--bind" => {
                i += 1;
                let kv = argv.get(i).ok_or("--bind expects NAME=VALUE")?;
                let (k, v) = kv.split_once('=').ok_or("--bind expects NAME=VALUE")?;
                let v: i64 = v
                    .parse()
                    .map_err(|e| format!("--bind {k}: bad value: {e}"))?;
                args.binds.insert(k.to_string(), v);
            }
            "--sample" => {
                i += 1;
                let name = argv.get(i).ok_or("--sample expects a name or `all`")?;
                if name == "all" {
                    for (n, src) in samples::all_samples() {
                        args.inputs.push((n.to_string(), src.to_string()));
                    }
                } else {
                    let src = samples::all_samples()
                        .into_iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, src)| src)
                        .ok_or_else(|| {
                            let known: Vec<&str> =
                                samples::all_samples().iter().map(|(n, _)| *n).collect();
                            format!("unknown sample `{name}` (known: {})", known.join(", "))
                        })?;
                    args.inputs.push((name.clone(), src.to_string()));
                }
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            path if !path.starts_with('-') => {
                let src = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                args.inputs.push((path.to_string(), src));
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    if args.inputs.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut reports = Vec::new();
    for (name, src) in &args.inputs {
        let prog = match parse(src) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name}: parse error: {e}");
                return ExitCode::from(2);
            }
        };
        for prediction in predict_program(&prog) {
            let mut bindings = default_bindings(&prediction.params);
            for (k, v) in &args.binds {
                if bindings.contains_key(k) {
                    bindings.insert(k.clone(), *v);
                }
            }
            let (spec, features) = lower_prediction(&prediction, &bindings);
            let score = score_inference(&prog, &prediction, &bindings);
            reports.push((name.clone(), prediction, bindings, spec, features, score));
        }
    }

    if args.json {
        let entries: Vec<serde_json::Value> = reports
            .iter()
            .map(|(name, pred, bindings, spec, features, score)| {
                let sites: Vec<serde_json::Value> = pred
                    .sites
                    .iter()
                    .map(|s| {
                        serde_json::json!({
                            "call": s.call,
                            "target": s.target,
                            "dir": format!("{:?}", s.dir),
                            "pattern": s.pattern.label(),
                            "bytes_per_op": s.bytes_per_op.render(),
                            "ops": s.ops.render(),
                            "volume_bytes": s.volume_bytes(bindings),
                            "confidence": s.confidence,
                        })
                    })
                    .collect();
                serde_json::json!({
                    "input": name,
                    "entry": pred.entry,
                    "bindings": bindings,
                    "confidence": pred.confidence,
                    "total_bytes": pred.total_bytes(bindings),
                    "sites": sites,
                    "spec": spec,
                    "features": features,
                    "accuracy": score.as_ref().map(|s| {
                        serde_json::json!({
                            "sites_matched": s.sites_matched,
                            "pattern_accuracy": s.pattern_accuracy(),
                            "volume_err_pct": s.volume_err_pct,
                            "request_err_pct": s.request_err_pct,
                        })
                    }),
                })
            })
            .collect();
        let report = serde_json::json!({ "version": 1, "entries": entries });
        println!("{}", serde_json::to_string_pretty(&report).unwrap());
    } else {
        for (name, pred, bindings, spec, features, score) in &reports {
            println!("== {name} :: {} ==", pred.entry);
            let binds: Vec<String> = bindings.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!("  bindings: {}", binds.join(", "));
            for s in &pred.sites {
                println!(
                    "  site {} -> {} [{}] bytes/op={} ops={} volume={} conf={:.2}",
                    s.call,
                    if s.target.is_empty() { "?" } else { &s.target },
                    s.pattern.label(),
                    s.bytes_per_op.render(),
                    s.ops.render(),
                    s.volume_bytes(bindings),
                    s.confidence,
                );
            }
            println!(
                "  predicted: total={} bytes, {} iterations, confidence {:.2}",
                pred.total_bytes(bindings),
                spec.loop_iterations,
                pred.confidence,
            );
            println!(
                "  features: read={:.2} collective={:.2} random={:.2} strided={:.2} \
                 mean_req={:.0}B meta_ratio={:.2}",
                features.read_fraction,
                features.collective_fraction,
                features.random_fraction,
                features.strided_fraction,
                features.mean_request_bytes,
                features.metadata_ratio,
            );
            match score {
                Some(s) => println!(
                    "  accuracy: {}/{} patterns, volume err {:.1}% ({} vs {} observed)",
                    s.patterns_correct,
                    s.sites_matched,
                    s.volume_err_pct,
                    s.volume_predicted,
                    s.volume_observed,
                ),
                None => println!("  accuracy: replay unavailable"),
            }
        }
    }
    ExitCode::SUCCESS
}
