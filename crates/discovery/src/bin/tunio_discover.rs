//! `tunio-discover` — CLI for the Application I/O Discovery component.
//!
//! Converts application source to its I/O kernel (paper §III-E: "TunIO …
//! provides a CLI tool for the Application I/O Discovery component").
//!
//! ```text
//! tunio-discover <file.c | --sample NAME> [--loop-reduce FRACTION]
//!                [--path-switch PREFIX] [--stats]
//! ```

use std::process::ExitCode;
use tunio_discovery::{discover_io, DiscoveryOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: tunio-discover <file.c | --sample NAME> \
             [--loop-reduce FRACTION] [--path-switch PREFIX]\n\
             [--compute-sim] [--blind-writes] [--loop-sim] [--stats]\n\
             samples: vpic_io, hacc_io, flash_io, bdcats_io, pure_compute"
        );
        return ExitCode::from(2);
    }

    let mut source: Option<String> = None;
    let mut options = DiscoveryOptions::default();
    let mut stats = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sample" => {
                i += 1;
                let name = args.get(i).map(String::as_str).unwrap_or("");
                match tunio_cminus::samples::all_samples()
                    .into_iter()
                    .find(|(n, _)| *n == name)
                {
                    Some((_, src)) => source = Some(src.to_string()),
                    None => {
                        eprintln!("unknown sample `{name}`");
                        return ExitCode::from(2);
                    }
                }
            }
            "--loop-reduce" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(f) if f > 0.0 && f <= 1.0 => options.loop_reduction = Some(f),
                    _ => {
                        eprintln!("--loop-reduce needs a fraction in (0, 1]");
                        return ExitCode::from(2);
                    }
                }
            }
            "--path-switch" => {
                i += 1;
                match args.get(i) {
                    Some(p) => options.path_switch_prefix = Some(p.clone()),
                    None => {
                        eprintln!("--path-switch needs a prefix");
                        return ExitCode::from(2);
                    }
                }
            }
            "--compute-sim" => options.simulate_compute = true,
            "--blind-writes" => options.remove_blind_writes = true,
            "--loop-sim" => options.simulate_loops = true,
            "--stats" => stats = true,
            path => match std::fs::read_to_string(path) {
                Ok(text) => source = Some(text),
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::from(1);
                }
            },
        }
        i += 1;
    }

    let source = match source {
        Some(s) => s,
        None => {
            eprintln!("no input given");
            return ExitCode::from(2);
        }
    };

    match discover_io(&source, &options) {
        Ok(kernel) => {
            if !kernel.has_io() {
                eprintln!(
                    "warning: no I/O calls found; tuning should fall back to the full application"
                );
            }
            print!("{}", kernel.source);
            if stats {
                eprintln!(
                    "kept {}/{} statements ({:.1}%), {} I/O seeds, {} paths switched",
                    kernel.marking.kept.len(),
                    kernel.marking.total_stmts,
                    kernel.marking.keep_ratio() * 100.0,
                    kernel.marking.io_seeds.len(),
                    kernel.paths_switched,
                );
                if let Some(lr) = &kernel.loop_reduction {
                    eprintln!(
                        "loop reduction: {} reduced, {} skipped (keep fraction {})",
                        lr.loops_reduced, lr.loops_skipped, lr.keep_fraction
                    );
                }
                if kernel.blind_writes_removed > 0 {
                    eprintln!("blind writes removed: {}", kernel.blind_writes_removed);
                }
                if kernel.loops_simulated > 0 {
                    eprintln!("loops simulated: {}", kernel.loops_simulated);
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
