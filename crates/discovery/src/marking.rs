//! The marking loop (§III-B, Figs 4–5).
//!
//! Marks every statement needed for the application's I/O:
//!
//! * **seeds** — statements containing real I/O calls;
//! * **dependents** — for each marked statement, the variables it reads
//!   (call arguments, right-hand sides, loop/branch conditions); every
//!   statement assigning or declaring one of those variables is marked (the
//!   paper's backward traversal over assignments);
//! * **contextual parents** — the enclosing loop / conditional headers of
//!   each marked statement, whose own dependents (loop init/update/
//!   condition variables) are then marked in turn.
//!
//! The loop runs to a fixpoint; [`Marking::kept`] is the final set.

use crate::iocalls::{classify_call, CallClass};
use std::collections::{BTreeMap, BTreeSet};
use tunio_cminus::ast::{Expr, Program, Stmt, StmtId, StmtKind};

/// Per-statement dataflow facts.
#[derive(Debug, Clone, Default)]
struct StmtFacts {
    /// Variables whose values this statement needs.
    reads: Vec<String>,
    /// Real I/O calls in this statement.
    io_calls: Vec<String>,
    /// Enclosing statement ids, outermost first.
    ancestry: Vec<StmtId>,
    /// Child statement ids that belong to this statement's header
    /// (`for` init/update).
    header_children: Vec<StmtId>,
}

/// Result of the marking loop.
#[derive(Debug, Clone)]
pub struct Marking {
    /// Statements to keep, in id order.
    pub kept: BTreeSet<StmtId>,
    /// The seed statements (those containing real I/O calls).
    pub io_seeds: BTreeSet<StmtId>,
    /// Number of fixpoint iterations the marking loop ran.
    pub iterations: u32,
    /// Total statements inspected.
    pub total_stmts: usize,
}

impl Marking {
    /// Fraction of statements kept.
    pub fn keep_ratio(&self) -> f64 {
        if self.total_stmts == 0 {
            0.0
        } else {
            self.kept.len() as f64 / self.total_stmts as f64
        }
    }
}

/// Collect reads/writes/io-calls for one statement (header only — nested
/// bodies are separate statements).
fn facts_for(stmt: &Stmt) -> (Vec<String>, Vec<String>, Vec<String>) {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    let mut calls = Vec::new();
    match &stmt.kind {
        StmtKind::Decl { name, init, .. } => {
            writes.push(name.clone());
            if let Some(e) = init {
                e.idents(&mut reads);
                e.call_names(&mut calls);
            }
        }
        StmtKind::Assign { lhs, op, rhs } => {
            if let Some(root) = lhs.lvalue_root() {
                writes.push(root.to_string());
                // Compound assignment also reads the target.
                if op != "=" {
                    reads.push(root.to_string());
                }
            }
            // Index/member sub-expressions of the lhs are reads too.
            collect_lhs_reads(lhs, &mut reads);
            rhs.idents(&mut reads);
            rhs.call_names(&mut calls);
            lhs.call_names(&mut calls);
        }
        StmtKind::Expr(e) => {
            e.idents(&mut reads);
            e.call_names(&mut calls);
            // A unary-increment expression statement writes its operand.
            if let Expr::Postfix { operand, .. } | Expr::Unary { operand, .. } = e {
                if let Some(root) = operand.lvalue_root() {
                    writes.push(root.to_string());
                }
            }
        }
        StmtKind::If { cond, .. }
        | StmtKind::While { cond, .. }
        | StmtKind::DoWhile { cond, .. } => {
            cond.idents(&mut reads);
            cond.call_names(&mut calls);
        }
        StmtKind::For { cond, .. } => {
            if let Some(c) = cond {
                c.idents(&mut reads);
                c.call_names(&mut calls);
            }
        }
        StmtKind::Return(Some(e)) => {
            e.idents(&mut reads);
            e.call_names(&mut calls);
        }
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
    }
    (reads, writes, calls)
}

/// Reads hidden inside an lvalue (`a[i]` reads `i`; `p->f` reads `p`).
fn collect_lhs_reads(lhs: &Expr, reads: &mut Vec<String>) {
    match lhs {
        Expr::Index { base, index } => {
            index.idents(reads);
            collect_lhs_reads(base, reads);
        }
        Expr::Member { base, .. } => collect_lhs_reads(base, reads),
        _ => {}
    }
}

/// Compute the set of functions that perform I/O, directly or through
/// calls to other I/O-performing functions (transitive closure over the
/// call graph). Calls to these functions are treated as I/O calls by the
/// marking loop, making discovery interprocedural.
pub fn io_functions(program: &Program) -> BTreeSet<String> {
    // Call graph + direct-I/O flags per function.
    let mut calls_of: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut direct: BTreeSet<String> = BTreeSet::new();
    for f in &program.functions {
        let mut called = BTreeSet::new();
        let single = Program {
            functions: vec![f.clone()],
        };
        single.visit_stmts(|stmt, _| {
            let (_, _, names) = facts_for(stmt);
            for n in names {
                if classify_call(&n) == CallClass::Io {
                    direct.insert(f.name.clone());
                }
                called.insert(n);
            }
        });
        calls_of.insert(f.name.clone(), called);
    }
    // Propagate to a fixpoint: a function that calls an I/O function is
    // itself an I/O function.
    let mut io_fns = direct;
    loop {
        let mut grew = false;
        for (name, called) in &calls_of {
            if !io_fns.contains(name) && called.iter().any(|c| io_fns.contains(c)) {
                io_fns.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    io_fns
}

/// Run the marking loop over a program.
pub fn mark_program(program: &Program) -> Marking {
    let io_fns = io_functions(program);
    // Pass 1: gather facts and indices.
    let mut facts: BTreeMap<StmtId, StmtFacts> = BTreeMap::new();
    let mut assigners: BTreeMap<String, Vec<StmtId>> = BTreeMap::new();
    let mut control_exits: Vec<(StmtId, Vec<StmtId>)> = Vec::new();
    let mut loop_ids: BTreeSet<StmtId> = BTreeSet::new();

    program.visit_stmts(|stmt, ancestry| {
        let (reads, writes, calls) = facts_for(stmt);
        let io_calls: Vec<String> = calls
            .iter()
            .filter(|c| classify_call(c) == CallClass::Io || io_fns.contains(*c))
            .cloned()
            .collect();
        for w in &writes {
            assigners.entry(w.clone()).or_default().push(stmt.id);
        }
        let mut header_children = Vec::new();
        if let StmtKind::For { init, update, .. } = &stmt.kind {
            header_children.push(init.id);
            header_children.push(update.id);
        }
        if matches!(stmt.kind, StmtKind::Break | StmtKind::Continue) {
            control_exits.push((stmt.id, ancestry.to_vec()));
        }
        if matches!(
            stmt.kind,
            StmtKind::For { .. } | StmtKind::While { .. } | StmtKind::DoWhile { .. }
        ) {
            loop_ids.insert(stmt.id);
        }
        facts.insert(
            stmt.id,
            StmtFacts {
                reads,
                io_calls,
                ancestry: ancestry.to_vec(),
                header_children,
            },
        );
    });

    // Pass 2: seed with statements containing real I/O calls.
    let io_seeds: BTreeSet<StmtId> = facts
        .iter()
        .filter(|(_, f)| !f.io_calls.is_empty())
        .map(|(id, _)| *id)
        .collect();

    // Pass 3: fixpoint marking — repeated whenever the control-flow pass
    // (below) adds new seeds.
    let mut kept: BTreeSet<StmtId> = io_seeds.clone();
    let mut worklist: Vec<StmtId> = io_seeds.iter().copied().collect();
    let mut iterations = 0;
    loop {
        while let Some(id) = worklist.pop() {
            iterations += 1;
            let stmt_facts = match facts.get(&id) {
                Some(f) => f,
                None => continue,
            };
            let mut to_mark: Vec<StmtId> = Vec::new();
            // Dependents: every assigner of every variable this statement
            // reads.
            for var in &stmt_facts.reads {
                if let Some(assigns) = assigners.get(var) {
                    to_mark.extend(assigns.iter().copied());
                }
            }
            // Contextual parents.
            to_mark.extend(stmt_facts.ancestry.iter().copied());
            // Loop headers drag in their init/update statements.
            to_mark.extend(stmt_facts.header_children.iter().copied());
            for m in to_mark {
                if kept.insert(m) {
                    worklist.push(m);
                }
            }
        }
        // Control-flow pass: a `break`/`continue` whose nearest enclosing
        // loop is kept alters that loop's trip count, so it must be kept
        // (with its guarding conditional, via the ancestry rule above) or
        // the kernel would loop differently than the application.
        for (id, ancestry) in &control_exits {
            if kept.contains(id) {
                continue;
            }
            let nearest_loop = ancestry.iter().rev().find(|a| loop_ids.contains(a));
            if let Some(l) = nearest_loop {
                if kept.contains(l) {
                    kept.insert(*id);
                    worklist.push(*id);
                }
            }
        }
        if worklist.is_empty() {
            break;
        }
    }

    Marking {
        kept,
        io_seeds,
        iterations,
        total_stmts: facts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::parser::parse;
    use tunio_cminus::samples;

    /// Find the ids of statements whose printed form contains `needle`.
    fn ids_containing(program: &Program, needle: &str) -> Vec<StmtId> {
        let printed = tunio_cminus::printer::print_program(program);
        let lines: Vec<&str> = printed.text.lines().collect();
        printed
            .stmt_lines
            .iter()
            .filter(|(_, line)| lines[(**line - 1) as usize].contains(needle))
            .map(|(id, _)| *id)
            .collect()
    }

    #[test]
    fn vpic_marking_matches_fig5() {
        let prog = parse(samples::VPIC_IO).unwrap();
        let m = mark_program(&prog);

        // I/O calls and their dependency chain are kept.
        for needle in [
            "H5Fcreate",
            "H5Dcreate",
            "H5Dwrite",
            "H5Fclose",
            "sort_particles",     // assigns data_ptr, a dependent of H5Dwrite
            "allocate_particles", // declares data_ptr
            "for (",              // contextual parent of H5Dwrite
        ] {
            for id in ids_containing(&prog, needle) {
                assert!(m.kept.contains(&id), "{needle} should be kept");
            }
        }

        // Compute and logging are dropped.
        for needle in ["compute_energy", "field_sum", "printf", "advance_particles"] {
            for id in ids_containing(&prog, needle) {
                assert!(!m.kept.contains(&id), "{needle} should be dropped");
            }
        }
    }

    #[test]
    fn pure_compute_marks_nothing() {
        let prog = parse(samples::PURE_COMPUTE).unwrap();
        let m = mark_program(&prog);
        assert!(m.io_seeds.is_empty());
        assert!(m.kept.is_empty());
        assert_eq!(m.keep_ratio(), 0.0);
    }

    #[test]
    fn keep_ratio_is_partial_for_vpic() {
        let prog = parse(samples::VPIC_IO).unwrap();
        let m = mark_program(&prog);
        let r = m.keep_ratio();
        assert!(r > 0.3 && r < 0.95, "keep ratio {r}");
    }

    #[test]
    fn conditional_io_keeps_branch_header() {
        let prog = parse(samples::FLASH_IO).unwrap();
        let m = mark_program(&prog);
        // The `if (n % plot_every == 0)` guards an H5Dwrite, so both the
        // if-header and the plot_every declaration must be kept.
        for needle in ["if (", "plot_every ="] {
            let ids = ids_containing(&prog, needle);
            assert!(!ids.is_empty(), "sample should contain {needle}");
            for id in ids {
                assert!(m.kept.contains(&id), "{needle} must be kept");
            }
        }
        // residual computation feeds only printf → dropped.
        for id in ids_containing(&prog, "hydro_sweep") {
            assert!(!m.kept.contains(&id));
        }
    }

    #[test]
    fn backward_traversal_follows_reassignments() {
        let src = r#"
            void f(int n) {
                double * buf = alloc(n);
                buf = refill(buf, n);
                buf = shuffle(buf);
                H5Dwrite(dset, buf);
            }
        "#;
        let prog = parse(src).unwrap();
        let m = mark_program(&prog);
        // All three assignments to buf are dependents of the write.
        assert_eq!(m.kept.len(), 4);
    }

    #[test]
    fn loop_header_dependencies_are_kept() {
        let src = r#"
            void f() {
                int start = compute_start();
                int end = compute_end();
                int unused = expensive();
                for (int i = start; i < end; i++) {
                    H5Dwrite(dset, buf);
                }
            }
        "#;
        let prog = parse(src).unwrap();
        let m = mark_program(&prog);
        let start_ids = ids_containing(&prog, "compute_start");
        let end_ids = ids_containing(&prog, "compute_end");
        let unused_ids = ids_containing(&prog, "expensive");
        for id in start_ids.iter().chain(&end_ids) {
            assert!(m.kept.contains(id), "loop bound deps must be kept");
        }
        for id in unused_ids {
            assert!(!m.kept.contains(&id), "unused decl must be dropped");
        }
    }
}

#[cfg(test)]
mod control_flow_tests {
    use super::*;
    use tunio_cminus::parser::parse;

    #[test]
    fn breaks_inside_io_loops_are_kept_with_their_guard() {
        let src = r#"
            void f(int n) {
                int failures = check_env();
                for (int i = 0; i < n; i++) {
                    H5Dwrite(dset, buf);
                    if (failures > 3) {
                        break;
                    }
                }
            }
        "#;
        let prog = parse(src).unwrap();
        let m = mark_program(&prog);
        let kernel = crate::kernel::reconstruct(&prog, &m);
        let text = tunio_cminus::printer::print_program(&kernel).text;
        assert!(text.contains("break;"), "{text}");
        assert!(text.contains("if (failures > 3)"), "{text}");
        assert!(text.contains("check_env"), "guard dependency kept: {text}");
    }

    #[test]
    fn breaks_in_compute_only_loops_are_dropped() {
        let src = r#"
            void f(int n) {
                for (int i = 0; i < n; i++) {
                    relax(grid, i);
                    if (done()) {
                        break;
                    }
                }
                H5Dwrite(dset, grid);
            }
        "#;
        let prog = parse(src).unwrap();
        let m = mark_program(&prog);
        let kernel = crate::kernel::reconstruct(&prog, &m);
        let text = tunio_cminus::printer::print_program(&kernel).text;
        // grid is a dependency so its assignments are kept, but the
        // compute loop itself contains no I/O: break should not force it.
        // (The loop may be kept if `grid` is assigned inside; in this
        // sample it is not, so the whole loop disappears.)
        assert!(!text.contains("break;"), "{text}");
    }
}

#[cfg(test)]
mod interprocedural_tests {
    use super::*;
    use tunio_cminus::parser::parse;
    use tunio_cminus::printer::print_program;

    const MULTI_FN: &str = r#"
        void write_field(hid_t dset, double * buf) {
            H5Dwrite(dset, buf);
        }
        void diagnostics(double energy) {
            printf("energy %f", energy);
        }
        void main_loop(int steps) {
            hid_t dset = H5Dcreate(f, "x", 0);
            double * buf = alloc(steps);
            double energy = 0.0;
            for (int s = 0; s < steps; s++) {
                buf = advance(buf, steps);
                energy = measure(buf);
                diagnostics(energy);
                write_field(dset, buf);
            }
        }
    "#;

    #[test]
    fn io_function_closure_is_transitive() {
        let prog = parse(MULTI_FN).unwrap();
        let fns = io_functions(&prog);
        assert!(fns.contains("write_field"), "direct I/O");
        assert!(fns.contains("main_loop"), "transitive caller");
        assert!(!fns.contains("diagnostics"), "logging is not I/O");
    }

    #[test]
    fn calls_to_io_functions_are_kept_with_dependencies() {
        let prog = parse(MULTI_FN).unwrap();
        let m = mark_program(&prog);
        let kernel = crate::kernel::reconstruct(&prog, &m);
        let text = print_program(&kernel).text;
        assert!(text.contains("write_field(dset, buf);"), "{text}");
        assert!(
            text.contains("buf = advance(buf, steps);"),
            "buf dep kept: {text}"
        );
        assert!(!text.contains("diagnostics(energy);"), "{text}");
        assert!(!text.contains("energy = measure"), "{text}");
    }
}

#[cfg(test)]
mod do_while_marking_tests {
    use super::*;
    use tunio_cminus::parser::parse;
    use tunio_cminus::printer::print_program;

    #[test]
    fn do_while_io_loops_are_kept_with_condition_deps() {
        let src = r#"
            void f() {
                int rounds = plan_rounds();
                int unused = expensive();
                int i = 0;
                do {
                    H5Dwrite(dset, buf);
                    i++;
                } while (i < rounds);
            }
        "#;
        let prog = parse(src).unwrap();
        let m = mark_program(&prog);
        let text = print_program(&crate::kernel::reconstruct(&prog, &m)).text;
        assert!(text.contains("do"), "{text}");
        assert!(text.contains("while (i < rounds);"), "{text}");
        assert!(text.contains("plan_rounds"), "condition dep kept: {text}");
        assert!(!text.contains("expensive"), "{text}");
    }
}
