//! Dataflow-based marking — the default discovery path.
//!
//! Wraps [`tunio_analysis::slice_program`] (CFG + reaching-definitions
//! backward slice) in the [`Marking`] interface the rest of the crate
//! consumes, so kernel reconstruction and every transform work unchanged.
//! The original syntactic marking loop ([`crate::marking`]) remains
//! available behind [`crate::DiscoveryOptions::syntactic_marking`]; this
//! module also hosts the accuracy comparator that reports where the two
//! passes disagree on the built-in samples.
//!
//! Where the old pass goes wrong (and this one does not):
//!
//! * **shadowing** — its assigner map is keyed on bare names, so a use of
//!   an outer variable drags in stores to any same-named inner (or even
//!   other-function) variable;
//! * **dead stores** — it keeps *every* assignment to a needed name, not
//!   just the definitions that actually reach a use.

use crate::iocalls::{classify_call, CallClass};
use crate::marking::{mark_program, Marking};
use std::collections::BTreeSet;
use tunio_analysis::slice_program;
use tunio_cminus::ast::{Expr, Program, StmtId, StmtKind};

/// The I/O predicate the slicer runs with: exactly the classifier the
/// syntactic pass uses, so any kept-set difference between the two passes
/// is attributable to the analysis, never the vocabulary.
pub fn is_io_call(name: &str) -> bool {
    classify_call(name) == CallClass::Io
}

/// Run the dataflow slicer and present the result as a [`Marking`].
pub fn mark_program_dataflow(program: &Program) -> Marking {
    let slice = slice_program(program, &is_io_call);
    Marking {
        kept: slice.kept,
        io_seeds: slice.io_seeds,
        iterations: slice.iterations,
        total_stmts: slice.total_stmts,
    }
}

/// Where the syntactic and dataflow passes disagree on one program.
#[derive(Debug, Clone)]
pub struct MarkingComparison {
    /// Total statements in the program.
    pub total_stmts: usize,
    /// Statements the syntactic pass keeps.
    pub syntactic_kept: usize,
    /// Statements the dataflow slicer keeps.
    pub dataflow_kept: usize,
    /// Kept only by the syntactic pass (its over-keeps: dead stores,
    /// shadowed same-name stores).
    pub only_syntactic: BTreeSet<StmtId>,
    /// Kept only by the dataflow slicer (mostly decl anchors of
    /// written-but-never-read variables, which the old pass drops even
    /// though the kernel then uses them undeclared).
    pub only_dataflow: BTreeSet<StmtId>,
}

impl MarkingComparison {
    /// Fraction of statements both passes classify identically.
    pub fn agreement(&self) -> f64 {
        if self.total_stmts == 0 {
            return 1.0;
        }
        let disagree = self.only_syntactic.len() + self.only_dataflow.len();
        1.0 - disagree as f64 / self.total_stmts as f64
    }
}

/// Run both passes over one program and diff their kept sets.
pub fn compare_markings(program: &Program) -> MarkingComparison {
    let old = mark_program(program);
    let new = mark_program_dataflow(program);
    MarkingComparison {
        total_stmts: old.total_stmts,
        syntactic_kept: old.kept.len(),
        dataflow_kept: new.kept.len(),
        only_syntactic: old.kept.difference(&new.kept).copied().collect(),
        only_dataflow: new.kept.difference(&old.kept).copied().collect(),
    }
}

/// Compare both passes across every built-in sample program.
pub fn compare_samples() -> Vec<(&'static str, MarkingComparison)> {
    tunio_cminus::samples::all_samples()
        .into_iter()
        .map(|(name, src)| {
            let prog = tunio_cminus::parser::parse(src).expect("samples parse");
            (name, compare_markings(&prog))
        })
        .collect()
}

/// The static I/O-call trace of a program: every I/O call in statement
/// order, as `(callee, argument identifiers)`. The discovery invariant —
/// proptested in `tests/prop_slice.rs` — is that a reconstructed kernel
/// has the same trace as its source application.
pub fn io_call_trace(program: &Program) -> Vec<(String, Vec<String>)> {
    let mut trace = Vec::new();
    program.visit_stmts(|stmt, _| {
        let mut exprs: Vec<&Expr> = Vec::new();
        match &stmt.kind {
            StmtKind::Decl { init, .. } => exprs.extend(init.iter()),
            StmtKind::Assign { lhs, rhs, .. } => {
                exprs.push(lhs);
                exprs.push(rhs);
            }
            StmtKind::Expr(e) => exprs.push(e),
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::DoWhile { cond, .. } => exprs.push(cond),
            StmtKind::For { cond, .. } => exprs.extend(cond.iter()),
            StmtKind::Return(v) => exprs.extend(v.iter()),
            StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
        }
        for e in exprs {
            collect_io_calls(e, &mut trace);
        }
    });
    trace
}

fn collect_io_calls(e: &Expr, out: &mut Vec<(String, Vec<String>)>) {
    match e {
        Expr::Call { name, args } => {
            if is_io_call(name) {
                let mut arg_vars = Vec::new();
                for a in args {
                    a.idents(&mut arg_vars);
                }
                out.push((name.clone(), arg_vars));
            }
            for a in args {
                collect_io_calls(a, out);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_io_calls(lhs, out);
            collect_io_calls(rhs, out);
        }
        Expr::Unary { operand, .. } | Expr::Postfix { operand, .. } => {
            collect_io_calls(operand, out);
        }
        Expr::Index { base, index } => {
            collect_io_calls(base, out);
            collect_io_calls(index, out);
        }
        Expr::Member { base, .. } => collect_io_calls(base, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::reconstruct;
    use tunio_cminus::parser::parse;
    use tunio_cminus::printer::print_program;
    use tunio_cminus::samples;

    /// Ids of statements whose printed line contains `needle`.
    fn ids_containing(program: &Program, needle: &str) -> Vec<StmtId> {
        let printed = print_program(program);
        let lines: Vec<&str> = printed.text.lines().collect();
        printed
            .stmt_lines
            .iter()
            .filter(|(_, line)| lines[(**line - 1) as usize].contains(needle))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Regression for the shadowing bug the syntactic pass cannot fix:
    /// its assigner map is keyed on bare names, so the outer `size` read
    /// by `H5Dwrite` drags in the *inner* `size`'s store too. The first
    /// half of this test documents the old pass failing; the second half
    /// shows the dataflow slicer getting it right.
    #[test]
    fn shadowing_old_pass_over_keeps_new_pass_does_not() {
        let src = r#"
            void f(int n) {
                int size = io_size(n);
                if (n > 0) {
                    int size = scratch_size(n);
                    crunch(size);
                }
                H5Dwrite(dset, size);
            }
        "#;
        let prog = parse(src).unwrap();
        let inner: Vec<StmtId> = ids_containing(&prog, "scratch_size");
        assert_eq!(inner.len(), 1);

        // Documented failure of the syntactic pass: the inner shadow is
        // a different variable, yet name-keyed marking keeps it.
        let old = mark_program(&prog);
        assert!(
            old.kept.contains(&inner[0]),
            "if this starts failing, the syntactic pass learned scoping \
             and the comparator docs need updating"
        );

        // The slicer resolves the use to the outer declaration only.
        let new = mark_program_dataflow(&prog);
        assert!(!new.kept.contains(&inner[0]));
        for id in ids_containing(&prog, "io_size") {
            assert!(new.kept.contains(&id), "outer decl must be kept");
        }
    }

    /// Same conflation across functions: the old pass's assigner map is
    /// program-global, so `buf` in an I/O-free function is kept because
    /// an unrelated `buf` elsewhere feeds a write.
    #[test]
    fn cross_function_same_name_old_pass_conflates() {
        let src = r#"
            void diagnostics(int n) {
                double * buf = scratch(n);
                accumulate(buf, n);
            }
            void writer(int n) {
                double * buf = fill(n);
                H5Dwrite(dset, buf);
            }
        "#;
        let prog = parse(src).unwrap();
        let scratch: Vec<StmtId> = ids_containing(&prog, "scratch");
        let old = mark_program(&prog);
        assert!(
            old.kept.contains(&scratch[0]),
            "documented old-pass conflation across functions"
        );
        let new = mark_program_dataflow(&prog);
        assert!(!new.kept.contains(&scratch[0]));
        for id in ids_containing(&prog, "fill(n)") {
            assert!(new.kept.contains(&id));
        }
    }

    #[test]
    fn dead_store_is_dropped_by_the_slicer_only() {
        let src = r#"
            void f(int n) {
                double * buf = alloc(n);
                buf = stale_fill(n);
                buf = final_fill(n);
                H5Dwrite(dset, buf);
            }
        "#;
        let prog = parse(src).unwrap();
        let stale = ids_containing(&prog, "stale_fill");
        let old = mark_program(&prog);
        let new = mark_program_dataflow(&prog);
        assert!(old.kept.contains(&stale[0]), "old pass keeps dead stores");
        assert!(!new.kept.contains(&stale[0]));
        // And the kernel still carries the store that matters.
        let text = print_program(&reconstruct(&prog, &new)).text;
        assert!(text.contains("final_fill"), "{text}");
        assert!(!text.contains("stale_fill"), "{text}");
    }

    #[test]
    fn comparator_reports_the_disagreements() {
        let src = r#"
            void f(int n) {
                double * buf = alloc(n);
                buf = stale_fill(n);
                buf = final_fill(n);
                H5Dwrite(dset, buf);
            }
        "#;
        let prog = parse(src).unwrap();
        let cmp = compare_markings(&prog);
        assert_eq!(cmp.only_syntactic.len(), 1, "the dead store");
        assert!(cmp.only_dataflow.is_empty());
        assert!(cmp.agreement() < 1.0);
        assert!(cmp.dataflow_kept < cmp.syntactic_kept);
    }

    #[test]
    fn passes_agree_closely_on_all_samples() {
        for (name, cmp) in compare_samples() {
            // The samples were written for the syntactic pass; the slicer
            // must stay close (it differs only on genuine dead stores /
            // decl anchors), and both must find the same I/O.
            assert!(
                cmp.agreement() >= 0.8,
                "{name}: agreement {:.2} ({:?} vs {:?})",
                cmp.agreement(),
                cmp.only_syntactic,
                cmp.only_dataflow
            );
        }
    }

    #[test]
    fn samples_io_seeds_are_identical_between_passes() {
        for (name, src) in samples::all_samples() {
            let prog = parse(src).unwrap();
            let old = mark_program(&prog);
            let new = mark_program_dataflow(&prog);
            assert_eq!(old.io_seeds, new.io_seeds, "{name}");
        }
    }

    #[test]
    fn predicate_agrees_with_the_classifier() {
        // `tunio_analysis::default_io_predicate` duplicates the classifier
        // (the dependency points the other way); keep them in lockstep.
        for n in [
            "H5Fcreate",
            "H5Dwrite",
            "H5Fclose",
            "MPI_File_write_all",
            "MPI_File_open",
            "fopen",
            "fwrite",
            "lseek",
            "printf",
            "fprintf",
            "puts",
            "perror",
            "malloc",
            "MPI_Send",
            "compute_energy",
        ] {
            assert_eq!(
                tunio_analysis::default_io_predicate(n),
                is_io_call(n),
                "classifier disagreement on {n}"
            );
        }
    }

    #[test]
    fn kernel_preserves_io_call_trace() {
        let prog = parse(samples::VPIC_IO).unwrap();
        let new = mark_program_dataflow(&prog);
        let kernel = reconstruct(&prog, &new);
        assert_eq!(io_call_trace(&prog), io_call_trace(&kernel));
        let trace = io_call_trace(&prog);
        assert!(trace.iter().any(|(n, _)| n == "H5Dwrite"));
    }
}
