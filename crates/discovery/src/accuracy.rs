//! Kernel-fidelity metrics (paper Fig 8c).
//!
//! Compares what an extracted kernel (and a loop-reduced kernel, after
//! extrapolating its scalable metrics back up) would report against the
//! original application, as absolute percentage error of bytes written and
//! write-operation counts.

use tunio_iosim::Simulator;
use tunio_params::StackConfig;
use tunio_workloads::{AppSpec, Variant, Workload};

/// Absolute percentage errors of one kernel variant vs. the full app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// |error| of total bytes written, percent.
    pub bytes_written_err_pct: f64,
    /// |error| of write-operation count, percent.
    pub write_ops_err_pct: f64,
}

/// Measure kernel fidelity by running full app and kernel variant under
/// the same configuration and comparing extrapolated observables.
pub fn measure_fidelity(
    sim: &Simulator,
    app: &AppSpec,
    variant: Variant,
    cfg: &StackConfig,
) -> FidelityReport {
    let full = Workload::new(app.clone(), Variant::Full);
    let kern = Workload::new(app.clone(), variant);
    let full_report = sim.run(&full.phases(), cfg, 0);
    let kern_report = sim.run(&kern.phases(), cfg, 0);
    let scale = kern.extrapolation_factor();

    let err = |kernel_value: f64, full_value: f64| -> f64 {
        if full_value == 0.0 {
            0.0
        } else {
            ((kernel_value * scale - full_value) / full_value).abs() * 100.0
        }
    };

    FidelityReport {
        bytes_written_err_pct: err(kern_report.bytes_written, full_report.bytes_written),
        write_ops_err_pct: err(kern_report.write_ops, full_report.write_ops),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_params::ParameterSpace;
    use tunio_workloads::macsio_vpic_dipole;

    fn setup() -> (Simulator, AppSpec, StackConfig) {
        let space = ParameterSpace::tunio_default();
        (
            Simulator::cori_4node(0),
            macsio_vpic_dipole(),
            StackConfig::defaults(&space),
        )
    }

    #[test]
    fn kernel_bytes_error_is_tiny() {
        // Paper: 0.0002% bytes error for the kernel.
        let (sim, app, cfg) = setup();
        let r = measure_fidelity(&sim, &app, Variant::Kernel, &cfg);
        assert!(r.bytes_written_err_pct < 1.0, "{r:?}");
    }

    #[test]
    fn kernel_ops_error_reflects_dropped_logging() {
        // Paper: 19.05% write-op error for the kernel (dropped logging).
        let (sim, app, cfg) = setup();
        let r = measure_fidelity(&sim, &app, Variant::Kernel, &cfg);
        assert!(
            (2.0..35.0).contains(&r.write_ops_err_pct),
            "ops error {:.2}%",
            r.write_ops_err_pct
        );
    }

    #[test]
    fn reduced_kernel_ops_error_smaller_than_kernel() {
        // Paper: the reduced kernel's +first-iteration overshoot cancels
        // part of the missing-logging deficit (4.87% < 19.05%).
        let (sim, app, cfg) = setup();
        let kernel = measure_fidelity(&sim, &app, Variant::Kernel, &cfg);
        let reduced = measure_fidelity(
            &sim,
            &app,
            Variant::ReducedKernel {
                keep_fraction: 0.05,
            },
            &cfg,
        );
        assert!(
            reduced.write_ops_err_pct < kernel.write_ops_err_pct,
            "reduced {:.2}% vs kernel {:.2}%",
            reduced.write_ops_err_pct,
            kernel.write_ops_err_pct
        );
        assert!(reduced.bytes_written_err_pct < 2.0);
    }

    #[test]
    fn full_variant_has_zero_error() {
        let (sim, app, cfg) = setup();
        let r = measure_fidelity(&sim, &app, Variant::Full, &cfg);
        assert!(r.bytes_written_err_pct < 1e-9);
        assert!(r.write_ops_err_pct < 1e-9);
    }
}
