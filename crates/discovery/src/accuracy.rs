//! Accuracy metrics: kernel fidelity (paper Fig 8c) and static-inference
//! accuracy.
//!
//! The kernel-fidelity half compares what an extracted kernel (and a
//! loop-reduced kernel, after extrapolating its scalable metrics back up)
//! would report against the original application, as absolute percentage
//! error of bytes written and write-operation counts.
//!
//! The inference half scores the *static* workload predictions from
//! `tunio_analysis::predict_program` against a *dynamic* replay of the
//! same program ([`crate::dynexec::replay`]) under the same concrete
//! parameter bindings: did the abstract interpreter classify each I/O
//! site's access pattern correctly, and how far off are its transfer
//! volume and request sizes? [`score_corpus`] runs this over the whole
//! built-in sample corpus and is the basis of the CI inference gate.

use std::collections::BTreeMap;
use tunio_analysis::{predict_program, IoPrediction};
use tunio_cminus::ast::Program;
use tunio_iosim::Simulator;
use tunio_params::StackConfig;
use tunio_workloads::{AppSpec, Variant, Workload};

use crate::dynexec::replay;
use crate::infer::default_bindings;

/// Absolute percentage errors of one kernel variant vs. the full app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// |error| of total bytes written, percent.
    pub bytes_written_err_pct: f64,
    /// |error| of write-operation count, percent.
    pub write_ops_err_pct: f64,
}

/// Measure kernel fidelity by running full app and kernel variant under
/// the same configuration and comparing extrapolated observables.
pub fn measure_fidelity(
    sim: &Simulator,
    app: &AppSpec,
    variant: Variant,
    cfg: &StackConfig,
) -> FidelityReport {
    let full = Workload::new(app.clone(), Variant::Full);
    let kern = Workload::new(app.clone(), variant);
    let full_report = sim.run(&full.phases(), cfg, 0);
    let kern_report = sim.run(&kern.phases(), cfg, 0);
    let scale = kern.extrapolation_factor();

    let err = |kernel_value: f64, full_value: f64| -> f64 {
        if full_value == 0.0 {
            0.0
        } else {
            ((kernel_value * scale - full_value) / full_value).abs() * 100.0
        }
    };

    FidelityReport {
        bytes_written_err_pct: err(kern_report.bytes_written, full_report.bytes_written),
        write_ops_err_pct: err(kern_report.write_ops, full_report.write_ops),
    }
}

/// Static-vs-dynamic accuracy of one entry function's I/O prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceScore {
    /// Entry function scored.
    pub entry: String,
    /// Concrete parameter bindings both sides ran under.
    pub bindings: BTreeMap<String, i64>,
    /// I/O call sites the static model predicted.
    pub sites_predicted: usize,
    /// I/O call sites the dynamic replay executed.
    pub sites_observed: usize,
    /// Sites present on both sides (matched by statement id).
    pub sites_matched: usize,
    /// Matched sites whose predicted access pattern equals the observed one.
    pub patterns_correct: usize,
    /// Total bytes the static model predicts under the bindings.
    pub volume_predicted: u64,
    /// Total bytes the dynamic replay moved.
    pub volume_observed: u64,
    /// |predicted − observed| / observed, percent (0 when both are 0).
    pub volume_err_pct: f64,
    /// Mean request-size error over matched sites where the static model
    /// committed to a concrete request size; `None` when no site did.
    pub request_err_pct: Option<f64>,
}

impl InferenceScore {
    /// Fraction of matched sites with the right pattern (1.0 when none).
    pub fn pattern_accuracy(&self) -> f64 {
        if self.sites_matched == 0 {
            1.0
        } else {
            self.patterns_correct as f64 / self.sites_matched as f64
        }
    }
}

fn pct_err(predicted: u64, observed: u64) -> f64 {
    if observed == 0 {
        if predicted == 0 {
            0.0
        } else {
            100.0
        }
    } else {
        (predicted as f64 - observed as f64).abs() / observed as f64 * 100.0
    }
}

/// Score one prediction against a dynamic replay of the same program under
/// the same `bindings`. Returns `None` when the entry cannot be replayed.
pub fn score_inference(
    prog: &Program,
    prediction: &IoPrediction,
    bindings: &BTreeMap<String, i64>,
) -> Option<InferenceScore> {
    let trace = replay(prog, &prediction.entry, bindings)?;
    let mut matched = 0usize;
    let mut correct = 0usize;
    let mut req_errs = Vec::new();
    for site in &prediction.sites {
        let Some(obs) = trace.sites.get(&site.stmt) else {
            continue;
        };
        matched += 1;
        if site.pattern.label() == obs.observed_pattern() {
            correct += 1;
        }
        if let Some(pred_req) = site.bytes_per_op.eval(bindings) {
            if pred_req > 0 && obs.ops > 0 {
                let obs_req = obs.bytes / obs.ops;
                req_errs.push(pct_err(pred_req.max(0) as u64, obs_req));
            }
        }
    }
    let volume_predicted = prediction.total_bytes(bindings);
    Some(InferenceScore {
        entry: prediction.entry.clone(),
        bindings: bindings.clone(),
        sites_predicted: prediction.sites.len(),
        sites_observed: trace.sites.len(),
        sites_matched: matched,
        patterns_correct: correct,
        volume_predicted,
        volume_observed: trace.total_bytes,
        volume_err_pct: pct_err(volume_predicted, trace.total_bytes),
        request_err_pct: if req_errs.is_empty() {
            None
        } else {
            Some(req_errs.iter().sum::<f64>() / req_errs.len() as f64)
        },
    })
}

/// Inference accuracy aggregated over a sample corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusScore {
    /// Per-entry scores, tagged with the sample name they came from.
    pub per_app: Vec<(String, InferenceScore)>,
}

impl CorpusScore {
    /// Corpus-wide pattern classification accuracy (matched sites only).
    pub fn pattern_accuracy(&self) -> f64 {
        let matched: usize = self.per_app.iter().map(|(_, s)| s.sites_matched).sum();
        let correct: usize = self.per_app.iter().map(|(_, s)| s.patterns_correct).sum();
        if matched == 0 {
            1.0
        } else {
            correct as f64 / matched as f64
        }
    }

    /// Worst per-app volume error, percent.
    pub fn max_volume_err_pct(&self) -> f64 {
        self.per_app
            .iter()
            .map(|(_, s)| s.volume_err_pct)
            .fold(0.0, f64::max)
    }
}

/// Score static inference against dynamic replay for every entry function
/// of every built-in sample, under [`default_bindings`].
pub fn score_corpus() -> CorpusScore {
    let mut per_app = Vec::new();
    for (name, src) in tunio_cminus::samples::all_samples() {
        let prog = tunio_cminus::parser::parse(src).expect("sample parses");
        for prediction in predict_program(&prog) {
            let bindings = default_bindings(&prediction.params);
            if let Some(score) = score_inference(&prog, &prediction, &bindings) {
                per_app.push((name.to_string(), score));
            }
        }
    }
    CorpusScore { per_app }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_params::ParameterSpace;
    use tunio_workloads::macsio_vpic_dipole;

    fn setup() -> (Simulator, AppSpec, StackConfig) {
        let space = ParameterSpace::tunio_default();
        (
            Simulator::cori_4node(0),
            macsio_vpic_dipole(),
            StackConfig::defaults(&space),
        )
    }

    #[test]
    fn kernel_bytes_error_is_tiny() {
        // Paper: 0.0002% bytes error for the kernel.
        let (sim, app, cfg) = setup();
        let r = measure_fidelity(&sim, &app, Variant::Kernel, &cfg);
        assert!(r.bytes_written_err_pct < 1.0, "{r:?}");
    }

    #[test]
    fn kernel_ops_error_reflects_dropped_logging() {
        // Paper: 19.05% write-op error for the kernel (dropped logging).
        let (sim, app, cfg) = setup();
        let r = measure_fidelity(&sim, &app, Variant::Kernel, &cfg);
        assert!(
            (2.0..35.0).contains(&r.write_ops_err_pct),
            "ops error {:.2}%",
            r.write_ops_err_pct
        );
    }

    #[test]
    fn reduced_kernel_ops_error_smaller_than_kernel() {
        // Paper: the reduced kernel's +first-iteration overshoot cancels
        // part of the missing-logging deficit (4.87% < 19.05%).
        let (sim, app, cfg) = setup();
        let kernel = measure_fidelity(&sim, &app, Variant::Kernel, &cfg);
        let reduced = measure_fidelity(
            &sim,
            &app,
            Variant::ReducedKernel {
                keep_fraction: 0.05,
            },
            &cfg,
        );
        assert!(
            reduced.write_ops_err_pct < kernel.write_ops_err_pct,
            "reduced {:.2}% vs kernel {:.2}%",
            reduced.write_ops_err_pct,
            kernel.write_ops_err_pct
        );
        assert!(reduced.bytes_written_err_pct < 2.0);
    }

    #[test]
    fn full_variant_has_zero_error() {
        let (sim, app, cfg) = setup();
        let r = measure_fidelity(&sim, &app, Variant::Full, &cfg);
        assert!(r.bytes_written_err_pct < 1e-9);
        assert!(r.write_ops_err_pct < 1e-9);
    }
}

#[cfg(test)]
mod inference_tests {
    use super::*;
    use tunio_cminus::parser::parse;
    use tunio_cminus::samples;

    fn score_sample(src: &str) -> InferenceScore {
        let prog = parse(src).unwrap();
        let preds = predict_program(&prog);
        assert_eq!(preds.len(), 1);
        let bindings = default_bindings(&preds[0].params);
        score_inference(&prog, &preds[0], &bindings).unwrap()
    }

    #[test]
    fn vpic_inference_is_exact() {
        let s = score_sample(samples::VPIC_IO);
        assert_eq!(s.sites_matched, 1);
        assert_eq!(s.patterns_correct, 1);
        assert_eq!(s.volume_predicted, s.volume_observed);
        assert_eq!(s.volume_err_pct, 0.0);
        assert_eq!(s.request_err_pct, Some(0.0));
    }

    #[test]
    fn bdcats_volume_error_comes_from_final_write() {
        // The final label write joins two buffers statically, so its byte
        // count is unknown (predicted 0); everything else is exact. The
        // miss is one 8*np write out of (max_rounds+1) transfers.
        let s = score_sample(samples::BDCATS_IO);
        assert_eq!(s.sites_predicted, 2);
        assert_eq!(s.sites_matched, 2);
        assert_eq!(s.patterns_correct, 2);
        assert!(s.volume_predicted < s.volume_observed);
        assert!(s.volume_err_pct < 25.0, "{s:?}");
    }

    #[test]
    fn corpus_meets_the_paper_gates() {
        let corpus = score_corpus();
        assert!(corpus.per_app.len() >= 8, "{}", corpus.per_app.len());
        assert!(
            corpus.pattern_accuracy() >= 0.8,
            "pattern accuracy {:.2}",
            corpus.pattern_accuracy()
        );
        assert!(
            corpus.max_volume_err_pct() <= 25.0,
            "volume error {:.1}%",
            corpus.max_volume_err_pct()
        );
    }
}
