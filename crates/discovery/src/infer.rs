//! Static I/O workload inference: lower an abstract-interpretation
//! prediction into an executable workload spec.
//!
//! `tunio-analysis`'s [`predict_program`] produces per-entry
//! [`IoPrediction`]s whose byte counts and op counts are symbolic in the
//! entry function's parameters. This module closes the loop to the rest of
//! the framework:
//!
//! 1. [`default_bindings`] picks plausible concrete values for those
//!    parameters (small counts for loop-like names, large counts for
//!    size-like names), mirroring how a user would size a smoke run.
//! 2. [`lower_prediction`] evaluates the prediction under the bindings and
//!    emits a [`tunio_workloads::AppSpec`] plus the distilled
//!    [`tunio_workloads::WorkloadFeatures`] the tuner warm-starts from.
//! 3. [`infer_program`] runs the whole pipeline over a parsed program and
//!    returns one [`InferredWorkload`] per entry function.
//!
//! Every inference emits `tunio.infer.app` spans (duration, confidence)
//! and `tunio.infer.site` events, and bumps the `tunio.infer.apps` /
//! `tunio.infer.sites` counters, so `tunio-report` can show inference time
//! and per-app prediction confidence.

use std::collections::BTreeMap;
use tunio_analysis::iomodel::{Direction, IoPrediction, PredPattern};
use tunio_analysis::predict_program;
use tunio_cminus::ast::Program;
use tunio_iosim::{AccessPattern, IoKind};
use tunio_workloads::{AppSpec, IterationIo, WorkloadFeatures};

/// Default concrete value for loop-like size parameters (steps, rounds…).
const DEFAULT_ITER_PARAM: i64 = 12;
/// Default concrete value for data-size parameters (element counts…).
const DEFAULT_SIZE_PARAM: i64 = 32_768;
/// Bytes per logging op assumed when lowering (one printf-style line).
const LOGGING_BYTES_PER_OP: u64 = 64;

/// One entry function's inferred workload: the raw symbolic prediction,
/// the concrete parameter bindings used to evaluate it, and the lowered
/// spec + feature vector.
#[derive(Debug, Clone)]
pub struct InferredWorkload {
    /// The symbolic prediction from abstract interpretation.
    pub prediction: IoPrediction,
    /// Concrete values assigned to the entry's parameters.
    pub bindings: BTreeMap<String, i64>,
    /// Executable workload spec lowered from the prediction.
    pub spec: AppSpec,
    /// Scale-free feature summary for tuner warm-start.
    pub features: WorkloadFeatures,
}

/// Choose plausible concrete values for an entry function's parameters:
/// names that look like iteration counts (`steps`, `rounds`, `frames`,
/// `probes`, `iters`) get a small value; everything else is treated as a
/// data size and gets a large one.
pub fn default_bindings(params: &[String]) -> BTreeMap<String, i64> {
    let mut out = BTreeMap::new();
    for p in params {
        let lower = p.to_ascii_lowercase();
        let looks_iter = ["step", "round", "frame", "probe", "iter"]
            .iter()
            .any(|m| lower.contains(m));
        out.insert(
            p.clone(),
            if looks_iter {
                DEFAULT_ITER_PARAM
            } else {
                DEFAULT_SIZE_PARAM
            },
        );
    }
    out
}

fn lower_pattern(p: &PredPattern) -> (AccessPattern, bool) {
    match p {
        PredPattern::CollectiveLike => (AccessPattern::Contiguous, true),
        PredPattern::Sequential => (AccessPattern::Contiguous, false),
        PredPattern::Strided { stride } => (AccessPattern::Strided { record: *stride }, false),
        PredPattern::Random => (AccessPattern::Random, false),
    }
}

/// Evaluate a symbolic prediction under concrete `bindings` and lower it
/// to an [`AppSpec`] + [`WorkloadFeatures`] pair.
///
/// The lowering spreads each site's total predicted traffic evenly across
/// the entry's main-loop iterations (conditional sites such as FLASH's
/// every-4th-step plotfile become fractional per-iteration byte counts
/// rounded down), attaches per-loop metadata to the first site, and models
/// logging as one small write per predicted logging op.
pub fn lower_prediction(
    prediction: &IoPrediction,
    bindings: &BTreeMap<String, i64>,
) -> (AppSpec, WorkloadFeatures) {
    let span = tunio_trace::span(
        "tunio.infer.app",
        vec![
            ("app", prediction.entry.clone().into()),
            ("confidence", prediction.confidence.into()),
            ("sites", prediction.sites.len().into()),
        ],
    );
    let iters = prediction
        .loop_iterations
        .eval(bindings)
        .unwrap_or(1)
        .max(1) as u64;
    let eval0 = |v: &tunio_analysis::AbsVal| v.eval(bindings).unwrap_or(0).max(0) as u64;

    let meta_loop_total = eval0(&prediction.meta_loop);
    let mut iteration_io = Vec::new();
    for (i, site) in prediction.sites.iter().enumerate() {
        let total = site.volume_bytes(bindings);
        let ops_total = eval0(&site.ops);
        let (pattern, collective_capable) = lower_pattern(&site.pattern);
        let io = IterationIo {
            dataset: if site.target.is_empty() {
                site.call.clone()
            } else {
                site.target.clone()
            },
            kind: match site.dir {
                Direction::Read => IoKind::Read,
                Direction::Write => IoKind::Write,
            },
            per_proc_bytes: total / iters,
            ops_per_proc: (ops_total / iters).max(1),
            pattern,
            meta_ops: if i == 0 { meta_loop_total / iters } else { 0 },
            collective_capable: collective_capable || site.collective,
            chunk_reuse_bytes: 0,
            pre_striped: 0,
        };
        tunio_trace::event(
            "tunio.infer.site",
            vec![
                ("bytes", total.into()),
                ("ops", ops_total.into()),
                ("confidence", site.confidence.into()),
            ],
        );
        tunio_trace::counter("tunio.infer.sites").inc(1);
        iteration_io.push(io);
    }

    let spec = AppSpec {
        name: prediction.entry.clone(),
        setup_meta_ops: eval0(&prediction.meta_setup),
        setup_header_bytes: 0,
        loop_iterations: iters.min(u32::MAX as u64) as u32,
        compute_per_iteration_s: 0.0,
        iteration_io,
        logging_ops_per_iteration: eval0(&prediction.logging_loop) / iters,
        logging_bytes_per_op: LOGGING_BYTES_PER_OP,
    };
    let features = WorkloadFeatures::from_spec(&spec, prediction.confidence);
    tunio_trace::counter("tunio.infer.apps").inc(1);
    drop(span);
    (spec, features)
}

/// Run the full static-inference pipeline over a parsed program: predict
/// every entry function's I/O, bind its parameters with
/// [`default_bindings`] (overridden by `overrides` where names match), and
/// lower each prediction. Entries are returned in `predict_program` order.
pub fn infer_program(prog: &Program, overrides: &BTreeMap<String, i64>) -> Vec<InferredWorkload> {
    predict_program(prog)
        .into_iter()
        .map(|prediction| {
            let mut bindings = default_bindings(&prediction.params);
            for (k, v) in overrides {
                if bindings.contains_key(k) {
                    bindings.insert(k.clone(), *v);
                }
            }
            let (spec, features) = lower_prediction(&prediction, &bindings);
            InferredWorkload {
                prediction,
                bindings,
                spec,
                features,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::parser::parse;
    use tunio_cminus::samples;

    fn infer_sample(src: &str) -> InferredWorkload {
        let prog = parse(src).unwrap();
        let mut all = infer_program(&prog, &BTreeMap::new());
        assert_eq!(all.len(), 1);
        all.remove(0)
    }

    #[test]
    fn binding_heuristic_separates_iters_from_sizes() {
        let b = default_bindings(&["num_steps".into(), "particles".into()]);
        assert_eq!(b["num_steps"], DEFAULT_ITER_PARAM);
        assert_eq!(b["particles"], DEFAULT_SIZE_PARAM);
    }

    #[test]
    fn vpic_lowers_to_collective_writes() {
        let iw = infer_sample(samples::VPIC_IO);
        assert_eq!(iw.spec.name, "vpic_dump");
        assert_eq!(iw.spec.loop_iterations, DEFAULT_ITER_PARAM as u32);
        assert_eq!(iw.spec.iteration_io.len(), 1);
        let io = &iw.spec.iteration_io[0];
        assert_eq!(io.kind, IoKind::Write);
        assert_eq!(io.per_proc_bytes, 8 * DEFAULT_SIZE_PARAM as u64);
        assert!(io.collective_capable);
        assert_eq!(io.dataset, "x");
        assert!(iw.features.collective_fraction > 0.99);
        // One printf every diag_interval=10 steps: 2 logging ops over 12
        // iterations floors to 0 per iteration.
        assert_eq!(iw.spec.logging_ops_per_iteration, 0);
        assert!(iw.spec.setup_meta_ops > 0);
    }

    #[test]
    fn ior_lowers_to_random_reads() {
        let iw = infer_sample(samples::IOR_RANDOM_IO);
        let io = &iw.spec.iteration_io[0];
        assert_eq!(io.kind, IoKind::Read);
        assert_eq!(io.pattern, AccessPattern::Random);
        assert_eq!(io.per_proc_bytes, 262_144);
        assert!(iw.features.random_fraction > 0.99);
        assert_eq!(iw.features.read_fraction, 1.0);
    }

    #[test]
    fn gyro_lowers_to_strided_writes() {
        let iw = infer_sample(samples::GYRO_STRIDED_IO);
        let io = &iw.spec.iteration_io[0];
        assert_eq!(io.pattern, AccessPattern::Strided { record: 4_194_304 });
        assert!(iw.features.strided_fraction > 0.99);
    }

    #[test]
    fn overrides_replace_default_bindings() {
        let prog = parse(samples::NYX_LOG_IO).unwrap();
        let mut ov = BTreeMap::new();
        ov.insert("steps".to_string(), 3i64);
        ov.insert("unrelated".to_string(), 99i64);
        let iw = infer_program(&prog, &ov).remove(0);
        assert_eq!(iw.bindings["steps"], 3);
        assert!(!iw.bindings.contains_key("unrelated"));
        assert_eq!(iw.spec.loop_iterations, 3);
    }

    #[test]
    fn pure_compute_has_no_io() {
        let iw = infer_sample(samples::PURE_COMPUTE);
        assert!(iw.spec.iteration_io.is_empty());
        assert_eq!(iw.features.total_bytes, 0);
    }
}
