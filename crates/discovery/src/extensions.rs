//! Extended source-code modification techniques (paper §VI future work).
//!
//! "There are a wide variety of techniques that can be utilized to
//! transform the generated I/O kernel in interesting ways, such as
//! simulating loops, removing blind writes, simulating necessary compute,
//! and more." This module implements those three:
//!
//! * [`remove_blind_writes`] — drops repeated writes whose buffer is never
//!   modified inside the enclosing loop (their content is identical every
//!   iteration, so they carry no tuning-relevant information beyond the
//!   first occurrence).
//! * [`simulate_compute`] — instead of deleting unmarked compute
//!   statements, replaces each contiguous run of them with a
//!   `tunio_sleep(n)` call so the kernel preserves the *pacing* between
//!   I/O phases (burstiness matters for caches and aggregation).
//! * [`simulate_loops`] — replaces a literal-bound I/O loop body with a
//!   single instance preceded by a `tunio_replay(n)` marker, letting the
//!   evaluation harness replay the recorded iteration n times without
//!   re-executing the loop machinery.

use crate::marking::Marking;
use crate::transform::block_contains_io;
use tunio_cminus::ast::{Block, Expr, Program, Stmt, StmtId, StmtKind};

/// Synthetic-call name used by compute simulation.
pub const SLEEP_CALL: &str = "tunio_sleep";
/// Synthetic-call name used by loop simulation.
pub const REPLAY_CALL: &str = "tunio_replay";

/// Remove writes inside loops whose data argument is never reassigned in
/// the loop body ("blind" repeated writes). Returns the number of write
/// statements removed.
pub fn remove_blind_writes(program: &mut Program) -> usize {
    let mut removed = 0;
    for f in &mut program.functions {
        scan_block(&mut f.body, &mut removed);
    }
    removed
}

fn scan_block(block: &mut Block, removed: &mut usize) {
    for stmt in &mut block.stmts {
        match &mut stmt.kind {
            StmtKind::For { body, .. }
            | StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. } => {
                // Variables assigned anywhere in the loop body.
                let mut assigned: Vec<String> = Vec::new();
                collect_assigned(body, &mut assigned);
                // Drop H5Dwrite-style calls whose data args are all
                // loop-invariant; keep everything else.
                let before = body.stmts.len();
                body.stmts.retain(|s| !is_blind_write(s, &assigned));
                *removed += before - body.stmts.len();
                scan_block(body, removed);
            }
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => {
                scan_block(then_block, removed);
                if let Some(e) = else_block {
                    scan_block(e, removed);
                }
            }
            _ => {}
        }
    }
}

fn collect_assigned(block: &Block, out: &mut Vec<String>) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Assign { lhs, .. } => {
                if let Some(root) = lhs.lvalue_root() {
                    out.push(root.to_string());
                }
            }
            StmtKind::Decl { name, .. } => out.push(name.clone()),
            StmtKind::Expr(Expr::Postfix { operand, .. })
            | StmtKind::Expr(Expr::Unary { operand, .. }) => {
                if let Some(root) = operand.lvalue_root() {
                    out.push(root.to_string());
                }
            }
            StmtKind::For {
                init, update, body, ..
            } => {
                collect_assigned(
                    &Block {
                        stmts: vec![(**init).clone(), (**update).clone()],
                    },
                    out,
                );
                collect_assigned(body, out);
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                collect_assigned(body, out)
            }
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => {
                collect_assigned(then_block, out);
                if let Some(e) = else_block {
                    collect_assigned(e, out);
                }
            }
            _ => {}
        }
    }
}

/// A statement is a blind write when it is a bare `H5Dwrite(…)`-style call
/// whose non-handle arguments are loop-invariant identifiers.
fn is_blind_write(stmt: &Stmt, assigned: &[String]) -> bool {
    let StmtKind::Expr(Expr::Call { name, args }) = &stmt.kind else {
        return false;
    };
    if !(name == "H5Dwrite" || name == "fwrite" || name == "MPI_File_write") {
        return false;
    }
    // Data arguments (conventionally after the first handle argument).
    let data_args = &args[args.len().min(1)..];
    if data_args.is_empty() {
        return false;
    }
    data_args.iter().all(|a| match a {
        Expr::Ident(n) => !assigned.contains(n),
        Expr::Int(_) | Expr::Str(_) | Expr::Float(_) => true,
        _ => false,
    })
}

/// Rebuild a program keeping marked statements and replacing each
/// contiguous run of *unmarked* statements with `tunio_sleep(n)` where `n`
/// is the number of statements elided — preserving inter-I/O pacing.
pub fn simulate_compute(program: &Program, marking: &Marking) -> Program {
    let mut next_id = program.stmt_count() as u32 + 10_000;
    let functions = program
        .functions
        .iter()
        .map(|f| tunio_cminus::ast::Function {
            ret: f.ret.clone(),
            name: f.name.clone(),
            params: f.params.clone(),
            body: sim_block(&f.body, marking, &mut next_id),
        })
        .collect();
    Program { functions }
}

fn sim_block(block: &Block, marking: &Marking, next_id: &mut u32) -> Block {
    let mut stmts = Vec::new();
    let mut elided = 0usize;
    let flush = |stmts: &mut Vec<Stmt>, elided: &mut usize, next_id: &mut u32| {
        if *elided > 0 {
            stmts.push(Stmt::new(
                StmtId(*next_id),
                StmtKind::Expr(Expr::Call {
                    name: SLEEP_CALL.into(),
                    args: vec![Expr::Int(*elided as i64)],
                }),
            ));
            *next_id += 1;
            *elided = 0;
        }
    };
    for stmt in &block.stmts {
        if !marking.kept.contains(&stmt.id) {
            elided += 1;
            continue;
        }
        flush(&mut stmts, &mut elided, next_id);
        let kind = match &stmt.kind {
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => StmtKind::If {
                cond: cond.clone(),
                then_block: sim_block(then_block, marking, next_id),
                else_block: else_block.as_ref().map(|b| sim_block(b, marking, next_id)),
            },
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => StmtKind::For {
                init: init.clone(),
                cond: cond.clone(),
                update: update.clone(),
                body: sim_block(body, marking, next_id),
            },
            StmtKind::While { cond, body } => StmtKind::While {
                cond: cond.clone(),
                body: sim_block(body, marking, next_id),
            },
            StmtKind::DoWhile { body, cond } => StmtKind::DoWhile {
                body: sim_block(body, marking, next_id),
                cond: cond.clone(),
            },
            other => other.clone(),
        };
        stmts.push(Stmt {
            id: stmt.id,
            kind,
            span: stmt.span,
        });
    }
    flush(&mut stmts, &mut elided, next_id);
    Block { stmts }
}

/// Replace each literal-bound `for` loop containing I/O with a
/// `tunio_replay(n)` marker followed by a single unrolled body. Returns
/// the number of loops simulated.
pub fn simulate_loops(program: &mut Program) -> usize {
    let mut simulated = 0;
    let mut next_id = program.stmt_count() as u32 + 20_000;
    for f in &mut program.functions {
        f.body = replace_loops(&f.body, &mut simulated, &mut next_id);
    }
    simulated
}

fn replace_loops(block: &Block, simulated: &mut usize, next_id: &mut u32) -> Block {
    let mut stmts = Vec::new();
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::For { cond, body, .. } if block_contains_io(body) => {
                let bound = cond.as_ref().and_then(|c| match c {
                    Expr::Binary { op, rhs, .. } if op == "<" || op == "<=" => match &**rhs {
                        Expr::Int(v) => Some(*v),
                        _ => None,
                    },
                    _ => None,
                });
                match bound {
                    Some(n) => {
                        *simulated += 1;
                        stmts.push(Stmt::new(
                            StmtId(*next_id),
                            StmtKind::Expr(Expr::Call {
                                name: REPLAY_CALL.into(),
                                args: vec![Expr::Int(n)],
                            }),
                        ));
                        *next_id += 1;
                        let inner = replace_loops(body, simulated, next_id);
                        stmts.extend(inner.stmts);
                    }
                    None => stmts.push(stmt.clone()),
                }
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => stmts.push(Stmt::new(
                stmt.id,
                StmtKind::If {
                    cond: cond.clone(),
                    then_block: replace_loops(then_block, simulated, next_id),
                    else_block: else_block
                        .as_ref()
                        .map(|b| replace_loops(b, simulated, next_id)),
                },
            )),
            _ => stmts.push(stmt.clone()),
        }
    }
    Block { stmts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::mark_program;
    use tunio_cminus::parser::parse;
    use tunio_cminus::printer::print_program;
    use tunio_cminus::samples;

    #[test]
    fn blind_writes_inside_loops_are_removed() {
        let mut prog = parse(
            r#"
            void f(int n) {
                double * live = alloc(n);
                double * frozen = alloc(n);
                for (int i = 0; i < n; i++) {
                    live = refresh(live, n);
                    H5Dwrite(dset_a, live);
                    H5Dwrite(dset_b, frozen);
                }
            }
            "#,
        )
        .unwrap();
        let removed = remove_blind_writes(&mut prog);
        assert_eq!(removed, 1);
        let text = print_program(&prog).text;
        assert!(text.contains("H5Dwrite(dset_a, live);"));
        assert!(!text.contains("H5Dwrite(dset_b, frozen);"));
    }

    #[test]
    fn loop_counter_dependent_writes_survive() {
        let mut prog =
            parse("void f() { for (int i = 0; i < 10; i++) { H5Dwrite(dset, buf[i]); } }").unwrap();
        // buf is not reassigned but the expression buf[i] is not a plain
        // invariant identifier — conservative: keep.
        assert_eq!(remove_blind_writes(&mut prog), 0);
    }

    #[test]
    fn compute_simulation_inserts_sleeps() {
        let prog = parse(samples::VPIC_IO).unwrap();
        let marking = mark_program(&prog);
        let paced = simulate_compute(&prog, &marking);
        let text = print_program(&paced).text;
        assert!(text.contains("tunio_sleep("), "{text}");
        assert!(text.contains("H5Dwrite"), "I/O still present");
        assert!(!text.contains("compute_energy"), "compute replaced");
        // The paced kernel reparses.
        parse(&text).unwrap();
    }

    #[test]
    fn compute_simulation_counts_elided_statements() {
        let src = r#"
            void f() {
                a = one();
                b = two();
                c = three();
                H5Dwrite(d, buf);
            }
        "#;
        let prog = parse(src).unwrap();
        let marking = mark_program(&prog);
        let paced = simulate_compute(&prog, &marking);
        let text = print_program(&paced).text;
        assert!(text.contains("tunio_sleep(3);"), "{text}");
    }

    #[test]
    fn loop_simulation_replaces_literal_io_loops() {
        let mut prog =
            parse("void f() { for (int i = 0; i < 500; i++) { H5Dwrite(d, b); } finish(); }")
                .unwrap();
        let n = simulate_loops(&mut prog);
        assert_eq!(n, 1);
        let text = print_program(&prog).text;
        assert!(text.contains("tunio_replay(500);"), "{text}");
        assert!(text.contains("H5Dwrite(d, b);"));
        assert!(!text.contains("for ("), "loop machinery gone: {text}");
        parse(&text).unwrap();
    }

    #[test]
    fn loop_simulation_leaves_variable_bounds_alone() {
        let mut prog =
            parse("void f(int n) { for (int i = 0; i < n; i++) { H5Dwrite(d, b); } }").unwrap();
        assert_eq!(simulate_loops(&mut prog), 0);
        assert!(print_program(&prog).text.contains("for ("));
    }

    #[test]
    fn compute_only_loops_are_not_simulated() {
        let mut prog = parse("void f() { for (int i = 0; i < 9; i++) { relax(g, i); } }").unwrap();
        assert_eq!(simulate_loops(&mut prog), 0);
    }
}
