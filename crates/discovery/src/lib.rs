//! # tunio-discovery — Application I/O Discovery
//!
//! Implements §III-B of the paper: reduce an application's source code to
//! an *I/O kernel* that retains every statement necessary to perform its
//! I/O and nothing else, so that each tuning-iteration objective
//! evaluation runs only the I/O-critical code.
//!
//! The pipeline is:
//!
//! 1. Parse the source into an AST ([`tunio_cminus`]).
//! 2. Mark the statements the I/O needs. The default path ([`slicing`])
//!    is a dataflow backward slice over `tunio-analysis`'s CFG +
//!    reaching-definitions, seeded at I/O calls; the paper's original
//!    syntactic **marking loop** ([`marking`]) — transitively mark
//!    *dependents* (arguments, backward chains of assignments) and
//!    *contextual parents* (enclosing loop / conditional headers) to a
//!    fixpoint — remains available via
//!    [`DiscoveryOptions::syntactic_marking`] and the two are diffed by
//!    [`slicing::compare_markings`].
//! 3. **Reconstruct** the kernel from the kept statements ([`kernel`]).
//! 4. Optionally apply reductions ([`transform`]): *loop reduction*
//!    (execute a fraction of the iterations of loops containing I/O and
//!    extrapolate the scalable metrics back up) and *I/O path switching*
//!    (prepend a memory-backed path such as `/dev/shm` to every file the
//!    kernel opens).
//!
//! [`bridge`] connects a discovered kernel to the workload model so the
//! simulator can execute the matching [`tunio_workloads::Variant`], and
//! [`accuracy`] computes the kernel-fidelity metrics of Fig 8c.
//!
//! The crate also hosts the *static workload inference* path: [`infer`]
//! lowers `tunio_analysis::predict_program` predictions into executable
//! [`tunio_workloads::AppSpec`]s and warm-start feature vectors,
//! [`dynexec`] is a concrete replay interpreter used as ground truth, and
//! [`accuracy`] scores predicted vs. observed patterns and volumes.

#![warn(missing_docs)]

pub mod accuracy;
pub mod bridge;
pub mod dynexec;
pub mod extensions;
pub mod infer;
pub mod iocalls;
pub mod kernel;
pub mod marking;
pub mod slicing;
pub mod transform;

pub use accuracy::{score_corpus, score_inference, CorpusScore, InferenceScore};
pub use bridge::{discover_io, DiscoveryOptions, IoKernel};
pub use dynexec::{replay, DynTrace, SiteObs};
pub use infer::{default_bindings, infer_program, lower_prediction, InferredWorkload};
pub use iocalls::{classify_call, CallClass};
pub use kernel::reconstruct;
pub use marking::{mark_program, Marking};
pub use slicing::{compare_markings, compare_samples, mark_program_dataflow, MarkingComparison};
