//! Kernel reconstruction: rebuild a program from its kept statements.

use crate::marking::Marking;
use tunio_cminus::ast::{Block, Function, Program, Stmt, StmtKind};

/// Rebuild a program containing only the statements `marking` kept.
///
/// Control-flow statements survive only if marked (which the marking loop
/// guarantees whenever any descendant is marked); their bodies are filtered
/// recursively. Functions whose bodies become empty are kept as empty
/// shells so the kernel still links.
pub fn reconstruct(program: &Program, marking: &Marking) -> Program {
    let functions = program
        .functions
        .iter()
        .map(|f| Function {
            ret: f.ret.clone(),
            name: f.name.clone(),
            params: f.params.clone(),
            body: filter_block(&f.body, marking),
        })
        .collect();
    Program { functions }
}

fn filter_block(block: &Block, marking: &Marking) -> Block {
    let mut stmts = Vec::new();
    for stmt in &block.stmts {
        if let Some(kept) = filter_stmt(stmt, marking) {
            stmts.push(kept);
        }
    }
    Block { stmts }
}

fn filter_stmt(stmt: &Stmt, marking: &Marking) -> Option<Stmt> {
    if !marking.kept.contains(&stmt.id) {
        return None;
    }
    let kind = match &stmt.kind {
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => StmtKind::If {
            cond: cond.clone(),
            then_block: filter_block(then_block, marking),
            else_block: else_block.as_ref().map(|b| filter_block(b, marking)),
        },
        StmtKind::For {
            init,
            cond,
            update,
            body,
        } => StmtKind::For {
            // Headers are kept verbatim — they were marked with the loop.
            init: init.clone(),
            cond: cond.clone(),
            update: update.clone(),
            body: filter_block(body, marking),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond: cond.clone(),
            body: filter_block(body, marking),
        },
        StmtKind::DoWhile { body, cond } => StmtKind::DoWhile {
            body: filter_block(body, marking),
            cond: cond.clone(),
        },
        other => other.clone(),
    };
    Some(Stmt {
        id: stmt.id,
        kind,
        span: stmt.span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::mark_program;
    use tunio_cminus::parser::parse;
    use tunio_cminus::printer::print_program;
    use tunio_cminus::samples;

    fn kernel_text(src: &str) -> String {
        let prog = parse(src).unwrap();
        let m = mark_program(&prog);
        print_program(&reconstruct(&prog, &m)).text
    }

    #[test]
    fn vpic_kernel_keeps_io_drops_compute() {
        let text = kernel_text(samples::VPIC_IO);
        for kept in [
            "H5Fcreate",
            "H5Dwrite",
            "H5Fclose",
            "sort_particles",
            "for (",
        ] {
            assert!(text.contains(kept), "kernel must keep {kept}:\n{text}");
        }
        for dropped in ["printf", "compute_energy", "field_sum", "advance_particles"] {
            assert!(
                !text.contains(dropped),
                "kernel must drop {dropped}:\n{text}"
            );
        }
    }

    #[test]
    fn kernel_reparses_cleanly() {
        for (name, src) in samples::all_samples() {
            let text = kernel_text(src);
            parse(&text).unwrap_or_else(|e| panic!("{name} kernel does not reparse: {e}\n{text}"));
        }
    }

    #[test]
    fn kernel_is_smaller_than_original() {
        let prog = parse(samples::HACC_IO).unwrap();
        let m = mark_program(&prog);
        let kernel = reconstruct(&prog, &m);
        assert!(kernel.stmt_count() < prog.stmt_count());
        assert!(kernel.stmt_count() > 0);
    }

    #[test]
    fn pure_compute_kernel_is_empty_shell() {
        let prog = parse(samples::PURE_COMPUTE).unwrap();
        let m = mark_program(&prog);
        let kernel = reconstruct(&prog, &m);
        assert_eq!(kernel.functions.len(), 1);
        assert!(kernel.functions[0].body.stmts.is_empty());
    }

    #[test]
    fn nested_conditional_io_survives() {
        let text = kernel_text(samples::FLASH_IO);
        assert!(text.contains("if ("));
        assert!(text.contains("H5Dwrite(plot_dset, dens);"));
        assert!(!text.contains("hydro_sweep"));
    }

    #[test]
    fn kernel_statement_count_matches_marking() {
        let prog = parse(samples::VPIC_IO).unwrap();
        let m = mark_program(&prog);
        let kernel = reconstruct(&prog, &m);
        assert_eq!(kernel.stmt_count(), m.kept.len());
    }
}
