//! Kernel reduction transforms: loop reduction and I/O path switching.
//!
//! Both are optional, user-configurable reductions applied after kernel
//! reconstruction (§III-B): they trade kernel fidelity for tuning speed.

use crate::iocalls::{classify_call, opens_path, CallClass};
use tunio_cminus::ast::{Block, Expr, Program, Stmt, StmtKind};

/// Outcome of a loop-reduction pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReductionReport {
    /// Loops whose trip counts were reduced.
    pub loops_reduced: usize,
    /// Loops containing I/O that could not be reduced (bound too small or
    /// not a literal).
    pub loops_skipped: usize,
    /// The requested keep fraction.
    pub keep_fraction: f64,
}

/// Reduce the trip count of every I/O-containing `for` loop with an
/// integer-literal bound to `keep_fraction` of its iterations (minimum 1).
/// Loops whose reduced trip count would round below one iteration are left
/// untouched, as the paper specifies.
pub fn loop_reduction(program: &mut Program, keep_fraction: f64) -> LoopReductionReport {
    let mut report = LoopReductionReport {
        loops_reduced: 0,
        loops_skipped: 0,
        keep_fraction,
    };
    for f in &mut program.functions {
        reduce_block(&mut f.body, keep_fraction, &mut report);
    }
    report
}

fn reduce_block(block: &mut Block, frac: f64, report: &mut LoopReductionReport) {
    for stmt in &mut block.stmts {
        reduce_stmt(stmt, frac, report);
    }
}

fn reduce_stmt(stmt: &mut Stmt, frac: f64, report: &mut LoopReductionReport) {
    match &mut stmt.kind {
        StmtKind::For { cond, body, .. } => {
            reduce_block(body, frac, report);
            if block_contains_io(body) {
                match cond.as_mut().and_then(literal_upper_bound) {
                    Some(bound_ref) => {
                        let original = *bound_ref;
                        let reduced = ((original as f64) * frac).round() as i64;
                        if reduced >= 1 && reduced < original {
                            *bound_ref = reduced;
                            report.loops_reduced += 1;
                        } else {
                            report.loops_skipped += 1;
                        }
                    }
                    None => report.loops_skipped += 1,
                }
            }
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            reduce_block(body, frac, report);
            if block_contains_io(body) {
                // `while`/`do-while` bounds are not statically reducible.
                report.loops_skipped += 1;
            }
        }
        StmtKind::If {
            then_block,
            else_block,
            ..
        } => {
            reduce_block(then_block, frac, report);
            if let Some(e) = else_block {
                reduce_block(e, frac, report);
            }
        }
        _ => {}
    }
}

/// If `cond` is `x < N` / `x <= N` with integer-literal `N`, return a
/// mutable reference to the literal.
fn literal_upper_bound(cond: &mut Expr) -> Option<&mut i64> {
    match cond {
        Expr::Binary { op, rhs, .. } if op == "<" || op == "<=" => match rhs.as_mut() {
            Expr::Int(v) => Some(v),
            _ => None,
        },
        _ => None,
    }
}

/// Whether a block (recursively) contains a real I/O call.
pub fn block_contains_io(block: &Block) -> bool {
    block.stmts.iter().any(stmt_contains_io)
}

fn stmt_contains_io(stmt: &Stmt) -> bool {
    let mut calls = Vec::new();
    match &stmt.kind {
        StmtKind::Decl { init: Some(e), .. } => e.call_names(&mut calls),
        StmtKind::Assign { lhs, rhs, .. } => {
            lhs.call_names(&mut calls);
            rhs.call_names(&mut calls);
        }
        StmtKind::Expr(e) => e.call_names(&mut calls),
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            cond.call_names(&mut calls);
            if block_contains_io(then_block) || else_block.as_ref().is_some_and(block_contains_io) {
                return true;
            }
        }
        StmtKind::For { cond, body, .. } => {
            if let Some(c) = cond {
                c.call_names(&mut calls);
            }
            if block_contains_io(body) {
                return true;
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { cond, body } => {
            cond.call_names(&mut calls);
            if block_contains_io(body) {
                return true;
            }
        }
        StmtKind::Return(Some(e)) => e.call_names(&mut calls),
        _ => {}
    }
    calls.iter().any(|c| classify_call(c) == CallClass::Io)
}

/// Prepend `prefix` to the path argument of every file-opening I/O call
/// (I/O path switching: point the kernel at `/dev/shm` so evaluations do
/// not touch slow storage). Returns the number of paths rewritten.
pub fn path_switch(program: &mut Program, prefix: &str) -> usize {
    let mut rewritten = 0;
    for f in &mut program.functions {
        switch_block(&mut f.body, prefix, &mut rewritten);
    }
    rewritten
}

fn switch_block(block: &mut Block, prefix: &str, rewritten: &mut usize) {
    for stmt in &mut block.stmts {
        switch_stmt(stmt, prefix, rewritten);
    }
}

fn switch_stmt(stmt: &mut Stmt, prefix: &str, rewritten: &mut usize) {
    match &mut stmt.kind {
        StmtKind::Decl { init: Some(e), .. } | StmtKind::Expr(e) => {
            switch_expr(e, prefix, rewritten)
        }
        StmtKind::Assign { rhs, .. } => switch_expr(rhs, prefix, rewritten),
        StmtKind::If {
            then_block,
            else_block,
            ..
        } => {
            switch_block(then_block, prefix, rewritten);
            if let Some(e) = else_block {
                switch_block(e, prefix, rewritten);
            }
        }
        StmtKind::For { body, .. }
        | StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. } => switch_block(body, prefix, rewritten),
        _ => {}
    }
}

fn switch_expr(e: &mut Expr, prefix: &str, rewritten: &mut usize) {
    if let Expr::Call { name, args } = e {
        if opens_path(name) {
            if let Some(Expr::Str(path)) = args.first_mut() {
                if !path.starts_with(prefix) {
                    *path = format!("{}/{}", prefix.trim_end_matches('/'), path);
                    *rewritten += 1;
                }
            }
        }
        for a in args {
            switch_expr(a, prefix, rewritten);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::parser::parse;
    use tunio_cminus::printer::print_program;
    use tunio_cminus::samples;

    #[test]
    fn loop_reduction_rewrites_literal_bounds() {
        let mut prog =
            parse("void f() { for (int i = 0; i < 1000; i++) { H5Dwrite(d, b); } }").unwrap();
        let report = loop_reduction(&mut prog, 0.01);
        assert_eq!(report.loops_reduced, 1);
        let text = print_program(&prog).text;
        assert!(text.contains("i < 10"), "{text}");
    }

    #[test]
    fn loop_reduction_skips_tiny_loops() {
        // "Whenever the loop iterations are too small to reduce (less than
        // one iteration on reduction), loop reduction will not be able to
        // do anything." (§IV-A)
        let mut prog =
            parse("void f() { for (int i = 0; i < 3; i++) { H5Dwrite(d, b); } }").unwrap();
        let report = loop_reduction(&mut prog, 0.01);
        assert_eq!(report.loops_reduced, 0);
        assert_eq!(report.loops_skipped, 1);
        assert!(print_program(&prog).text.contains("i < 3"));
    }

    #[test]
    fn loop_reduction_ignores_compute_loops() {
        let mut prog =
            parse("void f() { for (int i = 0; i < 1000; i++) { relax(g, i); } }").unwrap();
        let report = loop_reduction(&mut prog, 0.01);
        assert_eq!(report.loops_reduced + report.loops_skipped, 0);
        assert!(print_program(&prog).text.contains("i < 1000"));
    }

    #[test]
    fn loop_reduction_skips_variable_bounds() {
        let mut prog =
            parse("void f(int n) { for (int i = 0; i < n; i++) { H5Dwrite(d, b); } }").unwrap();
        let report = loop_reduction(&mut prog, 0.5);
        assert_eq!(report.loops_reduced, 0);
        assert_eq!(report.loops_skipped, 1);
    }

    #[test]
    fn while_loops_with_io_are_reported_skipped() {
        let mut prog = parse("void f() { while (more()) { H5Dwrite(d, b); } }").unwrap();
        let report = loop_reduction(&mut prog, 0.1);
        assert_eq!(report.loops_skipped, 1);
    }

    #[test]
    fn path_switch_prefixes_open_calls() {
        let mut prog = parse(samples::VPIC_IO).unwrap();
        let n = path_switch(&mut prog, "/dev/shm");
        assert_eq!(n, 1);
        let text = print_program(&prog).text;
        assert!(text.contains("\"/dev/shm/particles.h5\""), "{text}");
    }

    #[test]
    fn path_switch_is_idempotent() {
        let mut prog = parse(samples::FLASH_IO).unwrap();
        assert_eq!(path_switch(&mut prog, "/dev/shm"), 2);
        assert_eq!(path_switch(&mut prog, "/dev/shm"), 0);
    }

    #[test]
    fn nested_loops_reduce_independently() {
        let mut prog = parse(
            "void f() { for (int i = 0; i < 100; i++) { for (int j = 0; j < 200; j++) { H5Dwrite(d, b); } } }",
        )
        .unwrap();
        let report = loop_reduction(&mut prog, 0.1);
        assert_eq!(report.loops_reduced, 2);
        let text = print_program(&prog).text;
        assert!(text.contains("i < 10") && text.contains("j < 20"), "{text}");
    }
}
