//! I/O call recognition.
//!
//! The reference TunIO targets HDF5 applications, so `H5*` calls are the
//! primary I/O vocabulary; MPI-IO and POSIX/STDIO file calls are also
//! recognized so kernels survive mixed-API applications. Console logging
//! (`printf` and friends) is classified as a *trivial write*: the paper
//! observes that dropping these accounts for its kernel's 19.05% write-op
//! delta while moving almost no bytes.

/// Classification of a called function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallClass {
    /// Real storage I/O the kernel must keep (HDF5 / MPI-IO / POSIX file).
    Io,
    /// Console/logging writes the kernel drops (`printf`, `fprintf`, …).
    TrivialWrite,
    /// Anything else (compute, allocation, communication).
    Other,
}

/// POSIX / STDIO file-I/O functions treated as real I/O.
const POSIX_IO: [&str; 10] = [
    "fopen", "fclose", "fwrite", "fread", "fseek", "open", "close", "read", "write", "lseek",
];

/// Logging functions treated as trivial writes.
const TRIVIAL: [&str; 6] = ["printf", "fprintf", "puts", "fputs", "putchar", "perror"];

/// Classify a function by name.
pub fn classify_call(name: &str) -> CallClass {
    if TRIVIAL.contains(&name) {
        return CallClass::TrivialWrite;
    }
    if name.starts_with("H5") || name.starts_with("MPI_File_") || POSIX_IO.contains(&name) {
        return CallClass::Io;
    }
    CallClass::Other
}

/// Whether an I/O call opens a file by path (its first string argument is
/// a target for I/O path switching).
pub fn opens_path(name: &str) -> bool {
    matches!(
        name,
        "H5Fcreate" | "H5Fopen" | "fopen" | "open" | "MPI_File_open"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdf5_calls_are_io() {
        for n in ["H5Fcreate", "H5Dwrite", "H5Dclose", "H5Screate_simple"] {
            assert_eq!(classify_call(n), CallClass::Io);
        }
    }

    #[test]
    fn mpi_file_calls_are_io() {
        assert_eq!(classify_call("MPI_File_write_all"), CallClass::Io);
        assert_eq!(classify_call("MPI_Send"), CallClass::Other);
    }

    #[test]
    fn logging_is_trivial() {
        assert_eq!(classify_call("printf"), CallClass::TrivialWrite);
        assert_eq!(classify_call("fprintf"), CallClass::TrivialWrite);
    }

    #[test]
    fn compute_is_other() {
        assert_eq!(classify_call("compute_energy"), CallClass::Other);
        assert_eq!(classify_call("malloc"), CallClass::Other);
    }

    #[test]
    fn path_openers() {
        assert!(opens_path("H5Fcreate"));
        assert!(opens_path("fopen"));
        assert!(!opens_path("H5Dwrite"));
    }
}
