//! `discover_io` — the component's public entry point (paper Table I) —
//! and the bridge from a discovered kernel to an executable workload
//! variant.

use crate::kernel::reconstruct;
use crate::marking::{mark_program, Marking};
use crate::slicing::mark_program_dataflow;
use crate::transform::{loop_reduction, path_switch, LoopReductionReport};
use tunio_cminus::parser::{parse, ParseError};
use tunio_cminus::printer::print_program;
use tunio_cminus::Program;
use tunio_workloads::Variant;

/// Options controlling kernel generation (the `options` argument of the
/// paper's `discover_io(source_code, options)` API).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiscoveryOptions {
    /// Apply loop reduction with this keep fraction (e.g. 0.01 = run 1% of
    /// I/O-loop iterations). `None` = null reduction step.
    pub loop_reduction: Option<f64>,
    /// Prepend this memory-backed prefix to every opened path
    /// (I/O path switching). `None` = leave paths alone.
    pub path_switch_prefix: Option<String>,
    /// Replace elided compute with `tunio_sleep(n)` pacing stubs instead
    /// of deleting it (§VI compute simulation).
    pub simulate_compute: bool,
    /// Drop loop-invariant repeated writes (§VI blind-write removal).
    pub remove_blind_writes: bool,
    /// Replace literal-bound I/O loops with `tunio_replay(n)` markers and
    /// a single unrolled body (§VI loop simulation).
    pub simulate_loops: bool,
    /// Use the original syntactic marking loop instead of the default
    /// dataflow backward slice. Kept for comparison: the syntactic pass
    /// conflates same-named (shadowed) variables and keeps dead stores;
    /// see [`crate::slicing::compare_markings`].
    pub syntactic_marking: bool,
}

impl DiscoveryOptions {
    /// Options matching the paper's Fig 8b evaluation: 1% loop reduction.
    pub fn with_loop_reduction(fraction: f64) -> Self {
        DiscoveryOptions {
            loop_reduction: Some(fraction),
            ..DiscoveryOptions::default()
        }
    }
}

/// A generated I/O kernel plus provenance.
#[derive(Debug, Clone)]
pub struct IoKernel {
    /// The reconstructed (and possibly reduced) kernel AST.
    pub program: Program,
    /// Normalized kernel source text.
    pub source: String,
    /// The marking that produced it.
    pub marking: Marking,
    /// Loop-reduction outcome, if requested.
    pub loop_reduction: Option<LoopReductionReport>,
    /// Number of opened paths switched to memory, if requested.
    pub paths_switched: usize,
    /// Number of blind writes removed, if requested.
    pub blind_writes_removed: usize,
    /// Number of loops replaced by `tunio_replay` markers, if requested.
    pub loops_simulated: usize,
}

impl IoKernel {
    /// Whether discovery found any I/O at all. The paper's fallback: if
    /// the kernel is unusable, tuning reverts to the full application.
    pub fn has_io(&self) -> bool {
        !self.marking.io_seeds.is_empty()
    }

    /// The workload variant this kernel corresponds to, or `None` when the
    /// kernel found no I/O (callers should fall back to
    /// [`Variant::Full`]).
    pub fn variant(&self) -> Option<Variant> {
        if !self.has_io() {
            return None;
        }
        match &self.loop_reduction {
            Some(r) if r.loops_reduced > 0 => Some(Variant::ReducedKernel {
                keep_fraction: r.keep_fraction,
            }),
            _ => Some(Variant::Kernel),
        }
    }
}

/// Generate an I/O kernel from application source code.
///
/// This is the `discover_io(source_code, options) -> I/O kernel` API of
/// the paper's Table I. The source is parsed, marked (with the dataflow
/// backward slice by default, or the original syntactic loop when
/// [`DiscoveryOptions::syntactic_marking`] is set), reconstructed and
/// optionally reduced. Errors only arise from unparseable source; a
/// source with no I/O yields an empty (but valid) kernel with
/// [`IoKernel::has_io`] = `false`.
///
/// ```
/// use tunio_discovery::{discover_io, DiscoveryOptions};
/// let src = "void f(int n) { double * b = alloc(n); simulate(b, n); H5Dwrite(d, b); }";
/// let kernel = discover_io(src, &DiscoveryOptions::default()).unwrap();
/// assert!(kernel.has_io());
/// assert!(kernel.source.contains("H5Dwrite"));
/// assert!(!kernel.source.contains("simulate"));
/// ```
pub fn discover_io(source: &str, options: &DiscoveryOptions) -> Result<IoKernel, ParseError> {
    let program = parse(source)?;
    let marking = if options.syntactic_marking {
        mark_program(&program)
    } else {
        mark_program_dataflow(&program)
    };
    let mut kernel = if options.simulate_compute {
        crate::extensions::simulate_compute(&program, &marking)
    } else {
        reconstruct(&program, &marking)
    };

    let blind_writes_removed = if options.remove_blind_writes {
        crate::extensions::remove_blind_writes(&mut kernel)
    } else {
        0
    };
    let loops_simulated = if options.simulate_loops {
        crate::extensions::simulate_loops(&mut kernel)
    } else {
        0
    };
    let loop_report = options
        .loop_reduction
        .map(|f| loop_reduction(&mut kernel, f));
    let paths_switched = options
        .path_switch_prefix
        .as_deref()
        .map(|p| path_switch(&mut kernel, p))
        .unwrap_or(0);

    let source = print_program(&kernel).text;
    Ok(IoKernel {
        program: kernel,
        source,
        marking,
        loop_reduction: loop_report,
        paths_switched,
        blind_writes_removed,
        loops_simulated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::samples;

    #[test]
    fn discover_io_end_to_end() {
        let k = discover_io(samples::VPIC_IO, &DiscoveryOptions::default()).unwrap();
        assert!(k.has_io());
        assert_eq!(k.variant(), Some(Variant::Kernel));
        assert!(k.source.contains("H5Dwrite"));
        assert!(!k.source.contains("printf"));
        assert!(k.loop_reduction.is_none());
        assert_eq!(k.paths_switched, 0);
    }

    #[test]
    fn discovery_with_loop_reduction_maps_to_reduced_variant() {
        let src = "void f() { for (int i = 0; i < 500; i++) { H5Dwrite(d, b); } }";
        let k = discover_io(src, &DiscoveryOptions::with_loop_reduction(0.01)).unwrap();
        assert_eq!(
            k.variant(),
            Some(Variant::ReducedKernel {
                keep_fraction: 0.01
            })
        );
        assert!(k.source.contains("i < 5"), "{}", k.source);
    }

    #[test]
    fn unreducible_loops_fall_back_to_plain_kernel() {
        let src = "void f(int n) { for (int i = 0; i < n; i++) { H5Dwrite(d, b); } }";
        let k = discover_io(src, &DiscoveryOptions::with_loop_reduction(0.01)).unwrap();
        assert_eq!(k.variant(), Some(Variant::Kernel));
        assert_eq!(k.loop_reduction.unwrap().loops_skipped, 1);
    }

    #[test]
    fn path_switching_applies() {
        let opts = DiscoveryOptions {
            path_switch_prefix: Some("/dev/shm".into()),
            ..DiscoveryOptions::default()
        };
        let k = discover_io(samples::HACC_IO, &opts).unwrap();
        assert_eq!(k.paths_switched, 1);
        assert!(k.source.contains("/dev/shm/hacc.h5"));
    }

    #[test]
    fn no_io_source_yields_no_variant() {
        let k = discover_io(samples::PURE_COMPUTE, &DiscoveryOptions::default()).unwrap();
        assert!(!k.has_io());
        assert_eq!(k.variant(), None);
    }

    #[test]
    fn bad_source_is_an_error() {
        assert!(discover_io("void f( {", &DiscoveryOptions::default()).is_err());
    }

    #[test]
    fn default_marking_is_the_dataflow_slice() {
        let src = r#"
            void f(int n) {
                double * buf = alloc(n);
                buf = stale_fill(n);
                buf = final_fill(n);
                H5Dwrite(dset, buf);
            }
        "#;
        let dataflow = discover_io(src, &DiscoveryOptions::default()).unwrap();
        assert!(
            !dataflow.source.contains("stale_fill"),
            "{}",
            dataflow.source
        );
        assert!(dataflow.source.contains("final_fill"));

        let opts = DiscoveryOptions {
            syntactic_marking: true,
            ..DiscoveryOptions::default()
        };
        let syntactic = discover_io(src, &opts).unwrap();
        assert!(
            syntactic.source.contains("stale_fill"),
            "legacy pass keeps the dead store: {}",
            syntactic.source
        );
    }
}

#[cfg(test)]
mod extension_option_tests {
    use super::*;
    use tunio_cminus::samples;

    #[test]
    fn compute_simulation_option_paces_the_kernel() {
        let opts = DiscoveryOptions {
            simulate_compute: true,
            ..DiscoveryOptions::default()
        };
        let k = discover_io(samples::VPIC_IO, &opts).unwrap();
        assert!(k.source.contains("tunio_sleep("), "{}", k.source);
        assert!(k.source.contains("H5Dwrite"));
    }

    #[test]
    fn loop_simulation_option_replaces_literal_loops() {
        let src = "void f() { for (int i = 0; i < 300; i++) { H5Dwrite(d, b); } }";
        let opts = DiscoveryOptions {
            simulate_loops: true,
            ..DiscoveryOptions::default()
        };
        let k = discover_io(src, &opts).unwrap();
        assert_eq!(k.loops_simulated, 1);
        assert!(k.source.contains("tunio_replay(300);"), "{}", k.source);
    }

    #[test]
    fn blind_write_option_reports_removals() {
        let src = r#"
            void f(int n) {
                double * live = alloc(n);
                double * frozen = alloc(n);
                for (int i = 0; i < n; i++) {
                    live = refresh(live, n);
                    H5Dwrite(a, live);
                    H5Dwrite(b, frozen);
                }
            }
        "#;
        let opts = DiscoveryOptions {
            remove_blind_writes: true,
            ..DiscoveryOptions::default()
        };
        let k = discover_io(src, &opts).unwrap();
        assert_eq!(k.blind_writes_removed, 1);
        assert!(!k.source.contains("H5Dwrite(b, frozen);"));
    }
}
